#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # flow3d — 3D-Flow legalization for 3D ICs
//!
//! Facade crate for the reproduction of *"3D-Flow: Flow-based Standard Cell
//! Legalization for 3D ICs"* (Zhao, Liao, Yu — DAC 2025). Re-exports every
//! workspace crate under one roof:
//!
//! * [`geom`] — integer geometry primitives.
//! * [`db`] — the design database (technologies, dies, rows, cells, macros,
//!   nets, placements).
//! * [`mcmf`] — a generic min-cost max-flow reference solver.
//! * [`io`] — contest-style file formats (case, global placement, legal
//!   output).
//! * [`gen`] — synthetic benchmark generator matching the ICCAD 2022/2023
//!   contest statistics.
//! * [`gp`] — an analytical 3D global-placement substrate.
//! * [`metrics`] — displacement/HPWL metrics and the legality checker.
//! * [`obs`] — observability: phase timers, counters, JSON run reports.
//! * [`par`] — std-only deterministic worker pool used by the parallel
//!   legalization phases.
//! * [`core`] — the 3D-Flow legalizer itself.
//! * [`serve`] — the resident legalization service (`flow3d serve`):
//!   length-prefixed JSON protocol, request queue, warm ECO engines.
//! * [`baselines`] — Tetris, Abacus, and BonnPlaceLegal-style reference
//!   legalizers.
//! * [`viz`] — SVG visualization of placements and results.
//!
//! # Examples
//!
//! Generate a benchmark, globally place it, legalize it with 3D-Flow, and
//! measure displacement:
//!
//! ```
//! use flow3d::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let case = flow3d::gen::GeneratorConfig::small_demo(42).generate()?;
//! let global = flow3d::gp::GlobalPlacer::new(Default::default()).place(&case.design);
//! let legalizer = flow3d::core::Flow3dLegalizer::new(Default::default());
//! let outcome = legalizer.legalize(&case.design, &global)?;
//! let report = flow3d::metrics::check_legal(&case.design, &outcome.placement);
//! assert!(report.is_legal());
//! # Ok(())
//! # }
//! ```

pub use flow3d_baselines as baselines;
pub use flow3d_core as core;
pub use flow3d_db as db;
pub use flow3d_gen as gen;
pub use flow3d_geom as geom;
pub use flow3d_gp as gp;
pub use flow3d_io as io;
pub use flow3d_mcmf as mcmf;
pub use flow3d_metrics as metrics;
pub use flow3d_obs as obs;
pub use flow3d_par as par;
pub use flow3d_serve as serve;
pub use flow3d_viz as viz;

/// Convenience re-exports of the types most programs need.
pub mod prelude {
    pub use flow3d_baselines::{AbacusLegalizer, BonnLegalizer, TetrisLegalizer};
    pub use flow3d_core::{Flow3dConfig, Flow3dLegalizer, Legalizer};
    pub use flow3d_db::{
        CellId, Design, DesignBuilder, DieId, LegalPlacement, Placement3d, RowLayout,
    };
    pub use flow3d_gen::GeneratorConfig;
    pub use flow3d_gp::{GlobalPlacer, GpConfig};
    pub use flow3d_metrics::{check_legal, displacement_stats, hpwl};
    pub use flow3d_obs::{Profile, RunReport};
}
