//! The paper's core experiment in miniature: run all four legalizers
//! (Tetris, Abacus, BonnPlaceLegal-style, 3D-Flow) on the same global
//! placement and compare displacement, HPWL increase, and runtime —
//! a small-scale Table III.
//!
//! ```sh
//! cargo run --release --example compare_legalizers [case] [scale]
//! ```
//!
//! `case` is an ICCAD 2022 case name (default `case3`); `scale` shrinks
//! the instance (default `0.25`).

use flow3d::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let case_name = args.first().map(String::as_str).unwrap_or("case3");
    let scale: f64 = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(0.25);

    let mut cfg = GeneratorConfig::iccad2022(case_name)
        .ok_or_else(|| format!("unknown ICCAD 2022 case `{case_name}`"))?;
    cfg.scale = scale;
    let case = cfg.generate()?;
    let global = GlobalPlacer::new(GpConfig::default()).place_from(&case.design, &case.natural);
    println!(
        "{case_name} @ scale {scale}: {} cells on two dies\n",
        case.design.num_cells()
    );

    let legalizers: Vec<Box<dyn flow3d_core::Legalizer>> = vec![
        Box::new(TetrisLegalizer::default()),
        Box::new(AbacusLegalizer::default()),
        Box::new(BonnLegalizer::default()),
        Box::new(Flow3dLegalizer::default()),
    ];

    println!(
        "{:<14} {:>9} {:>9} {:>8} {:>8} {:>7}",
        "legalizer", "avg.disp", "max.disp", "dHPWL%", "rt(ms)", "#move"
    );
    for lg in &legalizers {
        let start = std::time::Instant::now();
        let outcome = lg.legalize(&case.design, &global)?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let report = check_legal(&case.design, &outcome.placement);
        assert!(report.is_legal(), "{}: {report}", lg.name());
        let stats = displacement_stats(&case.design, &global, &outcome.placement);
        let dhpwl = flow3d::metrics::delta_hpwl_pct(&case.design, &global, &outcome.placement);
        println!(
            "{:<14} {:>9.3} {:>9.2} {:>8.2} {:>8.1} {:>7}",
            lg.name(),
            stats.avg,
            stats.max,
            dhpwl,
            ms,
            outcome.stats.cross_die_moves
        );
    }
    Ok(())
}
