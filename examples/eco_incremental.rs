//! Incremental (ECO) legalization: the flow formulation re-legalizes a
//! perturbed placement with minimal disturbance — the capability the
//! paper's post-optimization exploits internally (§III-E), exposed as an
//! API for the classical physical-synthesis loop:
//!
//!   global place → legalize → timing optimization moves/sizes a few
//!   cells → *incremental* legalize → ...
//!
//! ```sh
//! cargo run --release --example eco_incremental
//! ```

use flow3d::core::CellMove;
use flow3d::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Base: a legalized mid-size case.
    let mut cfg = GeneratorConfig::iccad2022("case2").expect("preset");
    cfg.scale = 1.0;
    let case = cfg.generate()?;
    let global = GlobalPlacer::new(GpConfig::default()).place_from(&case.design, &case.natural);
    let legalizer = Flow3dLegalizer::new(Flow3dConfig::default());
    let base = legalizer.legalize(&case.design, &global)?.placement;
    assert!(check_legal(&case.design, &base).is_legal());
    let n = case.design.num_cells();
    println!("base placement: {n} cells, legal");

    // "Timing optimization": pull 10 cells halfway toward the die center
    // (think buffer relocation along critical paths).
    let center = case.design.die(flow3d::db::DieId::BOTTOM).outline.center();
    let moves: Vec<CellMove> = (0..10)
        .map(|k| {
            let cell = CellId::new(k * n / 10);
            let p = base.pos(cell);
            CellMove {
                cell,
                target: flow3d_geom::Point::new((p.x + center.x) / 2, (p.y + center.y) / 2),
                die: None,
            }
        })
        .collect();

    let outcome = legalizer.legalize_incremental(&case.design, &base, &moves)?;
    assert!(check_legal(&case.design, &outcome.placement).is_legal());

    // How local was the repair?
    let touched = (0..n)
        .filter(|&i| {
            let c = CellId::new(i);
            outcome.placement.pos(c) != base.pos(c) || outcome.placement.die(c) != base.die(c)
        })
        .count();
    println!(
        "ECO moved 10 cells; incremental legalization touched {touched} of {n} cells \
         ({} augmenting paths)",
        outcome.stats.augmentations
    );
    for mv in &moves[..3] {
        let got = outcome.placement.pos(mv.cell);
        println!(
            "  {}: requested {}, placed {} (|delta| = {})",
            case.design.cells()[mv.cell.index()].name,
            mv.target,
            got,
            got.manhattan(mv.target)
        );
    }
    assert!(
        touched < n / 2,
        "incremental repair should be local, touched {touched}/{n}"
    );
    Ok(())
}

use flow3d::db::CellId;
