//! File-based workflow: the same flow a downstream placement tool would
//! use — write a contest-style case file and a global-placement file,
//! parse them back, legalize, emit the contest-style legal output, and
//! render the Fig-8-style displacement plot.
//!
//! ```sh
//! cargo run --release --example file_workflow
//! ```
//!
//! Artifacts land in `target/example-out/`.

use flow3d::prelude::*;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = PathBuf::from("target/example-out");
    std::fs::create_dir_all(&dir)?;

    // Produce a case with macros (ICCAD-2023-like) at small scale.
    let mut cfg = GeneratorConfig::iccad2023("case2").expect("preset exists");
    cfg.scale = 0.2;
    let case = cfg.generate()?;

    // --- write + re-read the case file --------------------------------
    let case_path = dir.join("case2.txt");
    let mut text = String::new();
    flow3d::io::write_case(&case.design, &mut text)?;
    std::fs::write(&case_path, &text)?;
    let design = flow3d::io::parse_case(&std::fs::read_to_string(&case_path)?)?;
    assert_eq!(design, case.design, "case file round-trip must be lossless");
    println!("case file     : {}", case_path.display());

    // --- global placement file -----------------------------------------
    let global = GlobalPlacer::new(GpConfig::default()).place_from(&design, &case.natural);
    let gp_path = dir.join("case2.gp.txt");
    let mut text = String::new();
    flow3d::io::write_placement3d(&design, &global, &mut text)?;
    std::fs::write(&gp_path, &text)?;
    let global = flow3d::io::parse_placement3d(&design, &std::fs::read_to_string(&gp_path)?)?;
    println!("global place  : {}", gp_path.display());

    // --- legalize + legal output file ----------------------------------
    let outcome = Flow3dLegalizer::default().legalize(&design, &global)?;
    assert!(check_legal(&design, &outcome.placement).is_legal());
    let legal_path = dir.join("case2.legal.txt");
    let mut text = String::new();
    flow3d::io::write_legal(&design, &outcome.placement, &mut text)?;
    std::fs::write(&legal_path, &text)?;
    println!("legal output  : {}", legal_path.display());

    // --- Fig-8-style plot ------------------------------------------------
    let svg = flow3d::viz::DisplacementPlot::new(
        &design,
        &global,
        &outcome.placement,
        flow3d::db::DieId::TOP,
    )
    .to_svg();
    let svg_path = dir.join("case2.top.svg");
    std::fs::write(&svg_path, svg)?;
    println!("displacement  : {}", svg_path.display());

    let stats = displacement_stats(&design, &global, &outcome.placement);
    println!(
        "avg disp {:.3} rows, max {:.2} rows, {} cross-die moves",
        stats.avg, stats.max, outcome.stats.cross_die_moves
    );
    Ok(())
}
