//! Quickstart: generate a small 3D-IC benchmark, run global placement,
//! legalize it with 3D-Flow, and verify/measure the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flow3d::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small synthetic F2F two-die case (deterministic seed).
    let case = GeneratorConfig::small_demo(2024).generate()?;
    println!(
        "generated `{}`: {} cells, {} macros, {} nets",
        case.design.name(),
        case.design.num_cells(),
        case.design.num_macros(),
        case.design.num_nets()
    );

    // 2. Global placement: continuous positions + soft die assignment.
    let global = GlobalPlacer::new(GpConfig::default()).place_from(&case.design, &case.natural);
    let gp_hpwl = hpwl::hpwl_global(&case.design, &global);
    println!("global placement HPWL: {gp_hpwl:.0} DBU");

    // 3. Legalize with 3D-Flow (paper defaults: alpha = 0.1, D2D moves and
    //    cycle-canceling post-optimization on).
    let legalizer = Flow3dLegalizer::new(Flow3dConfig::default());
    let outcome = legalizer.legalize(&case.design, &global)?;

    // 4. Verify legality and report quality.
    let report = check_legal(&case.design, &outcome.placement);
    assert!(report.is_legal(), "illegal placement: {report}");
    let stats = displacement_stats(&case.design, &global, &outcome.placement);
    println!(
        "legalized: avg displacement {:.3} row heights, max {:.2}, \
         {} augmenting paths, {} cells moved across dies",
        stats.avg, stats.max, outcome.stats.augmentations, outcome.stats.cross_die_moves
    );
    Ok(())
}

/// Re-export shim so the doc text can say `hpwl::hpwl_global`.
mod hpwl {
    pub use flow3d::metrics::hpwl_global;
}
