//! Heterogeneous technology integration (paper §II-A, §III-F): the two
//! dies use different nodes, so the *same* cell has different widths on
//! each die (`w_c^+` vs `w_c^-`). This example builds a tiny design by
//! hand with the database API, crowds the advanced (smaller) bottom die,
//! and shows 3D-Flow relieving the pressure by moving cells to the top
//! die — updating their footprints in flight and respecting the top die's
//! utilization cap.
//!
//! ```sh
//! cargo run --release --example hetero_stack
//! ```

use flow3d::db::{DesignBuilder, DieSpec, LibCellSpec, TechnologySpec};
use flow3d::prelude::*;
use flow3d_geom::FPoint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Bottom die: dense 8-DBU-row node. Top die: older 12-DBU-row node
    // where every cell is 1.5x wider.
    let mut builder = DesignBuilder::new("hetero-demo")
        .technology(
            TechnologySpec::new("N5")
                .lib_cell(
                    LibCellSpec::std_cell("INV", 8, 8)
                        .pin("A", 0, 4)
                        .pin("Y", 7, 4),
                )
                .lib_cell(
                    LibCellSpec::std_cell("DFF", 24, 8)
                        .pin("D", 0, 4)
                        .pin("Q", 23, 4),
                ),
        )
        .technology(
            TechnologySpec::new("N16")
                .lib_cell(
                    LibCellSpec::std_cell("INV", 12, 12)
                        .pin("A", 0, 6)
                        .pin("Y", 11, 6),
                )
                .lib_cell(
                    LibCellSpec::std_cell("DFF", 36, 12)
                        .pin("D", 0, 6)
                        .pin("Q", 35, 6),
                ),
        )
        .die(DieSpec::new("bottom", "N5", (0, 0, 400, 64), 8, 1, 0.85))
        .die(DieSpec::new("top", "N16", (0, 0, 400, 60), 12, 1, 0.85));

    // 60 cells, all wanting the bottom die's lower-left corner.
    let n = 60;
    for i in 0..n {
        let kind = if i % 5 == 0 { "DFF" } else { "INV" };
        builder = builder.cell(format!("u{i}"), kind);
    }
    // A few local nets.
    let design = {
        let mut b = builder;
        for i in 0..n - 1 {
            let a = format!("u{i}");
            let c = format!("u{}", i + 1);
            b = b.net(format!("n{i}"), &[(a.as_str(), 1), (c.as_str(), 0)]);
        }
        b.build()?
    };

    let mut global = Placement3d::new(n);
    for i in 0..n {
        let cell = CellId::new(i);
        global.set_pos(
            cell,
            FPoint::new(20.0 + (i % 6) as f64 * 9.0, 4.0 + (i % 4) as f64 * 8.0),
        );
        // Everything prefers the bottom die, some cells only mildly.
        global.set_die_affinity(cell, if i % 3 == 0 { 0.35 } else { 0.1 });
    }

    let outcome = Flow3dLegalizer::new(Flow3dConfig::default()).legalize(&design, &global)?;
    let report = check_legal(&design, &outcome.placement);
    assert!(report.is_legal(), "{report}");

    let moved: Vec<String> = (0..n)
        .map(CellId::new)
        .filter(|&c| outcome.placement.die(c) == DieId::TOP)
        .map(|c| design.cells()[c.index()].name.clone())
        .collect();
    println!(
        "legal placement: {} cells stayed on the bottom (N5) die, {} moved to the top (N16) die",
        n - moved.len(),
        moved.len()
    );
    for name in moved.iter().take(8) {
        let c = design.cell_by_name(name).unwrap();
        println!(
            "  {name}: width {} DBU on N5 -> {} DBU on N16",
            design.cell_width(c, DieId::BOTTOM),
            design.cell_width(c, DieId::TOP)
        );
    }
    let stats = displacement_stats(&design, &global, &outcome.placement);
    println!(
        "avg displacement {:.3} rows, max {:.2} rows",
        stats.avg, stats.max
    );

    // Utilization stays under both caps.
    for die in [DieId::BOTTOM, DieId::TOP] {
        let used: i64 = (0..n)
            .map(CellId::new)
            .filter(|&c| outcome.placement.die(c) == die)
            .map(|c| design.cell_width(c, die) * design.cell_height(die))
            .sum();
        let cap = (design.die(die).max_util * design.free_area(die) as f64) as i64;
        println!("die {die}: {used} / {cap} DBU² used");
        assert!(used <= cap);
    }
    Ok(())
}

use flow3d::db::{CellId, DieId, Placement3d};
