//! Error type for file parsing and writing.

use flow3d_db::DbError;
use std::error::Error;
use std::fmt;

/// An error raised while parsing or writing a flow3d file.
#[derive(Debug)]
#[non_exhaustive]
// flow3d-tidy: allow(dead-pub) — file-format API (flow3d::io) for external readers/writers of contest artifacts
pub enum IoError {
    /// Syntax or semantic error at a specific line (1-based).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed file described an invalid design.
    Db(DbError),
    /// String formatting failed (only possible with a failing
    /// [`fmt::Write`] sink).
    Fmt(fmt::Error),
    /// The underlying byte source of a streaming parse failed.
    Read(std::io::Error),
}

impl IoError {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        IoError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Db(e) => write!(f, "invalid design: {e}"),
            IoError::Fmt(e) => write!(f, "format error: {e}"),
            IoError::Read(e) => write!(f, "read error: {e}"),
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Db(e) => Some(e),
            IoError::Fmt(e) => Some(e),
            IoError::Read(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<DbError> for IoError {
    fn from(e: DbError) -> Self {
        IoError::Db(e)
    }
}

impl From<fmt::Error> for IoError {
    fn from(e: fmt::Error) -> Self {
        IoError::Fmt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_number() {
        let e = IoError::parse(17, "bad token");
        assert_eq!(e.to_string(), "line 17: bad token");
    }

    #[test]
    fn db_error_is_wrapped_with_source() {
        let e = IoError::from(DbError::EmptyStack);
        assert!(e.to_string().contains("no dies"));
        assert!(Error::source(&e).is_some());
    }
}
