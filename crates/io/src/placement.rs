//! Global-placement and legal-placement file formats.

use crate::error::IoError;
use crate::reader::LineReader;
use flow3d_db::{CellId, Design, DieId, LegalPlacement, Placement3d};
use flow3d_geom::{FPoint, Point};
use std::fmt::Write;

/// Parses a global-placement file against `design`.
///
/// Format, one cell per line after the header:
///
/// ```text
/// NumCells <n>
/// CellPos <name> <x> <y> <z>
/// ```
///
/// `x`/`y` are continuous DBU coordinates of the cell's lower-left corner;
/// `z` is the die affinity in `[0, num_dies - 1]`.
///
/// # Errors
///
/// Returns [`IoError::Parse`] on syntax errors, unknown cell names, cell
/// count mismatches, or cells placed twice.
pub fn parse_placement3d(design: &Design, text: &str) -> Result<Placement3d, IoError> {
    let mut r = LineReader::new(text);
    let toks = r.expect_line("NumCells")?;
    r.expect_keyword(&toks, "NumCells")?;
    let n: usize = r.field(&toks, 1, "cell count")?;
    if n != design.num_cells() {
        return Err(IoError::parse(
            r.line_no,
            format!("placement has {n} cells, design has {}", design.num_cells()),
        ));
    }
    let mut placement = Placement3d::new(n);
    let mut seen = vec![false; n];
    for _ in 0..n {
        let toks = r.expect_line("CellPos")?;
        r.expect_keyword(&toks, "CellPos")?;
        r.expect_len(&toks, 5)?;
        let name = toks[1];
        let cell = design
            .cell_by_name(name)
            .ok_or_else(|| IoError::parse(r.line_no, format!("unknown cell `{name}`")))?;
        if std::mem::replace(&mut seen[cell.index()], true) {
            return Err(IoError::parse(
                r.line_no,
                format!("cell `{name}` placed twice"),
            ));
        }
        let x: f64 = r.field(&toks, 2, "x")?;
        let y: f64 = r.field(&toks, 3, "y")?;
        let z: f64 = r.field(&toks, 4, "die affinity")?;
        placement.set_pos(cell, FPoint::new(x, y));
        placement.set_die_affinity(cell, z);
    }
    Ok(placement)
}

/// Writes a global placement in the format of [`parse_placement3d`].
///
/// # Errors
///
/// Only fails if the underlying [`Write`] sink fails.
pub fn write_placement3d(
    design: &Design,
    placement: &Placement3d,
    out: &mut impl Write,
) -> Result<(), IoError> {
    writeln!(out, "NumCells {}", design.num_cells())?;
    for (i, cell) in design.cells().iter().enumerate() {
        let c = CellId::new(i);
        let p = placement.pos(c);
        writeln!(
            out,
            "CellPos {} {:.4} {:.4} {:.4}",
            cell.name,
            p.x,
            p.y,
            placement.die_affinity(c)
        )?;
    }
    Ok(())
}

/// Parses a legal-placement file against `design`.
///
/// Format, mirroring the contest output:
///
/// ```text
/// TopDiePlacement <k>
/// Inst <name> <x> <y>
/// BottomDiePlacement <m>
/// Inst <name> <x> <y>
/// ```
///
/// # Errors
///
/// Returns [`IoError::Parse`] on syntax errors, unknown cells, duplicate
/// placements, or when `k + m != num_cells`.
pub fn parse_legal(design: &Design, text: &str) -> Result<LegalPlacement, IoError> {
    let mut r = LineReader::new(text);
    let mut placement = LegalPlacement::new(design.num_cells());
    let mut seen = vec![false; design.num_cells()];
    let mut total = 0usize;

    for (keyword, die) in [
        ("TopDiePlacement", DieId::TOP),
        ("BottomDiePlacement", DieId::BOTTOM),
    ] {
        let toks = r.expect_line(keyword)?;
        r.expect_keyword(&toks, keyword)?;
        let n: usize = r.field(&toks, 1, "placement count")?;
        for _ in 0..n {
            let toks = r.expect_line("Inst")?;
            r.expect_keyword(&toks, "Inst")?;
            r.expect_len(&toks, 4)?;
            let name = toks[1];
            let cell = design
                .cell_by_name(name)
                .ok_or_else(|| IoError::parse(r.line_no, format!("unknown cell `{name}`")))?;
            if std::mem::replace(&mut seen[cell.index()], true) {
                return Err(IoError::parse(
                    r.line_no,
                    format!("cell `{name}` placed twice"),
                ));
            }
            let x: i64 = r.field(&toks, 2, "x")?;
            let y: i64 = r.field(&toks, 3, "y")?;
            placement.place(cell, Point::new(x, y), die);
            total += 1;
        }
    }
    if total != design.num_cells() {
        return Err(IoError::parse(
            r.line_no,
            format!("{total} cells placed, design has {}", design.num_cells()),
        ));
    }
    Ok(placement)
}

/// Writes a legal placement in the format of [`parse_legal`].
///
/// # Errors
///
/// Only fails if the underlying [`Write`] sink fails.
pub fn write_legal(
    design: &Design,
    placement: &LegalPlacement,
    out: &mut impl Write,
) -> Result<(), IoError> {
    for (keyword, die) in [
        ("TopDiePlacement", DieId::TOP),
        ("BottomDiePlacement", DieId::BOTTOM),
    ] {
        let on_die: Vec<usize> = (0..design.num_cells())
            .filter(|&i| placement.die(CellId::new(i)) == die)
            .collect();
        writeln!(out, "{keyword} {}", on_die.len())?;
        for i in on_die {
            let c = CellId::new(i);
            let p = placement.pos(c);
            writeln!(out, "Inst {} {} {}", design.cells()[i].name, p.x, p.y)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_db::{DesignBuilder, DieSpec, LibCellSpec, TechnologySpec};

    fn design() -> Design {
        DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("INV", 10, 12)))
            .die(DieSpec::new("bottom", "T", (0, 0, 100, 24), 12, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 100, 24), 12, 1, 1.0))
            .cell("u0", "INV")
            .cell("u1", "INV")
            .build()
            .unwrap()
    }

    #[test]
    fn placement3d_roundtrip() {
        let d = design();
        let mut gp = Placement3d::new(2);
        gp.set_pos(CellId::new(0), FPoint::new(1.25, 3.5));
        gp.set_die_affinity(CellId::new(0), 0.75);
        gp.set_pos(CellId::new(1), FPoint::new(40.0, 12.0));
        let mut text = String::new();
        write_placement3d(&d, &gp, &mut text).unwrap();
        let gp2 = parse_placement3d(&d, &text).unwrap();
        assert!((gp2.pos(CellId::new(0)).x - 1.25).abs() < 1e-9);
        assert!((gp2.die_affinity(CellId::new(0)) - 0.75).abs() < 1e-9);
        assert!((gp2.pos(CellId::new(1)).x - 40.0).abs() < 1e-9);
    }

    #[test]
    fn legal_roundtrip() {
        let d = design();
        let mut lp = LegalPlacement::new(2);
        lp.place(CellId::new(0), Point::new(10, 0), DieId::TOP);
        lp.place(CellId::new(1), Point::new(20, 12), DieId::BOTTOM);
        let mut text = String::new();
        write_legal(&d, &lp, &mut text).unwrap();
        let lp2 = parse_legal(&d, &text).unwrap();
        assert_eq!(lp, lp2);
    }

    #[test]
    fn placement3d_count_mismatch_rejected() {
        let d = design();
        let err = parse_placement3d(&d, "NumCells 1\nCellPos u0 0 0 0\n").unwrap_err();
        assert!(err.to_string().contains("design has 2"));
    }

    #[test]
    fn duplicate_cell_rejected() {
        let d = design();
        let text = "NumCells 2\nCellPos u0 0 0 0\nCellPos u0 1 1 0\n";
        let err = parse_placement3d(&d, text).unwrap_err();
        assert!(err.to_string().contains("placed twice"));
    }

    #[test]
    fn legal_missing_cells_rejected() {
        let d = design();
        let text = "TopDiePlacement 1\nInst u0 0 0\nBottomDiePlacement 0\n";
        let err = parse_legal(&d, text).unwrap_err();
        assert!(err.to_string().contains("design has 2"));
    }

    #[test]
    fn legal_unknown_cell_rejected() {
        let d = design();
        let text = "TopDiePlacement 1\nInst nope 0 0\nBottomDiePlacement 1\nInst u1 0 0\n";
        let err = parse_legal(&d, text).unwrap_err();
        assert!(err.to_string().contains("unknown cell"));
    }
}
