//! ECO move-list files.
//!
//! A move list names the cells an optimization step displaced, their
//! requested positions, and (optionally) a requested die. It is the
//! on-disk form of the incremental API's move slice
//! (`flow3d_core::CellMove`) and the scriptable input of `flow3d eco`
//! and the serve-mode `eco` request.
//!
//! # Grammar
//!
//! ```text
//! NumMoves <n>
//! Move <instName> <x> <y>          # keep the cell's current die
//! Move <instName> <x> <y> <die>    # request die 0 (bottom) or 1 (top)
//! ```
//!
//! Blank lines and `#` comments are skipped, like every other format in
//! this crate.

use crate::error::IoError;
use crate::reader::LineReader;
use flow3d_db::{CellId, Design, DieId};
use flow3d_geom::Point;
use std::fmt::Write;

/// One parsed ECO move: the io-level mirror of `flow3d_core::CellMove`
/// (kept separate so this crate does not depend on the legalizer).
#[derive(Debug, Clone, Copy, PartialEq)]
// flow3d-tidy: allow(dead-pub) — file-format API (flow3d::io) for external readers/writers of contest artifacts
pub struct EcoMoveRecord {
    /// The cell the optimization step touched.
    pub cell: CellId,
    /// Requested lower-left position (need not be legal).
    pub target: Point,
    /// Requested die, or `None` to keep the cell's current die.
    pub die: Option<DieId>,
}

/// Parses a move list against `design`.
///
/// # Errors
///
/// Returns [`IoError::Parse`] on syntax errors, unknown cell names,
/// out-of-range die indices, duplicate cells, or a count mismatch.
pub fn parse_moves(design: &Design, text: &str) -> Result<Vec<EcoMoveRecord>, IoError> {
    let mut r = LineReader::new(text);
    let toks = r.expect_line("NumMoves")?;
    r.expect_keyword(&toks, "NumMoves")?;
    let n: usize = r.field(&toks, 1, "move count")?;
    let mut moves = Vec::with_capacity(n);
    let mut seen = vec![false; design.num_cells()];
    for _ in 0..n {
        let toks = r.expect_line("Move")?;
        r.expect_keyword(&toks, "Move")?;
        if toks.len() != 4 && toks.len() != 5 {
            return Err(IoError::parse(
                r.line_no,
                format!("expected 4 or 5 fields, found {}", toks.len()),
            ));
        }
        let name = toks[1];
        let cell = design
            .cell_by_name(name)
            .ok_or_else(|| IoError::parse(r.line_no, format!("unknown cell `{name}`")))?;
        if std::mem::replace(&mut seen[cell.index()], true) {
            return Err(IoError::parse(
                r.line_no,
                format!("cell `{name}` moved twice"),
            ));
        }
        let x: i64 = r.field(&toks, 2, "x")?;
        let y: i64 = r.field(&toks, 3, "y")?;
        let die = if toks.len() == 5 {
            let d: usize = r.field(&toks, 4, "die")?;
            if d >= design.num_dies() {
                return Err(IoError::parse(
                    r.line_no,
                    format!("die {d} out of range (design has {})", design.num_dies()),
                ));
            }
            Some(DieId::new(d))
        } else {
            None
        };
        moves.push(EcoMoveRecord {
            cell,
            target: Point::new(x, y),
            die,
        });
    }
    if let Some(extra) = r.next_line() {
        return Err(IoError::parse(
            r.line_no,
            format!("unexpected trailing line `{}`", extra.join(" ")),
        ));
    }
    Ok(moves)
}

/// Writes a move list in the format of [`parse_moves`].
///
/// # Errors
///
/// Only fails if the underlying [`Write`] sink fails.
// flow3d-tidy: allow(dead-pub) — file-format API (flow3d::io) for external readers/writers of contest artifacts
pub fn write_moves(
    design: &Design,
    moves: &[EcoMoveRecord],
    out: &mut impl Write,
) -> Result<(), IoError> {
    writeln!(out, "NumMoves {}", moves.len())?;
    for mv in moves {
        let name = &design.cell(mv.cell).name;
        match mv.die {
            Some(d) => writeln!(
                out,
                "Move {name} {} {} {}",
                mv.target.x,
                mv.target.y,
                d.index()
            )?,
            None => writeln!(out, "Move {name} {} {}", mv.target.x, mv.target.y)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_db::{DesignBuilder, DieSpec, LibCellSpec, TechnologySpec};

    fn design() -> Design {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 30, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 400, 40), 10, 1, 1.0));
        for i in 0..4 {
            b = b.cell(format!("u{i}"), "C");
        }
        b.build().unwrap()
    }

    #[test]
    fn roundtrip() {
        let d = design();
        let moves = vec![
            EcoMoveRecord {
                cell: CellId::new(0),
                target: Point::new(35, 10),
                die: None,
            },
            EcoMoveRecord {
                cell: CellId::new(2),
                target: Point::new(-5, 0),
                die: Some(DieId::new(1)),
            },
        ];
        let mut text = String::new();
        write_moves(&d, &moves, &mut text).unwrap();
        assert_eq!(parse_moves(&d, &text).unwrap(), moves);
    }

    #[test]
    fn rejects_bad_input() {
        let d = design();
        assert!(parse_moves(&d, "NumMoves 1\nMove nosuch 1 2\n").is_err());
        assert!(parse_moves(&d, "NumMoves 1\nMove u0 1 2 9\n").is_err());
        assert!(parse_moves(&d, "NumMoves 2\nMove u0 1 2\nMove u0 3 4\n").is_err());
        assert!(parse_moves(&d, "NumMoves 1\nMove u0 1 2\nMove u1 3 4\n").is_err());
        assert!(parse_moves(&d, "NumMoves 2\nMove u0 1 2\n").is_err());
        // Comments and blank lines are fine.
        let ok = parse_moves(&d, "# eco\nNumMoves 1\n\nMove u1 7 0 0\n").unwrap();
        assert_eq!(ok[0].die, Some(DieId::new(0)));
    }
}
