#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! File formats for the 3D-Flow legalizer reproduction.
//!
//! Three line-oriented text formats modeled on the ICCAD 2022/2023 contest
//! Problem B grammar (see `DESIGN.md` for the substitution rationale):
//!
//! * **Case files** ([`parse_case`], [`write_case`]) describe a complete
//!   design: technologies with per-tech lib cell sizes, the shared die
//!   outline, per-die rows / utilization / technology binding, instances,
//!   nets, and fixed macro positions. [`parse_case_reader`] is the
//!   streaming variant: it consumes any [`std::io::BufRead`] source one
//!   line at a time and resolves names to ids on the fly, so million-cell
//!   files parse without materializing the text or intermediate name maps.
//! * **Global placement files** ([`parse_placement3d`],
//!   [`write_placement3d`]) carry continuous `(x, y, z)` positions per
//!   cell, `z` being the die affinity.
//! * **Legal placement files** ([`parse_legal`], [`write_legal`]) carry
//!   the legalizer output: integer position and die per cell.
//! * **ECO move lists** ([`parse_moves`], [`write_moves`]) carry the
//!   cells an optimization step displaced with their requested positions
//!   and dies — the input of `flow3d eco` and the serve-mode `eco`
//!   request (an extension; the grammar is on [`parse_moves`]).
//!
//! # Case grammar
//!
//! ```text
//! DesignName <name>                                # optional
//! NumTechnologies <n>
//! Tech <name> <numLibCells>
//! LibCell <N|Y> <name> <sizeX> <sizeY> <numPins>   # Y marks a macro
//! Pin <name> <offsetX> <offsetY>
//! DieSize <xlo> <ylo> <xhi> <yhi>
//! TopDieMaxUtil <percent>
//! BottomDieMaxUtil <percent>
//! TopDieRows <startX> <startY> <rowLength> <rowHeight> <repeat>
//! BottomDieRows <startX> <startY> <rowLength> <rowHeight> <repeat>
//! TopDieTech <techName>
//! BottomDieTech <techName>
//! TerminalSize <sizeX> <sizeY>
//! TerminalSpacing <spacing>
//! NumInstances <n>
//! Inst <instName> <libCellName>
//! NumNets <n>
//! Net <netName> <numPins>
//! Pin <instName>/<libPinName>
//! NumMacroPositions <n>                            # extension: fixed macros
//! MacroPos <instName> <x> <y> <top|bottom>
//! ```
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = "\
//! NumTechnologies 1
//! Tech T 1
//! LibCell N INV 10 12 1
//! Pin A 0 6
//! DieSize 0 0 100 24
//! TopDieMaxUtil 90
//! BottomDieMaxUtil 90
//! TopDieRows 0 0 100 12 2
//! BottomDieRows 0 0 100 12 2
//! TopDieTech T
//! BottomDieTech T
//! TerminalSize 2 2
//! TerminalSpacing 1
//! NumInstances 1
//! Inst u0 INV
//! NumNets 0
//! ";
//! let design = flow3d_io::parse_case(text)?;
//! assert_eq!(design.num_cells(), 1);
//! let mut out = String::new();
//! flow3d_io::write_case(&design, &mut out)?;
//! let reparsed = flow3d_io::parse_case(&out)?;
//! assert_eq!(reparsed.num_cells(), 1);
//! # Ok(())
//! # }
//! ```

mod case;
mod error;
mod moves;
mod placement;
mod reader;
mod stream;

pub use case::{parse_case, write_case};
pub use error::IoError;
pub use moves::{parse_moves, write_moves, EcoMoveRecord};
pub use placement::{parse_legal, parse_placement3d, write_legal, write_placement3d};
pub use stream::parse_case_reader;
