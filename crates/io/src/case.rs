//! Case file format: the full design description.

use crate::error::IoError;
use flow3d_db::Design;
use std::fmt::Write;

/// Parses a case file into a validated [`Design`].
///
/// See the [crate-level documentation](crate) for the grammar. The
/// optional `TopDieSiteWidth` / `BottomDieSiteWidth` lines (default 1)
/// extend the contest grammar with an explicit site grid.
///
/// This is a thin wrapper over the streaming reader
/// ([`parse_case_reader`](crate::parse_case_reader)) for callers that
/// already hold the text in memory; for million-cell files, stream from
/// the file instead of reading it into a `String` first.
///
/// # Errors
///
/// Returns [`IoError::Parse`] with a line number for syntax errors and
/// [`IoError::Db`] if the file describes an inconsistent design.
pub fn parse_case(text: &str) -> Result<Design, IoError> {
    crate::stream::parse_case_reader(text.as_bytes())
}

/// Writes `design` as a case file that [`parse_case`] round-trips.
///
/// # Errors
///
/// Only fails if the underlying [`Write`] sink fails.
pub fn write_case(design: &Design, out: &mut impl Write) -> Result<(), IoError> {
    writeln!(out, "DesignName {}", design.name())?;
    writeln!(out, "NumTechnologies {}", design.techs().len())?;
    for tech in design.techs() {
        writeln!(out, "Tech {} {}", tech.name, tech.lib_cells.len())?;
        for lc in &tech.lib_cells {
            writeln!(
                out,
                "LibCell {} {} {} {} {}",
                if lc.is_macro() { "Y" } else { "N" },
                lc.name,
                lc.width,
                lc.height,
                lc.pins.len()
            )?;
            for p in &lc.pins {
                writeln!(out, "Pin {} {} {}", p.name, p.offset.x, p.offset.y)?;
            }
        }
    }

    let bottom = design.die(flow3d_db::DieId::BOTTOM);
    let top = design.die(flow3d_db::DieId::TOP);
    let union = bottom.outline.union(&top.outline);
    writeln!(
        out,
        "DieSize {} {} {} {}",
        union.xlo, union.ylo, union.xhi, union.yhi
    )?;
    let fmt_util = |u: f64| {
        let pct = u * 100.0;
        if (pct - pct.round()).abs() < 1e-9 {
            format!("{}", pct.round() as i64)
        } else {
            format!("{pct:.2}")
        }
    };
    writeln!(out, "TopDieMaxUtil {}", fmt_util(top.max_util))?;
    writeln!(out, "BottomDieMaxUtil {}", fmt_util(bottom.max_util))?;
    for (kw, die) in [("TopDieRows", top), ("BottomDieRows", bottom)] {
        writeln!(
            out,
            "{kw} {} {} {} {} {}",
            die.outline.xlo,
            die.outline.ylo,
            die.outline.width(),
            die.row_height,
            die.num_rows()
        )?;
    }
    writeln!(out, "TopDieTech {}", design.techs()[top.tech.index()].name)?;
    writeln!(
        out,
        "BottomDieTech {}",
        design.techs()[bottom.tech.index()].name
    )?;
    if top.site_width != 1 {
        writeln!(out, "TopDieSiteWidth {}", top.site_width)?;
    }
    if bottom.site_width != 1 {
        writeln!(out, "BottomDieSiteWidth {}", bottom.site_width)?;
    }
    writeln!(out, "TerminalSize 1 1")?;
    writeln!(out, "TerminalSpacing 1")?;

    writeln!(
        out,
        "NumInstances {}",
        design.num_cells() + design.num_macros()
    )?;
    let lib_name = |id: flow3d_db::LibCellId| &design.techs()[0].lib_cells[id.index()].name;
    for c in design.cells() {
        writeln!(out, "Inst {} {}", c.name, lib_name(c.lib_cell))?;
    }
    for m in design.macros() {
        writeln!(out, "Inst {} {}", m.name, lib_name(m.lib_cell))?;
    }

    writeln!(out, "NumNets {}", design.num_nets())?;
    for net in design.nets() {
        writeln!(out, "Net {} {}", net.name, net.pins.len())?;
        for pin in &net.pins {
            let (inst_name, lib_cell) = match pin.inst {
                flow3d_db::InstRef::Cell(c) => {
                    let ci = &design.cells()[c.index()];
                    (&ci.name, ci.lib_cell)
                }
                flow3d_db::InstRef::Macro(m) => {
                    let mi = &design.macros()[m.index()];
                    (&mi.name, mi.lib_cell)
                }
            };
            let pin_name = &design.techs()[0].lib_cells[lib_cell.index()].pins[pin.pin].name;
            writeln!(out, "Pin {inst_name}/{pin_name}")?;
        }
    }

    writeln!(out, "NumMacroPositions {}", design.num_macros())?;
    for m in design.macros() {
        writeln!(out, "MacroPos {} {} {} {}", m.name, m.pos.x, m.pos.y, m.die)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_db::DieId;

    const CASE: &str = "\
# demo case
NumTechnologies 2
Tech TA 2
LibCell N INV 10 12 2
Pin A 0 6
Pin Y 9 6
LibCell Y RAM 200 24 1
Pin D 100 12
Tech TB 2
LibCell N INV 8 10 2
Pin A 0 5
Pin Y 7 5
LibCell Y RAM 200 20 1
Pin D 100 10
DieSize 0 0 1000 120
TopDieMaxUtil 80
BottomDieMaxUtil 90
TopDieRows 0 0 1000 10 12
BottomDieRows 0 0 1000 12 10
TopDieTech TB
BottomDieTech TA
TerminalSize 4 4
TerminalSpacing 2
NumInstances 3
Inst u0 INV
Inst u1 INV
Inst mc0 RAM
NumNets 2
Net n1 2
Pin u0/Y
Pin u1/A
Net n2 2
Pin u1/Y
Pin mc0/D
NumMacroPositions 1
MacroPos mc0 400 0 bottom
";

    #[test]
    fn parses_full_case() {
        let d = parse_case(CASE).unwrap();
        assert_eq!(d.num_cells(), 2);
        assert_eq!(d.num_macros(), 1);
        assert_eq!(d.num_nets(), 2);
        assert_eq!(d.num_dies(), 2);
        let bottom = d.die(DieId::BOTTOM);
        assert_eq!(bottom.row_height, 12);
        assert_eq!(bottom.num_rows(), 10);
        assert!((bottom.max_util - 0.9).abs() < 1e-12);
        let top = d.die(DieId::TOP);
        assert_eq!(top.row_height, 10);
        assert_eq!(top.num_rows(), 12);
        // Hetero widths.
        let u0 = d.cell_by_name("u0").unwrap();
        assert_eq!(d.cell_width(u0, DieId::BOTTOM), 10);
        assert_eq!(d.cell_width(u0, DieId::TOP), 8);
        // Macro position.
        let m = d.macro_by_name("mc0").unwrap();
        assert_eq!(d.macros()[m.index()].pos, flow3d_geom::Point::new(400, 0));
    }

    #[test]
    fn roundtrips_through_writer() {
        let d = parse_case(CASE).unwrap();
        let mut text = String::new();
        write_case(&d, &mut text).unwrap();
        assert!(text.starts_with("DesignName case"));
        let d2 = parse_case(&text).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn design_name_keyword_is_parsed() {
        let named = format!("DesignName mychip\n{CASE}");
        let d = parse_case(&named).unwrap();
        assert_eq!(d.name(), "mychip");
    }

    #[test]
    fn error_on_unknown_pin() {
        let bad = CASE.replace("Pin u0/Y", "Pin u0/Q");
        let err = parse_case(&bad).unwrap_err();
        assert!(err.to_string().contains("no pin `Q`"), "{err}");
    }

    #[test]
    fn error_on_missing_macro_position() {
        let bad = CASE.replace("NumMacroPositions 1\nMacroPos mc0 400 0 bottom\n", "");
        let err = parse_case(&bad).unwrap_err();
        assert!(err.to_string().contains("MacroPos"), "{err}");
    }

    #[test]
    fn error_on_bad_macro_flag() {
        let bad = CASE.replace("LibCell N INV 10 12 2", "LibCell X INV 10 12 2");
        let err = parse_case(&bad).unwrap_err();
        assert!(err.to_string().contains("macro flag"), "{err}");
    }

    #[test]
    fn error_on_truncated_file() {
        let head: String = CASE.lines().take(5).map(|l| format!("{l}\n")).collect();
        let err = parse_case(&head).unwrap_err();
        assert!(err.to_string().contains("end of file"), "{err}");
    }

    #[test]
    fn error_mentions_line_number() {
        let bad = CASE.replace("Inst u1 INV", "Inst u1 NAND99");
        let err = parse_case(&bad).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert!(line > 20, "line {line}"),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn fractional_utilization_roundtrips() {
        let with_frac = CASE.replace("TopDieMaxUtil 80", "TopDieMaxUtil 72.50");
        let d = parse_case(&with_frac).unwrap();
        assert!((d.die(DieId::TOP).max_util - 0.725).abs() < 1e-9);
        let mut text = String::new();
        write_case(&d, &mut text).unwrap();
        assert!(text.contains("TopDieMaxUtil 72.50"));
    }
}
