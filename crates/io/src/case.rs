//! Case file format: the full design description.

use crate::error::IoError;
use crate::reader::LineReader;
use flow3d_db::{Design, DesignBuilder, DieSpec, LibCellSpec, TechnologySpec};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Parses a case file into a validated [`Design`].
///
/// See the [crate-level documentation](crate) for the grammar. The
/// optional `TopDieSiteWidth` / `BottomDieSiteWidth` lines (default 1)
/// extend the contest grammar with an explicit site grid.
///
/// # Errors
///
/// Returns [`IoError::Parse`] with a line number for syntax errors and
/// [`IoError::Db`] if the file describes an inconsistent design.
pub fn parse_case(text: &str) -> Result<Design, IoError> {
    let mut r = LineReader::new(text);

    // --- Optional design name, then technologies --------------------------
    let mut toks = r.expect_line("DesignName or NumTechnologies")?;
    let mut design_name = String::from("case");
    if toks.first() == Some(&"DesignName") {
        design_name = r.field(&toks, 1, "design name")?;
        toks = r.expect_line("NumTechnologies")?;
    }
    r.expect_keyword(&toks, "NumTechnologies")?;
    let num_techs: usize = r.field(&toks, 1, "technology count")?;

    let mut tech_specs = Vec::with_capacity(num_techs);
    // lib cell name -> pin names (from the first tech) for net resolution.
    let mut pin_names: BTreeMap<String, Vec<String>> = BTreeMap::new();
    // lib cell name -> is_macro
    let mut is_macro: BTreeMap<String, bool> = BTreeMap::new();

    for t in 0..num_techs {
        let toks = r.expect_line("Tech")?;
        r.expect_keyword(&toks, "Tech")?;
        let tech_name: String = r.field(&toks, 1, "technology name")?;
        let num_cells: usize = r.field(&toks, 2, "lib cell count")?;
        let mut spec = TechnologySpec::new(&tech_name);
        for _ in 0..num_cells {
            let toks = r.expect_line("LibCell")?;
            r.expect_keyword(&toks, "LibCell")?;
            r.expect_len(&toks, 6)?;
            let macro_flag = match toks[1] {
                "Y" => true,
                "N" => false,
                other => {
                    return Err(IoError::parse(
                        r.line_no,
                        format!("macro flag must be Y or N, found `{other}`"),
                    ))
                }
            };
            let name: String = r.field(&toks, 2, "lib cell name")?;
            let sx: i64 = r.field(&toks, 3, "sizeX")?;
            let sy: i64 = r.field(&toks, 4, "sizeY")?;
            let num_pins: usize = r.field(&toks, 5, "pin count")?;
            let mut cell = if macro_flag {
                LibCellSpec::macro_cell(&name, sx, sy)
            } else {
                LibCellSpec::std_cell(&name, sx, sy)
            };
            let mut names = Vec::with_capacity(num_pins);
            for _ in 0..num_pins {
                let toks = r.expect_line("Pin")?;
                r.expect_keyword(&toks, "Pin")?;
                r.expect_len(&toks, 4)?;
                let pname: String = r.field(&toks, 1, "pin name")?;
                let dx: i64 = r.field(&toks, 2, "pin offsetX")?;
                let dy: i64 = r.field(&toks, 3, "pin offsetY")?;
                cell = cell.pin(&pname, dx, dy);
                names.push(pname);
            }
            if t == 0 {
                pin_names.insert(name.clone(), names);
                is_macro.insert(name.clone(), macro_flag);
            }
            spec = spec.lib_cell(cell);
        }
        tech_specs.push(spec);
    }

    // --- Die description ---------------------------------------------------
    let toks = r.expect_line("DieSize")?;
    r.expect_keyword(&toks, "DieSize")?;
    let _die: (i64, i64, i64, i64) = (
        r.field(&toks, 1, "die xlo")?,
        r.field(&toks, 2, "die ylo")?,
        r.field(&toks, 3, "die xhi")?,
        r.field(&toks, 4, "die yhi")?,
    );

    let mut top_util = 100.0f64;
    let mut bottom_util = 100.0f64;
    let mut top_rows: Option<(i64, i64, i64, i64, i64)> = None;
    let mut bottom_rows: Option<(i64, i64, i64, i64, i64)> = None;
    let mut top_tech: Option<String> = None;
    let mut bottom_tech: Option<String> = None;
    let mut top_site = 1i64;
    let mut bottom_site = 1i64;

    let num_instances = loop {
        let toks = r.expect_line("die description or NumInstances")?;
        match toks[0] {
            "TopDieMaxUtil" => top_util = r.field(&toks, 1, "top utilization")?,
            "BottomDieMaxUtil" => bottom_util = r.field(&toks, 1, "bottom utilization")?,
            "TopDieRows" | "BottomDieRows" => {
                let rows = (
                    r.field(&toks, 1, "row startX")?,
                    r.field(&toks, 2, "row startY")?,
                    r.field(&toks, 3, "row length")?,
                    r.field(&toks, 4, "row height")?,
                    r.field(&toks, 5, "row repeat")?,
                );
                if toks[0] == "TopDieRows" {
                    top_rows = Some(rows);
                } else {
                    bottom_rows = Some(rows);
                }
            }
            "TopDieTech" => top_tech = Some(r.field(&toks, 1, "top technology")?),
            "BottomDieTech" => bottom_tech = Some(r.field(&toks, 1, "bottom technology")?),
            "TopDieSiteWidth" => top_site = r.field(&toks, 1, "top site width")?,
            "BottomDieSiteWidth" => bottom_site = r.field(&toks, 1, "bottom site width")?,
            "TerminalSize" | "TerminalSpacing" | "TerminalCost" => {
                // Hybrid-bonding terminal parameters: accepted, not used by
                // the legalizer (terminal assignment is a separate problem).
            }
            "NumInstances" => break r.field::<usize>(&toks, 1, "instance count")?,
            other => {
                return Err(IoError::parse(
                    r.line_no,
                    format!("unexpected keyword `{other}` in die description"),
                ))
            }
        }
    };

    let line_no = r.line_no;
    let missing =
        |what: &str| IoError::parse(line_no, format!("missing {what} before NumInstances"));
    let top_rows = top_rows.ok_or_else(|| missing("TopDieRows"))?;
    let bottom_rows = bottom_rows.ok_or_else(|| missing("BottomDieRows"))?;
    let top_tech = top_tech.ok_or_else(|| missing("TopDieTech"))?;
    let bottom_tech = bottom_tech.ok_or_else(|| missing("BottomDieTech"))?;

    let die_spec =
        |name: &str, tech: &str, rows: (i64, i64, i64, i64, i64), site: i64, util: f64| {
            let (sx, sy, len, h, rep) = rows;
            DieSpec::new(
                name,
                tech,
                (sx, sy, sx + len, sy + h * rep),
                h,
                site,
                util / 100.0,
            )
        };

    let mut builder = DesignBuilder::new(design_name);
    for spec in tech_specs {
        builder = builder.technology(spec);
    }
    // Die 0 = bottom, die 1 = top.
    builder = builder
        .die(die_spec(
            "bottom",
            &bottom_tech,
            bottom_rows,
            bottom_site,
            bottom_util,
        ))
        .die(die_spec("top", &top_tech, top_rows, top_site, top_util));

    // --- Instances ----------------------------------------------------------
    // Split std cells from macros; macro positions arrive later.
    let mut inst_lib: BTreeMap<String, String> = BTreeMap::new();
    let mut macro_insts: Vec<String> = Vec::new();
    for _ in 0..num_instances {
        let toks = r.expect_line("Inst")?;
        r.expect_keyword(&toks, "Inst")?;
        r.expect_len(&toks, 3)?;
        let name: String = r.field(&toks, 1, "instance name")?;
        let lib: String = r.field(&toks, 2, "lib cell name")?;
        let mac = *is_macro
            .get(&lib)
            .ok_or_else(|| IoError::parse(r.line_no, format!("unknown lib cell `{lib}`")))?;
        if mac {
            macro_insts.push(name.clone());
        } else {
            builder = builder.cell(&name, &lib);
        }
        inst_lib.insert(name, lib);
    }

    // --- Nets ----------------------------------------------------------------
    let toks = r.expect_line("NumNets")?;
    r.expect_keyword(&toks, "NumNets")?;
    let num_nets: usize = r.field(&toks, 1, "net count")?;
    for _ in 0..num_nets {
        let toks = r.expect_line("Net")?;
        r.expect_keyword(&toks, "Net")?;
        let net_name: String = r.field(&toks, 1, "net name")?;
        let num_pins: usize = r.field(&toks, 2, "net pin count")?;
        let mut pins: Vec<(String, usize)> = Vec::with_capacity(num_pins);
        for _ in 0..num_pins {
            let toks = r.expect_line("Pin")?;
            r.expect_keyword(&toks, "Pin")?;
            r.expect_len(&toks, 2)?;
            let spec = toks[1];
            let (inst, pin_name) = spec.split_once('/').ok_or_else(|| {
                IoError::parse(r.line_no, format!("pin `{spec}` missing `/` separator"))
            })?;
            let lib = inst_lib.get(inst).ok_or_else(|| {
                IoError::parse(
                    r.line_no,
                    format!("pin references unknown instance `{inst}`"),
                )
            })?;
            let idx = pin_names[lib]
                .iter()
                .position(|p| p == pin_name)
                .ok_or_else(|| {
                    IoError::parse(
                        r.line_no,
                        format!("lib cell `{lib}` has no pin `{pin_name}`"),
                    )
                })?;
            pins.push((inst.to_string(), idx));
        }
        let pin_refs: Vec<(&str, usize)> = pins.iter().map(|(s, i)| (s.as_str(), *i)).collect();
        builder = builder.net(&net_name, &pin_refs);
    }

    // --- Fixed macro positions (extension section) ----------------------------
    let mut placed: BTreeMap<String, (i64, i64, String)> = BTreeMap::new();
    if let Some(toks) = r.next_line() {
        r.expect_keyword(&toks, "NumMacroPositions")?;
        let n: usize = r.field(&toks, 1, "macro position count")?;
        for _ in 0..n {
            let toks = r.expect_line("MacroPos")?;
            r.expect_keyword(&toks, "MacroPos")?;
            r.expect_len(&toks, 5)?;
            let name: String = r.field(&toks, 1, "macro name")?;
            let x: i64 = r.field(&toks, 2, "macro x")?;
            let y: i64 = r.field(&toks, 3, "macro y")?;
            let die: String = r.field(&toks, 4, "macro die")?;
            if die != "top" && die != "bottom" {
                return Err(IoError::parse(
                    r.line_no,
                    format!("macro die must be `top` or `bottom`, found `{die}`"),
                ));
            }
            placed.insert(name, (x, y, die));
        }
    }
    for name in macro_insts {
        let (x, y, die) = placed.remove(&name).ok_or_else(|| {
            IoError::parse(
                r.line_no,
                format!("macro instance `{name}` has no MacroPos entry"),
            )
        })?;
        let lib = inst_lib[&name].clone();
        builder = builder.macro_inst(&name, &lib, &die, x, y);
    }
    if let Some(name) = placed.keys().next() {
        return Err(IoError::parse(
            r.line_no,
            format!("MacroPos for unknown macro `{name}`"),
        ));
    }

    Ok(builder.build()?)
}

/// Writes `design` as a case file that [`parse_case`] round-trips.
///
/// # Errors
///
/// Only fails if the underlying [`Write`] sink fails.
pub fn write_case(design: &Design, out: &mut impl Write) -> Result<(), IoError> {
    writeln!(out, "DesignName {}", design.name())?;
    writeln!(out, "NumTechnologies {}", design.techs().len())?;
    for tech in design.techs() {
        writeln!(out, "Tech {} {}", tech.name, tech.lib_cells.len())?;
        for lc in &tech.lib_cells {
            writeln!(
                out,
                "LibCell {} {} {} {} {}",
                if lc.is_macro() { "Y" } else { "N" },
                lc.name,
                lc.width,
                lc.height,
                lc.pins.len()
            )?;
            for p in &lc.pins {
                writeln!(out, "Pin {} {} {}", p.name, p.offset.x, p.offset.y)?;
            }
        }
    }

    let bottom = design.die(flow3d_db::DieId::BOTTOM);
    let top = design.die(flow3d_db::DieId::TOP);
    let union = bottom.outline.union(&top.outline);
    writeln!(
        out,
        "DieSize {} {} {} {}",
        union.xlo, union.ylo, union.xhi, union.yhi
    )?;
    let fmt_util = |u: f64| {
        let pct = u * 100.0;
        if (pct - pct.round()).abs() < 1e-9 {
            format!("{}", pct.round() as i64)
        } else {
            format!("{pct:.2}")
        }
    };
    writeln!(out, "TopDieMaxUtil {}", fmt_util(top.max_util))?;
    writeln!(out, "BottomDieMaxUtil {}", fmt_util(bottom.max_util))?;
    for (kw, die) in [("TopDieRows", top), ("BottomDieRows", bottom)] {
        writeln!(
            out,
            "{kw} {} {} {} {} {}",
            die.outline.xlo,
            die.outline.ylo,
            die.outline.width(),
            die.row_height,
            die.num_rows()
        )?;
    }
    writeln!(out, "TopDieTech {}", design.techs()[top.tech.index()].name)?;
    writeln!(
        out,
        "BottomDieTech {}",
        design.techs()[bottom.tech.index()].name
    )?;
    if top.site_width != 1 {
        writeln!(out, "TopDieSiteWidth {}", top.site_width)?;
    }
    if bottom.site_width != 1 {
        writeln!(out, "BottomDieSiteWidth {}", bottom.site_width)?;
    }
    writeln!(out, "TerminalSize 1 1")?;
    writeln!(out, "TerminalSpacing 1")?;

    writeln!(
        out,
        "NumInstances {}",
        design.num_cells() + design.num_macros()
    )?;
    let lib_name = |id: flow3d_db::LibCellId| &design.techs()[0].lib_cells[id.index()].name;
    for c in design.cells() {
        writeln!(out, "Inst {} {}", c.name, lib_name(c.lib_cell))?;
    }
    for m in design.macros() {
        writeln!(out, "Inst {} {}", m.name, lib_name(m.lib_cell))?;
    }

    writeln!(out, "NumNets {}", design.num_nets())?;
    for net in design.nets() {
        writeln!(out, "Net {} {}", net.name, net.pins.len())?;
        for pin in &net.pins {
            let (inst_name, lib_cell) = match pin.inst {
                flow3d_db::InstRef::Cell(c) => {
                    let ci = &design.cells()[c.index()];
                    (&ci.name, ci.lib_cell)
                }
                flow3d_db::InstRef::Macro(m) => {
                    let mi = &design.macros()[m.index()];
                    (&mi.name, mi.lib_cell)
                }
            };
            let pin_name = &design.techs()[0].lib_cells[lib_cell.index()].pins[pin.pin].name;
            writeln!(out, "Pin {inst_name}/{pin_name}")?;
        }
    }

    writeln!(out, "NumMacroPositions {}", design.num_macros())?;
    for m in design.macros() {
        writeln!(out, "MacroPos {} {} {} {}", m.name, m.pos.x, m.pos.y, m.die)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_db::DieId;

    const CASE: &str = "\
# demo case
NumTechnologies 2
Tech TA 2
LibCell N INV 10 12 2
Pin A 0 6
Pin Y 9 6
LibCell Y RAM 200 24 1
Pin D 100 12
Tech TB 2
LibCell N INV 8 10 2
Pin A 0 5
Pin Y 7 5
LibCell Y RAM 200 20 1
Pin D 100 10
DieSize 0 0 1000 120
TopDieMaxUtil 80
BottomDieMaxUtil 90
TopDieRows 0 0 1000 10 12
BottomDieRows 0 0 1000 12 10
TopDieTech TB
BottomDieTech TA
TerminalSize 4 4
TerminalSpacing 2
NumInstances 3
Inst u0 INV
Inst u1 INV
Inst mc0 RAM
NumNets 2
Net n1 2
Pin u0/Y
Pin u1/A
Net n2 2
Pin u1/Y
Pin mc0/D
NumMacroPositions 1
MacroPos mc0 400 0 bottom
";

    #[test]
    fn parses_full_case() {
        let d = parse_case(CASE).unwrap();
        assert_eq!(d.num_cells(), 2);
        assert_eq!(d.num_macros(), 1);
        assert_eq!(d.num_nets(), 2);
        assert_eq!(d.num_dies(), 2);
        let bottom = d.die(DieId::BOTTOM);
        assert_eq!(bottom.row_height, 12);
        assert_eq!(bottom.num_rows(), 10);
        assert!((bottom.max_util - 0.9).abs() < 1e-12);
        let top = d.die(DieId::TOP);
        assert_eq!(top.row_height, 10);
        assert_eq!(top.num_rows(), 12);
        // Hetero widths.
        let u0 = d.cell_by_name("u0").unwrap();
        assert_eq!(d.cell_width(u0, DieId::BOTTOM), 10);
        assert_eq!(d.cell_width(u0, DieId::TOP), 8);
        // Macro position.
        let m = d.macro_by_name("mc0").unwrap();
        assert_eq!(d.macros()[m.index()].pos, flow3d_geom::Point::new(400, 0));
    }

    #[test]
    fn roundtrips_through_writer() {
        let d = parse_case(CASE).unwrap();
        let mut text = String::new();
        write_case(&d, &mut text).unwrap();
        assert!(text.starts_with("DesignName case"));
        let d2 = parse_case(&text).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn design_name_keyword_is_parsed() {
        let named = format!("DesignName mychip\n{CASE}");
        let d = parse_case(&named).unwrap();
        assert_eq!(d.name(), "mychip");
    }

    #[test]
    fn error_on_unknown_pin() {
        let bad = CASE.replace("Pin u0/Y", "Pin u0/Q");
        let err = parse_case(&bad).unwrap_err();
        assert!(err.to_string().contains("no pin `Q`"), "{err}");
    }

    #[test]
    fn error_on_missing_macro_position() {
        let bad = CASE.replace("NumMacroPositions 1\nMacroPos mc0 400 0 bottom\n", "");
        let err = parse_case(&bad).unwrap_err();
        assert!(err.to_string().contains("MacroPos"), "{err}");
    }

    #[test]
    fn error_on_bad_macro_flag() {
        let bad = CASE.replace("LibCell N INV 10 12 2", "LibCell X INV 10 12 2");
        let err = parse_case(&bad).unwrap_err();
        assert!(err.to_string().contains("macro flag"), "{err}");
    }

    #[test]
    fn error_on_truncated_file() {
        let head: String = CASE.lines().take(5).map(|l| format!("{l}\n")).collect();
        let err = parse_case(&head).unwrap_err();
        assert!(err.to_string().contains("end of file"), "{err}");
    }

    #[test]
    fn error_mentions_line_number() {
        let bad = CASE.replace("Inst u1 INV", "Inst u1 NAND99");
        let err = parse_case(&bad).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert!(line > 20, "line {line}"),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn fractional_utilization_roundtrips() {
        let with_frac = CASE.replace("TopDieMaxUtil 80", "TopDieMaxUtil 72.50");
        let d = parse_case(&with_frac).unwrap();
        assert!((d.die(DieId::TOP).max_util - 0.725).abs() < 1e-9);
        let mut text = String::new();
        write_case(&d, &mut text).unwrap();
        assert!(text.contains("TopDieMaxUtil 72.50"));
    }
}
