//! Streaming case reader for million-cell files.
//!
//! [`parse_case`](crate::parse_case) works on a `&str`, which means the
//! whole file sits in memory, and the historical implementation staged
//! every instance through string-keyed side maps (instance → lib-cell
//! name, plus the builder's own `(name, lib name)` pairs) before the
//! database resolved them all over again. At contest scale (millions of
//! instances) those intermediates dominate peak memory.
//!
//! [`parse_case_reader`] parses the same grammar from any
//! [`BufRead`] source **line by line with one reusable buffer**,
//! resolving names to ids as they stream past and handing the finished,
//! id-indexed parts to [`Design::from_resolved`]. The only maps it
//! builds are the name indexes the [`Design`] itself owns plus
//! library-scale metadata (dozens of entries) — there is no whole-file
//! buffer and no instance-scale intermediate map.
//!
//! Robustness: malformed input of any shape — truncation, oversized
//! counts, duplicate instances, bytes that are not UTF-8 — returns a
//! typed [`IoError`]; the reader never panics and never preallocates
//! more than a clamped capacity from a file-supplied count.

use crate::error::IoError;
use flow3d_db::{
    CellId, Design, DieId, DieSpec, InstRef, LibCellId, LibCellSpec, MacroId, MacroInst, Net,
    PinRef, ResolvedCase, TechnologySpec,
};
use flow3d_geom::Point;
use std::collections::BTreeMap;
use std::io::BufRead;
use std::str::FromStr;

/// Upper bound on any `Vec::with_capacity` derived from a count read
/// out of the file, so an oversized or hostile count cannot force a
/// huge allocation up front; the vectors still grow to the real size.
const CAPACITY_CLAMP: usize = 1 << 20;

/// Line-oriented token source over any [`BufRead`], tracking 1-based
/// line numbers and skipping blank and `#`-comment lines. One `String`
/// buffer is reused for every line.
struct Lines<R> {
    src: R,
    buf: String,
    /// 1-based number of the line currently in `buf`.
    line_no: usize,
}

impl<R: BufRead> Lines<R> {
    fn new(src: R) -> Self {
        Self {
            src,
            buf: String::new(),
            line_no: 0,
        }
    }

    /// Advances to the next significant line. `Ok(false)` at end of
    /// input; a typed error for unreadable or non-UTF-8 bytes.
    fn advance(&mut self) -> Result<bool, IoError> {
        loop {
            self.buf.clear();
            let n = self.src.read_line(&mut self.buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::InvalidData {
                    IoError::parse(self.line_no + 1, "line is not valid UTF-8")
                } else {
                    IoError::Read(e)
                }
            })?;
            if n == 0 {
                return Ok(false);
            }
            self.line_no += 1;
            let t = self.buf.trim();
            if !t.is_empty() && !t.starts_with('#') {
                return Ok(true);
            }
        }
    }

    /// Advances, turning end-of-input into a parse error naming what was
    /// expected.
    fn expect_next(&mut self, expected: &str) -> Result<(), IoError> {
        if self.advance()? {
            Ok(())
        } else {
            Err(IoError::parse(
                self.line_no + 1,
                format!("expected {expected}, found end of file"),
            ))
        }
    }

    /// Whitespace tokens of the current line.
    fn tokens(&self) -> Vec<&str> {
        self.buf.split_whitespace().collect()
    }

    fn err(&self, message: impl Into<String>) -> IoError {
        IoError::parse(self.line_no, message)
    }

    /// Asserts the first token equals `keyword`.
    fn keyword(&self, tokens: &[&str], keyword: &str) -> Result<(), IoError> {
        if tokens.first() != Some(&keyword) {
            return Err(self.err(format!(
                "expected `{keyword}`, found `{}`",
                tokens.first().unwrap_or(&"")
            )));
        }
        Ok(())
    }

    /// Parses token `idx` as `T`.
    fn field<T: FromStr>(&self, tokens: &[&str], idx: usize, what: &str) -> Result<T, IoError> {
        let tok = tokens
            .get(idx)
            .ok_or_else(|| self.err(format!("missing {what} (field {idx})")))?;
        tok.parse()
            .map_err(|_| self.err(format!("cannot parse {what} from `{tok}`")))
    }

    /// Checks the line has exactly `n` tokens.
    fn expect_len(&self, tokens: &[&str], n: usize) -> Result<(), IoError> {
        if tokens.len() != n {
            return Err(self.err(format!("expected {n} fields, found {}", tokens.len())));
        }
        Ok(())
    }
}

/// Library-scale metadata captured from the canonical (first)
/// technology while it streams past, for resolving instances and net
/// pins later without re-reading anything.
struct LibMeta {
    name: String,
    is_macro: bool,
    /// Pin name → pin index.
    pins: BTreeMap<String, usize>,
}

/// Parses a case file from any buffered byte source into a validated
/// [`Design`], streaming: one reusable line buffer, names resolved to
/// ids on the fly, no whole-file buffer and no instance-scale
/// intermediate maps (see the module docs at the top of `stream.rs`).
///
/// Accepts exactly the grammar of [`parse_case`](crate::parse_case)
/// (which is implemented on top of this reader) and produces an
/// identical [`Design`] for identical input.
///
/// # Errors
///
/// [`IoError::Parse`] with a line number for syntax errors, malformed
/// counts, duplicate or unknown names, and non-UTF-8 bytes;
/// [`IoError::Read`] if the underlying reader fails; [`IoError::Db`] if
/// the file describes an inconsistent design.
pub fn parse_case_reader<R: BufRead>(src: R) -> Result<Design, IoError> {
    let mut r = Lines::new(src);

    // --- Optional design name, then technologies --------------------------
    r.expect_next("DesignName or NumTechnologies")?;
    let mut toks = r.tokens();
    let mut design_name = String::from("case");
    if toks.first() == Some(&"DesignName") {
        design_name = r.field(&toks, 1, "design name")?;
        r.expect_next("NumTechnologies")?;
        toks = r.tokens();
    }
    r.keyword(&toks, "NumTechnologies")?;
    let num_techs: usize = r.field(&toks, 1, "technology count")?;
    drop(toks);

    let mut tech_specs: Vec<TechnologySpec> = Vec::with_capacity(num_techs.min(64));
    // Canonical lib-cell metadata from the first technology; the
    // database validates that later technologies stay aligned.
    let mut libs: Vec<LibMeta> = Vec::new();
    let mut lib_ids: BTreeMap<String, LibCellId> = BTreeMap::new();

    for t in 0..num_techs {
        r.expect_next("Tech")?;
        let toks = r.tokens();
        r.keyword(&toks, "Tech")?;
        let tech_name: String = r.field(&toks, 1, "technology name")?;
        let num_cells: usize = r.field(&toks, 2, "lib cell count")?;
        let mut spec = TechnologySpec::new(&tech_name);
        for _ in 0..num_cells {
            r.expect_next("LibCell")?;
            let toks = r.tokens();
            r.keyword(&toks, "LibCell")?;
            r.expect_len(&toks, 6)?;
            let macro_flag = match toks[1] {
                "Y" => true,
                "N" => false,
                other => {
                    return Err(r.err(format!("macro flag must be Y or N, found `{other}`")));
                }
            };
            let name: String = r.field(&toks, 2, "lib cell name")?;
            let sx: i64 = r.field(&toks, 3, "sizeX")?;
            let sy: i64 = r.field(&toks, 4, "sizeY")?;
            let num_pins: usize = r.field(&toks, 5, "pin count")?;
            drop(toks);
            let mut cell = if macro_flag {
                LibCellSpec::macro_cell(&name, sx, sy)
            } else {
                LibCellSpec::std_cell(&name, sx, sy)
            };
            let mut pin_index: BTreeMap<String, usize> = BTreeMap::new();
            for p in 0..num_pins {
                r.expect_next("Pin")?;
                let toks = r.tokens();
                r.keyword(&toks, "Pin")?;
                r.expect_len(&toks, 4)?;
                let pname: String = r.field(&toks, 1, "pin name")?;
                let dx: i64 = r.field(&toks, 2, "pin offsetX")?;
                let dy: i64 = r.field(&toks, 3, "pin offsetY")?;
                cell = cell.pin(&pname, dx, dy);
                if t == 0 {
                    pin_index.insert(pname, p);
                }
            }
            if t == 0 {
                lib_ids.insert(name.clone(), LibCellId::new(libs.len()));
                libs.push(LibMeta {
                    name,
                    is_macro: macro_flag,
                    pins: pin_index,
                });
            }
            spec = spec.lib_cell(cell);
        }
        tech_specs.push(spec);
    }

    // --- Die description ---------------------------------------------------
    r.expect_next("DieSize")?;
    let toks = r.tokens();
    r.keyword(&toks, "DieSize")?;
    let die_rect: (i64, i64, i64, i64) = (
        r.field(&toks, 1, "die xlo")?,
        r.field(&toks, 2, "die ylo")?,
        r.field(&toks, 3, "die xhi")?,
        r.field(&toks, 4, "die yhi")?,
    );
    drop(toks);

    let mut top_util = 100.0f64;
    let mut bottom_util = 100.0f64;
    let mut top_rows: Option<(i64, i64, i64, i64, i64)> = None;
    let mut bottom_rows: Option<(i64, i64, i64, i64, i64)> = None;
    let mut top_tech: Option<String> = None;
    let mut bottom_tech: Option<String> = None;
    let mut top_site = 1i64;
    let mut bottom_site = 1i64;

    let num_instances = loop {
        r.expect_next("die description or NumInstances")?;
        let toks = r.tokens();
        match toks[0] {
            "TopDieMaxUtil" => top_util = r.field(&toks, 1, "top utilization")?,
            "BottomDieMaxUtil" => bottom_util = r.field(&toks, 1, "bottom utilization")?,
            "TopDieRows" | "BottomDieRows" => {
                let rows = (
                    r.field(&toks, 1, "row startX")?,
                    r.field(&toks, 2, "row startY")?,
                    r.field(&toks, 3, "row length")?,
                    r.field(&toks, 4, "row height")?,
                    r.field(&toks, 5, "row repeat")?,
                );
                if toks[0] == "TopDieRows" {
                    top_rows = Some(rows);
                } else {
                    bottom_rows = Some(rows);
                }
            }
            "TopDieTech" => top_tech = Some(r.field(&toks, 1, "top technology")?),
            "BottomDieTech" => bottom_tech = Some(r.field(&toks, 1, "bottom technology")?),
            "TopDieSiteWidth" => top_site = r.field(&toks, 1, "top site width")?,
            "BottomDieSiteWidth" => bottom_site = r.field(&toks, 1, "bottom site width")?,
            "TerminalSize" | "TerminalSpacing" | "TerminalCost" => {
                // Hybrid-bonding terminal parameters: accepted, not used by
                // the legalizer (terminal assignment is a separate problem).
            }
            "NumInstances" => break r.field::<usize>(&toks, 1, "instance count")?,
            other => {
                return Err(r.err(format!("unexpected keyword `{other}` in die description")));
            }
        }
    };

    let line_no = r.line_no;
    let missing =
        |what: &str| IoError::parse(line_no, format!("missing {what} before NumInstances"));
    let top_rows = top_rows.ok_or_else(|| missing("TopDieRows"))?;
    let bottom_rows = bottom_rows.ok_or_else(|| missing("BottomDieRows"))?;
    let top_tech = top_tech.ok_or_else(|| missing("TopDieTech"))?;
    let bottom_tech = bottom_tech.ok_or_else(|| missing("BottomDieTech"))?;

    // The contest format defines each die's outline as the DieSize rect;
    // the rows line contributes the row height (rows fill the outline,
    // flooring). Deriving the outline from `startY + height * repeat`
    // instead would clip it whenever the outline height is not an exact
    // multiple of the row height — which heterogeneous row-height pairs
    // (92 vs 115) hit on one of the two dies.
    let die_spec =
        |name: &str, tech: &str, rows: (i64, i64, i64, i64, i64), site: i64, util: f64| {
            let (_sx, _sy, _len, h, _rep) = rows;
            DieSpec::new(name, tech, die_rect, h, site, util / 100.0)
        };
    // Die 0 = bottom, die 1 = top.
    let dies = vec![
        die_spec(
            "bottom",
            &bottom_tech,
            bottom_rows,
            bottom_site,
            bottom_util,
        ),
        die_spec("top", &top_tech, top_rows, top_site, top_util),
    ];

    // --- Instances ----------------------------------------------------------
    // Resolved on the fly: standard cells take ids in file order and go
    // straight into the design's own name index; macros are staged by id
    // until their positions arrive.
    let mut cell_libs: Vec<LibCellId> = Vec::with_capacity(num_instances.min(CAPACITY_CLAMP));
    let mut cell_names: BTreeMap<String, CellId> = BTreeMap::new();
    let mut macro_libs: Vec<(String, LibCellId)> = Vec::new();
    let mut macro_names: BTreeMap<String, MacroId> = BTreeMap::new();
    for _ in 0..num_instances {
        r.expect_next("Inst")?;
        let toks = r.tokens();
        r.keyword(&toks, "Inst")?;
        r.expect_len(&toks, 3)?;
        let name: String = r.field(&toks, 1, "instance name")?;
        let lib_name = toks[2];
        let &lib = lib_ids
            .get(lib_name)
            .ok_or_else(|| r.err(format!("unknown lib cell `{lib_name}`")))?;
        if cell_names.contains_key(&name) || macro_names.contains_key(&name) {
            return Err(r.err(format!("duplicate instance `{name}`")));
        }
        if libs[lib.index()].is_macro {
            macro_names.insert(name.clone(), MacroId::new(macro_libs.len()));
            macro_libs.push((name, lib));
        } else {
            cell_names.insert(name, CellId::new(cell_libs.len()));
            cell_libs.push(lib);
        }
    }

    // --- Nets ----------------------------------------------------------------
    r.expect_next("NumNets")?;
    let toks = r.tokens();
    r.keyword(&toks, "NumNets")?;
    let num_nets: usize = r.field(&toks, 1, "net count")?;
    drop(toks);
    let mut nets: Vec<Net> = Vec::with_capacity(num_nets.min(CAPACITY_CLAMP));
    for _ in 0..num_nets {
        r.expect_next("Net")?;
        let toks = r.tokens();
        r.keyword(&toks, "Net")?;
        let net_name: String = r.field(&toks, 1, "net name")?;
        let num_pins: usize = r.field(&toks, 2, "net pin count")?;
        drop(toks);
        let mut pins: Vec<PinRef> = Vec::with_capacity(num_pins.min(CAPACITY_CLAMP));
        for _ in 0..num_pins {
            r.expect_next("Pin")?;
            let toks = r.tokens();
            r.keyword(&toks, "Pin")?;
            r.expect_len(&toks, 2)?;
            let spec = toks[1];
            let (inst, pin_name) = spec
                .split_once('/')
                .ok_or_else(|| r.err(format!("pin `{spec}` missing `/` separator")))?;
            let (inst, lib) = if let Some(&c) = cell_names.get(inst) {
                (InstRef::Cell(c), cell_libs[c.index()])
            } else if let Some(&m) = macro_names.get(inst) {
                (InstRef::Macro(m), macro_libs[m.index()].1)
            } else {
                return Err(r.err(format!("pin references unknown instance `{inst}`")));
            };
            let meta = &libs[lib.index()];
            let pin = *meta.pins.get(pin_name).ok_or_else(|| {
                r.err(format!("lib cell `{}` has no pin `{pin_name}`", meta.name))
            })?;
            pins.push(PinRef { inst, pin });
        }
        nets.push(Net {
            name: net_name,
            pins,
        });
    }

    // --- Fixed macro positions (extension section) ----------------------------
    let mut macro_pos: Vec<Option<(Point, DieId)>> = vec![None; macro_libs.len()];
    if r.advance()? {
        let toks = r.tokens();
        r.keyword(&toks, "NumMacroPositions")?;
        let n: usize = r.field(&toks, 1, "macro position count")?;
        drop(toks);
        for _ in 0..n {
            r.expect_next("MacroPos")?;
            let toks = r.tokens();
            r.keyword(&toks, "MacroPos")?;
            r.expect_len(&toks, 5)?;
            let name = toks[1];
            let x: i64 = r.field(&toks, 2, "macro x")?;
            let y: i64 = r.field(&toks, 3, "macro y")?;
            let die = match toks[4] {
                "top" => DieId::TOP,
                "bottom" => DieId::BOTTOM,
                other => {
                    return Err(r.err(format!(
                        "macro die must be `top` or `bottom`, found `{other}`"
                    )));
                }
            };
            let Some(&m) = macro_names.get(name) else {
                return Err(r.err(format!("MacroPos for unknown macro `{name}`")));
            };
            // A repeated MacroPos keeps the last entry, like the
            // historical parser's staging map.
            macro_pos[m.index()] = Some((Point::new(x, y), die));
        }
    }
    let mut macros: Vec<MacroInst> = Vec::with_capacity(macro_libs.len());
    for ((name, lib_cell), pos) in macro_libs.into_iter().zip(macro_pos) {
        let Some((pos, die)) = pos else {
            return Err(IoError::parse(
                r.line_no,
                format!("macro instance `{name}` has no MacroPos entry"),
            ));
        };
        macros.push(MacroInst {
            name,
            lib_cell,
            die,
            pos,
        });
    }

    Ok(Design::from_resolved(ResolvedCase {
        name: design_name,
        techs: tech_specs,
        dies,
        cell_libs,
        cell_names,
        macros,
        nets,
    })?)
}
