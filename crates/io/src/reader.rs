//! Line-oriented token reader shared by all parsers.

use crate::error::IoError;
use std::str::FromStr;

/// Iterates non-empty, non-comment lines of a file, tracking line numbers
/// and splitting each line into whitespace-separated tokens.
pub(crate) struct LineReader<'a> {
    lines: std::str::Lines<'a>,
    /// 1-based number of the line most recently returned.
    pub line_no: usize,
}

impl<'a> LineReader<'a> {
    pub fn new(text: &'a str) -> Self {
        Self {
            lines: text.lines(),
            line_no: 0,
        }
    }

    /// Next significant line as tokens, or `None` at end of input.
    /// Lines starting with `#` are comments.
    pub fn next_line(&mut self) -> Option<Vec<&'a str>> {
        loop {
            let line = self.lines.next()?;
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return Some(trimmed.split_whitespace().collect());
        }
    }

    /// Next line, or a parse error mentioning `expected`.
    pub fn expect_line(&mut self, expected: &str) -> Result<Vec<&'a str>, IoError> {
        self.next_line().ok_or_else(|| {
            IoError::parse(
                self.line_no + 1,
                format!("expected {expected}, found end of file"),
            )
        })
    }

    /// Asserts the first token of `tokens` equals `keyword`.
    pub fn expect_keyword(&self, tokens: &[&str], keyword: &str) -> Result<(), IoError> {
        if tokens.first() != Some(&keyword) {
            return Err(IoError::parse(
                self.line_no,
                format!(
                    "expected `{keyword}`, found `{}`",
                    tokens.first().unwrap_or(&"")
                ),
            ));
        }
        Ok(())
    }

    /// Parses token `idx` of `tokens` as `T`.
    pub fn field<T: FromStr>(&self, tokens: &[&str], idx: usize, what: &str) -> Result<T, IoError> {
        let tok = tokens
            .get(idx)
            .ok_or_else(|| IoError::parse(self.line_no, format!("missing {what} (field {idx})")))?;
        tok.parse()
            .map_err(|_| IoError::parse(self.line_no, format!("cannot parse {what} from `{tok}`")))
    }

    /// Checks the line has exactly `n` tokens.
    pub fn expect_len(&self, tokens: &[&str], n: usize) -> Result<(), IoError> {
        if tokens.len() != n {
            return Err(IoError::parse(
                self.line_no,
                format!("expected {n} fields, found {}", tokens.len()),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_blank_and_comment_lines() {
        let mut r = LineReader::new("\n# comment\n  a b \n\nc\n");
        assert_eq!(r.next_line(), Some(vec!["a", "b"]));
        assert_eq!(r.line_no, 3);
        assert_eq!(r.next_line(), Some(vec!["c"]));
        assert_eq!(r.next_line(), None);
    }

    #[test]
    fn field_errors_carry_line_numbers() {
        let mut r = LineReader::new("Inst u0\n");
        let toks = r.next_line().unwrap();
        let err = r.field::<i64>(&toks, 1, "x").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = r.field::<i64>(&toks, 5, "x").unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn expect_keyword_mismatch() {
        let mut r = LineReader::new("Foo 1\n");
        let toks = r.next_line().unwrap();
        assert!(r.expect_keyword(&toks, "Bar").is_err());
        assert!(r.expect_keyword(&toks, "Foo").is_ok());
    }
}
