//! Workspace-level golden tests for the W-family lints: each fixture
//! tree under `tests/fixtures/ws/` is copied to a temp dir (a tidy run
//! writes its symbol cache under `<root>/target/`, which must never
//! land inside the repo), linted with the real `run` driver, and its
//! rendered diagnostics are compared against the `.expected` file next
//! to the tree.
//!
//! Re-bless after an intentional diagnostic change with:
//!
//! ```text
//! FLOW3D_TIDY_BLESS=1 cargo test -p flow3d-lint --test workspace_golden
//! ```

use flow3d_lint::{render_human, Lint};
use std::path::{Path, PathBuf};

fn ws_fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("ws")
}

/// Recursively copies `src` into `dst` (created fresh).
fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("mkdir");
    for entry in std::fs::read_dir(src).expect("read_dir") {
        let entry = entry.expect("entry");
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file_type").is_dir() {
            copy_tree(&from, &to);
        } else {
            std::fs::copy(&from, &to).expect("copy");
        }
    }
}

/// Copies the named fixture workspace into a unique temp root.
fn temp_copy(name: &str, tag: &str) -> PathBuf {
    let tmp = std::env::temp_dir().join(format!(
        "flow3d-tidy-ws-{tag}-{}-{name}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&tmp).ok();
    copy_tree(&ws_fixtures_dir().join(name), &tmp);
    tmp
}

/// Lints the fixture workspace `name` and compares the rendered
/// diagnostics against `ws/<name>.expected`.
fn check_ws_golden(name: &str, expected_lints: &[Lint]) {
    let root = temp_copy(name, "golden");
    let report = flow3d_lint::run(&root, false).expect("tidy run");
    for lint in expected_lints {
        assert!(
            report.violations.iter().any(|fv| fv.v.lint == *lint),
            "{name}: expected a {} finding",
            lint.name()
        );
    }
    let text = report
        .violations
        .iter()
        .map(render_human)
        .collect::<Vec<_>>()
        .join("\n");
    let golden_path = ws_fixtures_dir().join(format!("{name}.expected"));
    if std::env::var_os("FLOW3D_TIDY_BLESS").is_some() {
        std::fs::write(&golden_path, &text).expect("write golden");
    } else {
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|_| panic!("{name}.expected missing — bless with FLOW3D_TIDY_BLESS=1"));
        assert_eq!(
            text, golden,
            "{name}: diagnostics drifted — if intentional, re-bless with FLOW3D_TIDY_BLESS=1"
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn tidyws_fixture_is_clean() {
    let root = temp_copy("tidyws", "clean");
    let report = flow3d_lint::run(&root, false).expect("tidy run");
    let rendered: String = report.violations.iter().map(render_human).collect();
    assert!(
        report.clean(),
        "the tidyws fixture must stay clean under every lint:\n{rendered}"
    );
    assert!(report.files_checked >= 7, "fixture discovery shrank");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn w1_drift_fixture_matches_golden() {
    check_ws_golden("w1_drift", &[Lint::ContractDrift]);
}

#[test]
fn w2_deadpub_fixture_matches_golden() {
    check_ws_golden("w2_deadpub", &[Lint::DeadPub]);
}

/// A second run over an unchanged tree must serve every file from the
/// symbol cache — the incremental contract of the symbol-graph layer.
#[test]
fn second_run_is_fully_cached() {
    let root = temp_copy("tidyws", "cache");
    let cold = flow3d_lint::run(&root, false).expect("first run");
    assert_eq!(cold.cache_hits, 0, "no cache exists before the first run");
    assert!(cold.cache_total > 0);
    let warm = flow3d_lint::run(&root, false).expect("second run");
    assert_eq!(
        warm.cache_hits, warm.cache_total,
        "every file must be a cache hit on an unchanged tree"
    );
    assert_eq!(warm.cache_total, cold.cache_total);
    assert!(warm.clean());

    // Touching one file invalidates exactly that file.
    let cfg = root.join("crates").join("core").join("src").join("config.rs");
    let src = std::fs::read_to_string(&cfg).expect("read config");
    std::fs::write(&cfg, format!("{src}\n// touched\n")).expect("write config");
    let third = flow3d_lint::run(&root, false).expect("third run");
    assert_eq!(third.cache_hits, third.cache_total - 1);
    std::fs::remove_dir_all(&root).ok();
}
