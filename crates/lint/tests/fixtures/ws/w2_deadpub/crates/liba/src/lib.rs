#![forbid(unsafe_code)]
//! Library A: one live, one dead, one waived pub item.

/// Consumed by libb.
pub fn used() -> u32 {
    1
}

/// Nobody references this — the lint must flag it.
pub fn orphan() -> u32 {
    2
}

/// Crate-visible items are not candidates.
pub(crate) fn internal() -> u32 {
    used()
}

// flow3d-tidy: allow(dead-pub) — staged API surface: the client crate lands in the next change
pub fn waived() -> u32 {
    internal()
}
