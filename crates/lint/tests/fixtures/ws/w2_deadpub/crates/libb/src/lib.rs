#![forbid(unsafe_code)]
//! Library B: keeps `liba::used` alive.

fn consume() -> u32 {
    liba::used()
}
