//! Prometheus rendering.

fn render(queue_depth: usize, total: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!("flow3d_serve_queue_depth {queue_depth}\n"));
    out.push_str(&format!("flow3d_serve_requests_total {total}\n"));
    out
}
