//! Wire protocol.

/// A parsed request.
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Parse and cache a design.
    Load,
}

impl Request {
    /// Parses a wire command name.
    pub fn parse(cmd: &str) -> Option<Request> {
        match cmd {
            "ping" => Some(Request::Ping),
            "load" => Some(Request::Load),
            _ => None,
        }
    }

    /// The wire name, for telemetry.
    pub fn cmd(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Load => "load",
        }
    }
}
