#![forbid(unsafe_code)]
//! Miniature serve layer.
pub mod protocol;
pub use protocol::Request;
