//! Legalizer configuration.

/// Tunable parameters.
pub struct Flow3dConfig {
    /// Branch-and-bound slack.
    pub alpha: f64,
    /// Worker threads; 0 = auto.
    pub threads: usize,
    /// Drifted: bound to no flag, documented nowhere.
    pub beta: f64,
}
