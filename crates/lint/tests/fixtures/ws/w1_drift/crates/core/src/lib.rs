#![forbid(unsafe_code)]
//! Miniature legalizer core.
pub mod config;
