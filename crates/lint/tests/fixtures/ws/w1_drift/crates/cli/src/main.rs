//! Miniature driver binary.
use flow3d_core::Flow3dConfig;
use flow3d_serve::Request;

fn main() {
    let args = parse_args();
    let cfg = Flow3dConfig {
        alpha: args.get_f64("alpha", 0.1),
        threads: args.get_usize("threads", 0),
    };
    let probe = Request::parse("ping");
    drive(cfg, probe);
}
