#![forbid(unsafe_code)]
//! Miniature telemetry layer.
mod metrics;
