// Fixture: W3/nondet-capture — shared mutable state smuggled into
// flow3d_par fan-out closures. Worker-local `let mut`, the pool
// argument outside the closures, and the suppressed commutative
// counter at the bottom must NOT be reported.
pub fn mut_capture(n: usize) -> u64 {
    let mut total = 0u64;
    par_map(4, n, |i| accumulate(&mut total, i));
    total
}

pub fn named_closure(n: usize) {
    let mut hits = 0usize;
    let work = |i: usize| record(&mut hits, i);
    par_map(4, n, work);
}

pub fn interior(cell: &RefCell<Vec<usize>>, n: usize) {
    par_map(4, n, |i| cell.borrow_mut().push(i));
}

pub fn relaxed(counter: &AtomicU64, n: usize) {
    par_map(4, n, |i| counter.fetch_add(i as u64, Ordering::Relaxed));
}

pub fn worker_local_is_fine(n: usize) -> Vec<u64> {
    par_map(4, n, |i| {
        let mut acc = 0u64;
        acc += i as u64;
        acc
    })
}

pub fn pool_argument_is_fine(pool: &mut ScratchPool, n: usize) {
    par_map_with_pool(4, n, &mut *pool, Scratch::new, |s, i| s.run(i));
}

pub fn audited(stats: &AtomicU64, n: usize) {
    // flow3d-tidy: allow(nondet-capture) — commutative counter: the final sum is order-independent
    par_map(4, n, |i| stats.fetch_add(i as u64, Ordering::Relaxed));
}
