// Fixture: S1/bad-suppression — a reason-less allow and an allow naming
// an unknown lint. Neither suppresses, so the D3 findings survive too.
pub fn f(x: Option<u32>) -> u32 {
    // flow3d-tidy: allow(panic-unwrap)
    x.unwrap()
}

pub fn g(x: Option<u32>) -> u32 {
    // flow3d-tidy: allow(no-such-lint) — the name is wrong
    x.unwrap()
}
