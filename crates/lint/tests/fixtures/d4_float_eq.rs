// Fixture: D4/float-eq — exact float comparison in geometry/cost code.
pub fn on_origin(x: f64) -> bool {
    x == 0.0
}
