// Fixture: D1/unordered-map — hash collections in deterministic code.
use std::collections::HashMap;

pub fn count(xs: &[u32]) -> HashMap<u32, usize> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
