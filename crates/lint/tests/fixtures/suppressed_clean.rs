// Fixture: a reasoned suppression silences the lint — no diagnostics.
pub fn f(x: Option<u32>) -> u32 {
    // flow3d-tidy: allow(panic-unwrap) — fixture: invariant documented at the call site
    x.unwrap()
}
