// Fixture: S2/unused-suppression — a well-formed allow that matches no
// violation on its line or the next.
pub fn id(x: u32) -> u32 {
    // flow3d-tidy: allow(float-eq) — stale: the comparison was removed
    x
}
