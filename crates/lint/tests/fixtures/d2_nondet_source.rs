// Fixture: D2/nondet-source — wall-clock reads in algorithm code.
pub fn elapsed_like() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}
