//! Fixture: D5/missing-forbid-unsafe — a crate root without the
//! `#![forbid(unsafe_code)]` attribute (checked with `crate_root` set).

pub fn id(x: u32) -> u32 {
    x
}
