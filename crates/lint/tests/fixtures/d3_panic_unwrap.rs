// Fixture: D3/panic-unwrap — panics in library non-test code. The
// #[cfg(test)] module at the bottom must NOT be reported.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn must(flag: bool) {
    if !flag {
        panic!("bad flag");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1u32).unwrap(), 1);
    }
}
