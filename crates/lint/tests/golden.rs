//! Golden tests for flow3d-tidy: each fixture under `tests/fixtures/`
//! is checked with a known policy and its rendered diagnostics are
//! compared byte-for-byte against the `.expected` file next to it.
//!
//! Re-bless after an intentional diagnostic change with:
//!
//! ```text
//! FLOW3D_TIDY_BLESS=1 cargo test -p flow3d-lint --test golden
//! ```

use flow3d_lint::{check_file, render_human, render_json, FilePolicy, FileViolation, Lint};
use std::path::{Path, PathBuf};

/// (fixture stem, crate_root flag, lints that must appear at least once).
const FIXTURES: &[(&str, bool, &[Lint])] = &[
    ("d1_unordered_map", false, &[Lint::UnorderedMap]),
    ("d2_nondet_source", false, &[Lint::NondetSource]),
    ("d3_panic_unwrap", false, &[Lint::PanicUnwrap]),
    ("d4_float_eq", false, &[Lint::FloatEq]),
    ("d5_missing_forbid", true, &[Lint::MissingForbidUnsafe]),
    (
        "s1_bad_suppression",
        false,
        &[Lint::BadSuppression, Lint::PanicUnwrap],
    ),
    ("s2_unused_suppression", false, &[Lint::UnusedSuppression]),
    ("w3_nondet_capture", false, &[Lint::NondetCapture]),
    ("suppressed_clean", false, &[]),
];

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

fn check_fixture(stem: &str, crate_root: bool) -> Vec<FileViolation> {
    let path = fixtures_dir().join(format!("{stem}.rs"));
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let mut policy = FilePolicy::strict();
    policy.crate_root = crate_root;
    let lines: Vec<&str> = src.lines().collect();
    check_file(&src, &policy)
        .into_iter()
        .map(|v| FileViolation {
            path: format!("tests/fixtures/{stem}.rs"),
            snippet: lines
                .get(v.line.saturating_sub(1) as usize)
                .map(|s| (*s).to_string())
                .unwrap_or_default(),
            v,
        })
        .collect()
}

fn rendered(violations: &[FileViolation]) -> String {
    violations
        .iter()
        .map(render_human)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn fixtures_match_golden_diagnostics() {
    let bless = std::env::var_os("FLOW3D_TIDY_BLESS").is_some();
    let mut mismatches = Vec::new();
    for &(stem, crate_root, expected_lints) in FIXTURES {
        let violations = check_fixture(stem, crate_root);
        for lint in expected_lints {
            assert!(
                violations.iter().any(|fv| fv.v.lint == *lint),
                "{stem}: expected a {} finding",
                lint.name()
            );
        }
        if expected_lints.is_empty() {
            assert!(
                violations.is_empty(),
                "{stem}: expected a clean fixture, got {} finding(s)",
                violations.len()
            );
        }
        let text = rendered(&violations);
        let golden_path = fixtures_dir().join(format!("{stem}.expected"));
        if bless {
            std::fs::write(&golden_path, &text).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|_| panic!("{stem}.expected missing — bless with FLOW3D_TIDY_BLESS=1"));
        if text != golden {
            mismatches.push(stem);
        }
    }
    assert!(
        mismatches.is_empty(),
        "diagnostics drifted for {mismatches:?} — if intentional, re-bless with FLOW3D_TIDY_BLESS=1"
    );
}

#[test]
fn bad_fixtures_are_rejected_and_clean_fixture_passes() {
    for &(stem, crate_root, expected_lints) in FIXTURES {
        let violations = check_fixture(stem, crate_root);
        assert_eq!(
            violations.is_empty(),
            expected_lints.is_empty(),
            "{stem}: violation presence does not match expectation"
        );
    }
}

#[test]
fn json_report_round_trips_through_the_obs_parser() {
    let violations = check_fixture("s1_bad_suppression", false);
    assert!(!violations.is_empty());
    let text = render_json(&violations, 8, &["crates/x/src/lib.rs".to_string()], (5, 8));
    let doc = flow3d_obs::Json::parse(&text).expect("tidy --json output parses");

    assert_eq!(
        doc.get("tool").and_then(|j| j.as_str()),
        Some("flow3d-tidy")
    );
    assert_eq!(doc.get("version").and_then(|j| j.as_u64()), Some(2));
    assert_eq!(doc.get("files_checked").and_then(|j| j.as_u64()), Some(8));
    assert_eq!(doc.get("cache_hits").and_then(|j| j.as_u64()), Some(5));
    assert_eq!(doc.get("cache_total").and_then(|j| j.as_u64()), Some(8));
    assert!(matches!(
        doc.get("clean"),
        Some(flow3d_obs::Json::Bool(false))
    ));
    let fixed = doc.get("fixed").and_then(|j| j.as_array()).expect("fixed");
    assert_eq!(fixed.len(), 1);
    let arr = doc
        .get("violations")
        .and_then(|j| j.as_array())
        .expect("violations array");
    assert_eq!(arr.len(), violations.len());
    for (json_v, fv) in arr.iter().zip(&violations) {
        assert_eq!(
            json_v.get("lint").and_then(|j| j.as_str()),
            Some(fv.v.lint.id())
        );
        assert_eq!(
            json_v.get("name").and_then(|j| j.as_str()),
            Some(fv.v.lint.name())
        );
        assert_eq!(
            json_v.get("line").and_then(|j| j.as_u64()),
            Some(u64::from(fv.v.line))
        );
        assert_eq!(
            json_v.get("path").and_then(|j| j.as_str()),
            Some(fv.path.as_str())
        );
    }
}

#[test]
fn workspace_is_tidy() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = flow3d_lint::find_workspace_root(here).expect("workspace root");
    let report = flow3d_lint::run(&root, false).expect("tidy run");
    let rendered: String = report.violations.iter().map(render_human).collect();
    assert!(
        report.clean(),
        "the workspace must stay tidy; run `cargo run -p flow3d-lint` for details\n{rendered}"
    );
    assert!(report.files_checked > 50, "discovery found too few files");
}

/// Drives the real `flow3d-lint` binary against a synthetic bad
/// workspace: exit code 1, the expected diagnostic on stderr, and a
/// parseable `--json` report on stdout.
#[test]
fn binary_exits_nonzero_on_a_bad_tree() {
    let tmp = std::env::temp_dir().join(format!("flow3d-tidy-it-{}", std::process::id()));
    let src_dir = tmp.join("crates").join("badcrate").join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        tmp.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("write manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("write bad crate");

    let bin = env!("CARGO_BIN_EXE_flow3d-lint");
    let human = std::process::Command::new(bin)
        .args(["--root", tmp.to_str().expect("utf-8 tmp path")])
        .output()
        .expect("run flow3d-lint");
    assert_eq!(human.status.code(), Some(1), "violations must exit 1");
    let stderr = String::from_utf8_lossy(&human.stderr);
    assert!(
        stderr.contains("error[D3/panic-unwrap]"),
        "expected D3 diagnostic, got:\n{stderr}"
    );

    let json = std::process::Command::new(bin)
        .args(["--root", tmp.to_str().expect("utf-8 tmp path"), "--json"])
        .output()
        .expect("run flow3d-lint --json");
    assert_eq!(json.status.code(), Some(1));
    let doc = flow3d_obs::Json::parse(&String::from_utf8_lossy(&json.stdout))
        .expect("--json output parses");
    assert!(matches!(
        doc.get("clean"),
        Some(flow3d_obs::Json::Bool(false))
    ));

    std::fs::remove_dir_all(&tmp).ok();
}
