//! `tidy --fix` must be idempotent: applying it twice leaves the tree
//! byte-identical to applying it once. Checked over a synthetic corpus
//! built from the per-file fixtures (which includes a D5 tree the first
//! pass genuinely rewrites) and over a copy of the real workspace.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Every file under `root` (except `target/`, where the run writes its
/// symbol cache) as relative path → bytes.
fn snapshot(root: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read_dir") {
            let entry = entry.expect("entry");
            let path = entry.path();
            if entry.file_type().expect("file_type").is_dir() {
                if entry.file_name() != "target" {
                    stack.push(path);
                }
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, std::fs::read(&path).expect("read"));
            }
        }
    }
    out
}

fn assert_fix_idempotent(root: &Path, expect_first_pass_fixes: bool) {
    let first = flow3d_lint::run(root, true).expect("first --fix run");
    if expect_first_pass_fixes {
        assert!(
            !first.fixed.is_empty(),
            "corpus must exercise the rewrite path"
        );
    }
    let after_first = snapshot(root);
    let second = flow3d_lint::run(root, true).expect("second --fix run");
    assert!(
        second.fixed.is_empty(),
        "second --fix pass rewrote {:?} again",
        second.fixed
    );
    let after_second = snapshot(root);
    assert_eq!(
        after_first.keys().collect::<Vec<_>>(),
        after_second.keys().collect::<Vec<_>>(),
        "file set changed between passes"
    );
    for (rel, bytes) in &after_first {
        assert_eq!(
            bytes, &after_second[rel],
            "{rel}: bytes differ between the first and second --fix pass"
        );
    }
}

fn temp_root(tag: &str) -> PathBuf {
    let tmp = std::env::temp_dir().join(format!("flow3d-tidy-fix-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    tmp
}

/// Builds a workspace whose single crate embeds the per-file fixture
/// corpus: the D5 fixture as the crate root (missing its forbid line —
/// the first `--fix` pass inserts it) and every other fixture as an
/// additional source file.
#[test]
fn fix_is_idempotent_over_the_fixture_corpus() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures");
    let root = temp_root("corpus");
    let src = root.join("crates").join("fixcrate").join("src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("manifest");
    for entry in std::fs::read_dir(&fixtures).expect("fixtures dir") {
        let entry = entry.expect("entry");
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let stem = path.file_stem().expect("stem").to_string_lossy();
        let dst = if stem == "d5_missing_forbid" {
            src.join("lib.rs")
        } else {
            src.join(format!("{stem}.rs"))
        };
        std::fs::copy(&path, &dst).expect("copy fixture");
    }
    assert_fix_idempotent(&root, true);
    std::fs::remove_dir_all(&root).ok();
}

/// Copies the real workspace's lintable surface (facade + crate `src/`
/// trees, contract docs, manifest) and runs `--fix` twice over it.
#[test]
fn fix_is_idempotent_over_the_real_workspace() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let real = flow3d_lint::find_workspace_root(here).expect("workspace root");
    let root = temp_root("realws");
    std::fs::create_dir_all(&root).expect("mkdir");
    for doc in ["Cargo.toml", "README.md", "EXPERIMENTS.md", "SERVING.md"] {
        std::fs::copy(real.join(doc), root.join(doc)).expect("copy doc");
    }
    copy_rs_tree(&real.join("src"), &root.join("src"));
    let crates = std::fs::read_dir(real.join("crates")).expect("crates dir");
    for entry in crates {
        let entry = entry.expect("entry");
        if !entry.file_type().expect("file_type").is_dir() {
            continue;
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            copy_rs_tree(&src, &root.join("crates").join(entry.file_name()).join("src"));
        }
    }
    assert_fix_idempotent(&root, false);
    std::fs::remove_dir_all(&root).ok();
}

/// Copies the `.rs` files of one `src/` tree, preserving layout.
fn copy_rs_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("mkdir");
    for entry in std::fs::read_dir(src).expect("read_dir") {
        let entry = entry.expect("entry");
        let from = entry.path();
        if entry.file_type().expect("file_type").is_dir() {
            copy_rs_tree(&from, &dst.join(entry.file_name()));
        } else if from.extension().is_some_and(|e| e == "rs") {
            std::fs::copy(&from, dst.join(entry.file_name())).expect("copy");
        }
    }
}
