#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # flow3d-tidy — project lints for determinism and panic safety
//!
//! A std-only static-analysis pass over the 3D-Flow workspace, in the
//! spirit of rust-lang/rust's `tidy`: a small hand-rolled lexer (no
//! `syn`, builds offline) feeds pattern checks that encode the
//! invariants the engine's tests can only probe probabilistically:
//!
//! | id | name | guards against |
//! |----|------|----------------|
//! | D1 | `unordered-map`         | `HashMap`/`HashSet` iteration-order nondeterminism |
//! | D2 | `nondet-source`         | wall-clock / unseeded RNG in algorithm crates |
//! | D3 | `panic-unwrap`          | `unwrap`/`expect`/`panic!` in library non-test code |
//! | D4 | `float-eq`              | exact float `==`/`!=` in geometry/cost code |
//! | D5 | `missing-forbid-unsafe` | crate roots without `#![forbid(unsafe_code)]` |
//! | W1 | `contract-drift`        | config/CLI/doc, wire-command, and metric-name drift |
//! | W2 | `dead-pub`              | `pub` items no other crate references |
//! | W3 | `nondet-capture`        | shared mutable captures in `flow3d_par` closures |
//!
//! The D-family is per-file token analysis. The W-family runs on a
//! **symbol graph** ([`symbols`](crate) internals): every file is
//! distilled into defs/refs/string-literal facts (cached on disk by
//! content hash, so repeat runs are incremental), and cross-file passes
//! compare code against code *and* code against the operational docs
//! (README.md, EXPERIMENTS.md, SERVING.md).
//!
//! Why a *static* gate: PR 2/3 made the legalizer bit-identical across
//! thread counts, but that contract was enforced only by runtime
//! differential tests. One `HashMap` iteration on a result path can
//! reintroduce nondeterminism that a test matrix catches only when the
//! hash seed cooperates. `flow3d-tidy` rejects the pattern at CI time.
//! The same argument scales up: a wire command the docs don't know, a
//! metric the alert rows misname, or a `&mut` capture in a `par_map`
//! closure are all drift the runtime suites catch late or never.
//!
//! Every lint supports inline suppression that **requires a reason**:
//!
//! ```text
//! // flow3d-tidy: allow(panic-unwrap) — invariant: list checked non-empty above
//! ```
//!
//! Reason-less allows, unknown lint names, and allows that match
//! nothing are violations themselves, so the suppression inventory
//! cannot rot.
//!
//! Entry points: `cargo run -p flow3d-lint` (standalone, `--json`,
//! `--fix`, `--list`) and `flow3d tidy` (CLI subcommand).
//!
//! ```
//! use flow3d_lint::{check_file, FilePolicy, Lint};
//!
//! let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
//! let violations = check_file(bad, &FilePolicy::strict());
//! assert_eq!(violations.len(), 1);
//! assert_eq!(violations[0].lint, Lint::PanicUnwrap);
//! ```

mod capture;
mod contracts;
mod deadpub;
pub mod diag;
mod lexer;
pub mod lints;
mod symbols;
pub mod workspace;

pub use diag::{render_human, render_json, FileViolation};
pub use lints::{check_file, FilePolicy, Lint, Violation, ALL_LINTS};
pub use workspace::{find_workspace_root, run, TidyReport};
