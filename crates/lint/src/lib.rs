#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # flow3d-tidy — project lints for determinism and panic safety
//!
//! A std-only static-analysis pass over the 3D-Flow workspace, in the
//! spirit of rust-lang/rust's `tidy`: a small hand-rolled lexer (no
//! `syn`, builds offline) feeds pattern checks that encode the
//! invariants the engine's tests can only probe probabilistically:
//!
//! | id | name | guards against |
//! |----|------|----------------|
//! | D1 | `unordered-map`         | `HashMap`/`HashSet` iteration-order nondeterminism |
//! | D2 | `nondet-source`         | wall-clock / unseeded RNG in algorithm crates |
//! | D3 | `panic-unwrap`          | `unwrap`/`expect`/`panic!` in library non-test code |
//! | D4 | `float-eq`              | exact float `==`/`!=` in geometry/cost code |
//! | D5 | `missing-forbid-unsafe` | crate roots without `#![forbid(unsafe_code)]` |
//!
//! Why a *static* gate: PR 2/3 made the legalizer bit-identical across
//! thread counts, but that contract was enforced only by runtime
//! differential tests. One `HashMap` iteration on a result path can
//! reintroduce nondeterminism that a test matrix catches only when the
//! hash seed cooperates. `flow3d-tidy` rejects the pattern at CI time.
//!
//! Every lint supports inline suppression that **requires a reason**:
//!
//! ```text
//! // flow3d-tidy: allow(panic-unwrap) — invariant: list checked non-empty above
//! ```
//!
//! Reason-less allows, unknown lint names, and allows that match
//! nothing are violations themselves, so the suppression inventory
//! cannot rot.
//!
//! Entry points: `cargo run -p flow3d-lint` (standalone, `--json`,
//! `--fix`, `--list`) and `flow3d tidy` (CLI subcommand).
//!
//! ```
//! use flow3d_lint::{check_file, FilePolicy, Lint};
//!
//! let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
//! let violations = check_file(bad, &FilePolicy::strict());
//! assert_eq!(violations.len(), 1);
//! assert_eq!(violations[0].lint, Lint::PanicUnwrap);
//! ```

pub mod diag;
pub mod lexer;
pub mod lints;
pub mod workspace;

pub use diag::{render_human, render_json, FileViolation};
pub use lints::{
    check_file, fix_missing_forbid, FilePolicy, Lint, Violation, ALL_LINTS, FORBID_UNSAFE_LINE,
};
pub use workspace::{find_workspace_root, run, TidyReport};
