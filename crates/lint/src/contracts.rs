//! W1 `contract-drift`: cross-artifact consistency over the symbol
//! graph.
//!
//! Three contracts, each anchored on the file that owns the source of
//! truth (a leg is skipped when its anchor file is absent, so synthetic
//! workspaces without a serve layer stay clean):
//!
//! 1. **Config knobs** — every `Flow3dConfig` field (the struct in
//!    `crates/core/src/config.rs`) must be bound to a CLI flag string in
//!    a `Flow3dConfig { … }` literal under `crates/cli/`, every bind
//!    must name a real field, and every field (or its flag) must be
//!    mentioned in README.md or EXPERIMENTS.md.
//! 2. **Wire commands** — the command strings of `Request::parse`'s
//!    match arms, the strings of `Request::cmd()`'s arms, the `Request`
//!    enum variants (lowercased), and the SERVING.md command table must
//!    all agree.
//! 3. **Metric names** — every `flow3d_serve_*` name emitted by
//!    `crates/obs/src/metrics.rs` must appear in SERVING.md, and
//!    SERVING.md must not mention metrics the renderer does not emit.

use crate::lints::{suppress_hint, Lint, Violation};
use crate::symbols::FileFacts;
use std::collections::BTreeMap;

/// Prefix of the serve-layer Prometheus metric family.
const METRIC_PREFIX: &str = "flow3d_serve_";

fn drift(line: u32, message: String, help: String) -> Violation {
    Violation {
        lint: Lint::ContractDrift,
        line,
        col: 1,
        len: 1,
        message,
        help: format!("{help}; {}", suppress_hint(Lint::ContractDrift)),
    }
}

/// Runs all three contract legs; returns `(path, violation)` pairs
/// anchored in source or doc files.
pub(crate) fn check_w1(
    facts: &BTreeMap<String, FileFacts>,
    docs: &BTreeMap<String, String>,
) -> Vec<(String, Violation)> {
    let mut out: Vec<(String, Violation)> = Vec::new();
    check_config_leg(facts, docs, &mut out);
    check_command_leg(facts, docs, &mut out);
    check_metric_leg(facts, docs, &mut out);
    out
}

fn check_config_leg(
    facts: &BTreeMap<String, FileFacts>,
    docs: &BTreeMap<String, String>,
    out: &mut Vec<(String, Violation)>,
) {
    let Some((cfg_path, cfg)) = facts.iter().find(|(p, _)| p.ends_with("core/src/config.rs"))
    else {
        return;
    };
    let fields: Vec<_> = cfg
        .fields
        .iter()
        .filter(|f| f.owner == "Flow3dConfig")
        .collect();
    if fields.is_empty() {
        return;
    }
    let cli_files: Vec<(&String, &FileFacts)> = facts
        .iter()
        .filter(|(p, _)| p.starts_with("crates/cli/"))
        .collect();
    if cli_files.is_empty() {
        return;
    }

    for field in &fields {
        let bound = cli_files
            .iter()
            .any(|(_, f)| f.binds.iter().any(|b| b.field == field.name));
        if !bound {
            out.push((
                cfg_path.clone(),
                drift(
                    field.line,
                    format!(
                        "config field `{}` is bound to no CLI flag in crates/cli",
                        field.name
                    ),
                    "bind it in the `Flow3dConfig { .. }` literal of `cmd_legalize` (or drop the field)"
                        .to_string(),
                ),
            ));
        }
    }
    for (path, f) in &cli_files {
        for b in &f.binds {
            if !fields.iter().any(|fd| fd.name == b.field) {
                out.push((
                    (*path).clone(),
                    drift(
                        b.line,
                        format!("CLI binds `{}`, which is not a `Flow3dConfig` field", b.field),
                        "remove the stale bind or add the field to Flow3dConfig".to_string(),
                    ),
                ));
            }
        }
    }

    let hay: String = ["README.md", "EXPERIMENTS.md"]
        .iter()
        .filter_map(|d| docs.get(*d))
        .fold(String::new(), |mut acc, t| {
            acc.push_str(t);
            acc.push('\n');
            acc
        });
    if hay.is_empty() {
        return;
    }
    for field in &fields {
        let flags: Vec<&str> = cli_files
            .iter()
            .flat_map(|(_, f)| f.binds.iter())
            .filter(|b| b.field == field.name)
            .map(|b| b.flag.as_str())
            .collect();
        let mentioned =
            hay.contains(&field.name) || flags.iter().any(|flag| hay.contains(flag));
        if !mentioned {
            out.push((
                cfg_path.clone(),
                drift(
                    field.line,
                    format!(
                        "config field `{}` is documented in neither README.md nor EXPERIMENTS.md",
                        field.name
                    ),
                    "add it to the config-knob table (README.md) or an experiment recipe".to_string(),
                ),
            ));
        }
    }
}

fn check_command_leg(
    facts: &BTreeMap<String, FileFacts>,
    docs: &BTreeMap<String, String>,
    out: &mut Vec<(String, Violation)>,
) {
    let Some((proto_path, proto)) = facts
        .iter()
        .find(|(p, _)| p.ends_with("serve/src/protocol.rs"))
    else {
        return;
    };
    let parse_arms: Vec<(&str, u32)> = proto
        .strings
        .iter()
        .filter(|s| s.in_fn == "parse" && (s.next == "=>" || s.next == "|"))
        .map(|s| (s.text.as_str(), s.line))
        .collect();
    let cmd_arms: Vec<(&str, u32)> = proto
        .strings
        .iter()
        .filter(|s| s.in_fn == "cmd" && s.prev == "=>")
        .map(|s| (s.text.as_str(), s.line))
        .collect();
    if parse_arms.is_empty() {
        return;
    }

    for (name, line) in &parse_arms {
        if !cmd_arms.iter().any(|(n, _)| n == name) {
            out.push((
                proto_path.clone(),
                drift(
                    *line,
                    format!("wire command `{name}` has a parse arm but no `Request::cmd()` arm"),
                    "add the command to `Request::cmd()` so telemetry and logs can name it"
                        .to_string(),
                ),
            ));
        }
    }
    for (name, line) in &cmd_arms {
        if !parse_arms.iter().any(|(n, _)| n == name) {
            out.push((
                proto_path.clone(),
                drift(
                    *line,
                    format!("`Request::cmd()` names `{name}`, which `Request::parse` never accepts"),
                    "add a parse arm for the command or drop the stale cmd() arm".to_string(),
                ),
            ));
        }
    }
    for v in proto.variants.iter().filter(|v| v.owner == "Request") {
        let wire = v.name.to_lowercase();
        if !parse_arms.iter().any(|(n, _)| *n == wire) {
            out.push((
                proto_path.clone(),
                drift(
                    v.line,
                    format!(
                        "`Request::{}` has no `\"{wire}\"` parse arm",
                        v.name
                    ),
                    "wire the variant into `Request::parse` or remove it".to_string(),
                ),
            ));
        }
    }

    let Some(doc) = docs.get("SERVING.md") else {
        return;
    };
    let doc_cmds = command_table(doc);
    if doc_cmds.is_empty() {
        out.push((
            "SERVING.md".to_string(),
            drift(
                1,
                "SERVING.md lacks a wire-command table (first header cell `cmd`)".to_string(),
                "document the protocol commands in a `| cmd | … |` table".to_string(),
            ),
        ));
        return;
    }
    for (name, line) in &parse_arms {
        if !doc_cmds.iter().any(|(n, _)| n == name) {
            out.push((
                proto_path.clone(),
                drift(
                    *line,
                    format!("wire command `{name}` is missing from the SERVING.md command table"),
                    "add a row to the command table in SERVING.md".to_string(),
                ),
            ));
        }
    }
    for (name, line) in &doc_cmds {
        if !parse_arms.iter().any(|(n, _)| n == name) {
            out.push((
                "SERVING.md".to_string(),
                drift(
                    *line,
                    format!("SERVING.md documents wire command `{name}`, which the server does not parse"),
                    "drop the stale row or implement the command".to_string(),
                ),
            ));
        }
    }
}

/// Parses the first markdown table whose leading header cell is `cmd`;
/// returns `(command, 1-based line)` rows.
fn command_table(doc: &str) -> Vec<(String, u32)> {
    let mut rows: Vec<(String, u32)> = Vec::new();
    let mut in_table = false;
    for (i, line) in doc.lines().enumerate() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            if in_table {
                break;
            }
            continue;
        }
        let first = trimmed
            .trim_matches('|')
            .split('|')
            .next()
            .unwrap_or("")
            .trim()
            .trim_matches('`')
            .to_string();
        if !in_table {
            if first == "cmd" {
                in_table = true;
            }
            continue;
        }
        if first.chars().all(|c| c == '-' || c == ':') {
            continue; // separator row
        }
        if !first.is_empty() {
            rows.push((first, (i + 1) as u32));
        }
    }
    rows
}

fn check_metric_leg(
    facts: &BTreeMap<String, FileFacts>,
    docs: &BTreeMap<String, String>,
    out: &mut Vec<(String, Violation)>,
) {
    let Some((metrics_path, metrics)) = facts
        .iter()
        .find(|(p, _)| p.ends_with("obs/src/metrics.rs"))
    else {
        return;
    };
    let mut code: BTreeMap<String, u32> = BTreeMap::new();
    for s in &metrics.strings {
        for name in metric_names(&s.text) {
            code.entry(name).or_insert(s.line);
        }
    }
    if code.is_empty() {
        return;
    }
    let Some(doc) = docs.get("SERVING.md") else {
        return;
    };
    let mut documented: BTreeMap<String, u32> = BTreeMap::new();
    for (i, line) in doc.lines().enumerate() {
        for name in metric_names(line) {
            documented.entry(name).or_insert((i + 1) as u32);
        }
    }
    for (name, line) in &code {
        if !documented.contains_key(name) {
            out.push((
                metrics_path.clone(),
                drift(
                    *line,
                    format!("metric `{name}` is not documented in SERVING.md"),
                    "add it to the SERVING.md metric table".to_string(),
                ),
            ));
        }
    }
    for (name, line) in &documented {
        if !code.contains_key(name) {
            out.push((
                "SERVING.md".to_string(),
                drift(
                    *line,
                    format!("SERVING.md mentions metric `{name}`, which metrics.rs does not emit"),
                    "drop the stale name or emit the metric".to_string(),
                ),
            ));
        }
    }
}

/// Extracts every full `flow3d_serve_*` metric name in `text` (a bare
/// prefix mention yields nothing).
fn metric_names(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(METRIC_PREFIX) {
        let tail = &rest[pos..];
        let end = tail
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(tail.len());
        if end > METRIC_PREFIX.len() {
            out.push(tail[..end].to_string());
        }
        rest = &rest[pos + METRIC_PREFIX.len()..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::FilePolicy;
    use crate::symbols::file_facts;

    fn fact_map(entries: &[(&str, &str)]) -> BTreeMap<String, FileFacts> {
        entries
            .iter()
            .map(|(p, src)| {
                (
                    p.to_string(),
                    file_facts(src, &FilePolicy::strict(), 0),
                )
            })
            .collect()
    }

    #[test]
    fn metric_name_extraction() {
        assert_eq!(
            metric_names("a flow3d_serve_queue_depth b flow3d_serve_ c"),
            vec!["flow3d_serve_queue_depth".to_string()]
        );
        assert_eq!(
            metric_names("\"flow3d_serve_request_latency_micros{{quantile=\\\"{q}\\\"}} {v}\\n\""),
            vec!["flow3d_serve_request_latency_micros".to_string()]
        );
    }

    #[test]
    fn unbound_config_field_drifts() {
        let facts = fact_map(&[
            (
                "crates/core/src/config.rs",
                "pub struct Flow3dConfig { pub alpha: f64, pub threads: usize }",
            ),
            (
                "crates/cli/src/main.rs",
                "fn go(args: &Args) { let c = Flow3dConfig { alpha: args.get_f64(\"alpha\", 0.1)?, ..Default::default() }; }",
            ),
        ]);
        let mut docs = BTreeMap::new();
        docs.insert("README.md".to_string(), "`--alpha` and threads".to_string());
        let v = check_w1(&facts, &docs);
        assert_eq!(v.len(), 1);
        assert!(v[0].1.message.contains("`threads`"));
    }

    #[test]
    fn undocumented_field_drifts() {
        let facts = fact_map(&[
            (
                "crates/core/src/config.rs",
                "pub struct Flow3dConfig { pub alpha: f64 }",
            ),
            (
                "crates/cli/src/main.rs",
                "fn go(args: &Args) { let c = Flow3dConfig { alpha: args.get_f64(\"alpha\", 0.1)? }; }",
            ),
        ]);
        let mut docs = BTreeMap::new();
        docs.insert("README.md".to_string(), "nothing relevant".to_string());
        let v = check_w1(&facts, &docs);
        assert_eq!(v.len(), 1);
        assert!(v[0].1.message.contains("documented in neither"));
    }

    #[test]
    fn command_sets_must_agree_with_doc_table() {
        let proto = "pub enum Request { Ping, Load }\nimpl Request {\n  fn parse(c: &str) { match c { \"ping\" => a(), \"load\" => b(), _ => e() } }\n  fn cmd(&self) -> &str { match self { Request::Ping => \"ping\", Request::Load => \"load\" } }\n}\n";
        let facts = fact_map(&[("crates/serve/src/protocol.rs", proto)]);
        let mut docs = BTreeMap::new();
        docs.insert(
            "SERVING.md".to_string(),
            "| `cmd` | effect |\n|---|---|\n| `ping` | liveness |\n| `halt` | bogus |\n".to_string(),
        );
        let v = check_w1(&facts, &docs);
        // `load` missing from the table, `halt` documented but unknown.
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|(p, x)| p.ends_with("protocol.rs")
            && x.message.contains("`load` is missing from the SERVING.md")));
        assert!(v
            .iter()
            .any(|(p, x)| p == "SERVING.md" && x.message.contains("`halt`")));
    }

    #[test]
    fn cmd_arm_drift_is_caught_without_docs() {
        let proto = "pub enum Request { Ping }\nimpl Request {\n  fn parse(c: &str) { match c { \"ping\" => a(), _ => e() } }\n  fn cmd(&self) -> &str { match self { Request::Ping => \"pong\" } }\n}\n";
        let facts = fact_map(&[("crates/serve/src/protocol.rs", proto)]);
        let v = check_w1(&facts, &BTreeMap::new());
        // `ping` lacks a cmd() arm; `pong` has no parse arm.
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn metric_drift_both_directions() {
        let metrics = "fn to_prometheus() { emit(\"flow3d_serve_queue_depth\"); emit(\"flow3d_serve_requests_total\"); }";
        let facts = fact_map(&[("crates/obs/src/metrics.rs", metrics)]);
        let mut docs = BTreeMap::new();
        docs.insert(
            "SERVING.md".to_string(),
            "| `cmd` |\n|---|\n| `x` |\n\nflow3d_serve_queue_depth and flow3d_serve_ghost_gauge\n"
                .to_string(),
        );
        let v = check_w1(&facts, &docs);
        assert!(v.iter().any(|(p, x)| p.ends_with("metrics.rs")
            && x.message.contains("flow3d_serve_requests_total")));
        assert!(v
            .iter()
            .any(|(p, x)| p == "SERVING.md" && x.message.contains("flow3d_serve_ghost_gauge")));
    }

    #[test]
    fn absent_anchor_files_skip_their_legs() {
        let facts = fact_map(&[("crates/geom/src/lib.rs", "pub fn area() -> u64 { 0 }")]);
        assert!(check_w1(&facts, &BTreeMap::new()).is_empty());
    }
}
