//! A minimal hand-rolled Rust lexer: just enough token structure for the
//! tidy lints — identifiers, literals, punctuation — with comments and
//! string/char contents stripped so lint patterns never fire inside them.
//!
//! Deliberately *not* a full Rust lexer: no token trees, no macro
//! expansion, no edition awareness. The lints only need a flat token
//! stream with source positions, plus the `// flow3d-tidy:` suppression
//! comments collected alongside it.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// An integer literal (including hex/octal/binary forms).
    Int,
    /// A floating-point literal (`1.0`, `2e9`, `3f64`, …).
    Float,
    /// A string literal of any flavour (raw, byte, C). The token text
    /// holds the literal's content (escapes left as written) so symbol
    /// passes can match wire commands, metric names, and CLI flags.
    Str,
    /// A character literal. Content dropped.
    Char,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// Punctuation, including compound operators (`==`, `::`, `->`, …).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub(crate) struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's text (literal content for strings, empty for chars).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl Token {
    /// `true` if this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` if this is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One parsed `// flow3d-tidy: allow(...)` comment.
#[derive(Debug, Clone)]
pub(crate) struct Suppression {
    /// Line the comment sits on. It covers violations on this line and
    /// the next one.
    pub line: u32,
    /// Column of the comment marker.
    pub col: u32,
    /// Lint names inside `allow(...)`, as written.
    pub lints: Vec<String>,
    /// `true` if a non-empty reason follows the closing parenthesis.
    pub has_reason: bool,
}

/// A `flow3d-tidy:` comment the parser could not make sense of.
#[derive(Debug, Clone)]
pub(crate) struct MalformedSuppression {
    /// Line of the comment.
    pub line: u32,
    /// Column of the comment marker.
    pub col: u32,
    /// Why it was rejected.
    pub why: String,
}

/// Everything the lexer extracts from one source file.
#[derive(Debug, Default)]
pub(crate) struct LexOutput {
    /// The significant tokens, in source order.
    pub tokens: Vec<Token>,
    /// Parsed suppression comments.
    pub suppressions: Vec<Suppression>,
    /// `flow3d-tidy:` comments that failed to parse.
    pub malformed: Vec<MalformedSuppression>,
}

/// The marker that introduces a suppression comment.
pub(crate) const SUPPRESSION_MARKER: &str = "flow3d-tidy:";

const COMPOUND_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    src: std::marker::PhantomData<&'a str>,
}

impl Cursor<'_> {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src: std::marker::PhantomData,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c))
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into tokens and suppression comments.
///
/// Unterminated strings or comments end the token stream at the point of
/// the problem rather than erroring: tidy lints are best-effort on broken
/// source (the compiler reports the real error).
pub(crate) fn lex(src: &str) -> LexOutput {
    let mut cur = Cursor::new(src);
    let mut out = LexOutput::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if cur.starts_with("//") {
            let doc = cur.starts_with("///") || cur.starts_with("//!");
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            // Doc comments never carry suppressions — they describe the
            // syntax (and rustdoc examples quote it) without enacting it.
            if !doc {
                scan_suppression(&text, line, col, &mut out);
            }
            continue;
        }
        if cur.starts_with("/*") {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                if cur.starts_with("/*") {
                    cur.bump();
                    cur.bump();
                    depth += 1;
                } else if cur.starts_with("*/") {
                    cur.bump();
                    cur.bump();
                    depth -= 1;
                } else if cur.bump().is_none() {
                    break;
                }
            }
            continue;
        }
        // String-literal prefixes: r" r#" b" br" b' c" cr" etc.
        if is_ident_start(c) {
            if let Some(tok) = try_string_prefix(&mut cur, line, col) {
                out.tokens.push(tok);
                continue;
            }
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '"' {
            out.tokens.push(eat_quoted(&mut cur, line, col));
            continue;
        }
        if c == '\'' {
            // Lifetime/label vs char literal.
            let next = cur.peek(1);
            let after = cur.peek(2);
            let is_lifetime = matches!(next, Some(n) if is_ident_start(n)) && after != Some('\'');
            if is_lifetime {
                cur.bump(); // '
                let mut text = String::from("'");
                while let Some(c) = cur.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                });
            } else {
                out.tokens.push(eat_char_literal(&mut cur, line, col));
            }
            continue;
        }
        if c.is_ascii_digit() {
            out.tokens.push(eat_number(&mut cur, line, col));
            continue;
        }
        // Punctuation: maximal munch over the compound table.
        let mut matched = false;
        for op in COMPOUND_PUNCT {
            if cur.starts_with(op) {
                for _ in 0..op.len() {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (*op).to_string(),
                    line,
                    col,
                });
                matched = true;
                break;
            }
        }
        if !matched {
            cur.bump();
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
                col,
            });
        }
    }
    out
}

/// Recognizes raw/byte/C string prefixes at the cursor; consumes and
/// returns the whole literal if one starts here.
fn try_string_prefix(cur: &mut Cursor<'_>, line: u32, col: u32) -> Option<Token> {
    // Longest prefixes first.
    for prefix in ["br", "cr", "b", "c", "r"] {
        if !cur.starts_with(prefix) {
            continue;
        }
        let n = prefix.chars().count();
        let next = cur.peek(n);
        let raw = prefix.ends_with('r');
        match next {
            Some('"') => {
                for _ in 0..n {
                    cur.bump();
                }
                return Some(if raw {
                    eat_raw_string(cur, line, col, 0)
                } else {
                    eat_quoted(cur, line, col)
                });
            }
            Some('#') if raw => {
                let mut hashes = 0usize;
                while cur.peek(n + hashes) == Some('#') {
                    hashes += 1;
                }
                if cur.peek(n + hashes) == Some('"') {
                    for _ in 0..(n + hashes) {
                        cur.bump();
                    }
                    return Some(eat_raw_string(cur, line, col, hashes));
                }
            }
            Some('\'') if prefix == "b" => {
                cur.bump(); // b
                return Some(eat_char_literal(cur, line, col));
            }
            _ => {}
        }
    }
    None
}

/// Consumes a `"…"` literal (cursor on the opening quote), honoring
/// backslash escapes.
fn eat_quoted(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    cur.bump(); // opening quote
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                text.push(c);
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            '"' => break,
            _ => text.push(c),
        }
    }
    Token {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

/// Consumes a raw string (cursor on the opening quote) closed by `"`
/// followed by `hashes` `#`s.
fn eat_raw_string(cur: &mut Cursor<'_>, line: u32, col: u32, hashes: usize) -> Token {
    cur.bump(); // opening quote
    let mut text = String::new();
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            for i in 0..hashes {
                if cur.peek(i) != Some('#') {
                    text.push(c);
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        text.push(c);
    }
    Token {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

/// Consumes a `'…'` char literal (cursor on the opening quote).
fn eat_char_literal(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
    Token {
        kind: TokKind::Char,
        text: String::new(),
        line,
        col,
    }
}

/// Consumes a numeric literal and classifies it as int or float.
fn eat_number(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    let mut float = false;
    // Radix-prefixed integers never contain floats.
    if cur.starts_with("0x") || cur.starts_with("0o") || cur.starts_with("0b") {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return Token {
            kind: TokKind::Int,
            text,
            line,
            col,
        };
    }
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_digit() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part: a dot that is not a range operator or a method
    // call (`1..2`, `1.max(2)`).
    if cur.peek(0) == Some('.') {
        let after = cur.peek(1);
        let is_fraction = match after {
            Some(c) if c.is_ascii_digit() => true,
            Some('.') => false,
            Some(c) if is_ident_start(c) => false,
            _ => true, // `1.` at end of expression
        };
        if is_fraction {
            float = true;
            text.push('.');
            cur.bump();
            while let Some(c) = cur.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let (sign, digit) = (cur.peek(1), cur.peek(2));
        let has_exp = match sign {
            Some(c) if c.is_ascii_digit() => true,
            Some('+' | '-') => matches!(digit, Some(d) if d.is_ascii_digit()),
            _ => false,
        };
        if has_exp {
            float = true;
            text.push(cur.bump().unwrap_or('e'));
            if matches!(cur.peek(0), Some('+' | '-')) {
                text.push(cur.bump().unwrap_or('+'));
            }
            while let Some(c) = cur.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Suffix (`u32`, `f64`, …).
    let mut suffix = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            suffix.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix == "f32" || suffix == "f64" {
        float = true;
    }
    text.push_str(&suffix);
    Token {
        kind: if float { TokKind::Float } else { TokKind::Int },
        text,
        line,
        col,
    }
}

/// Parses a line comment's text for the `flow3d-tidy:` marker.
fn scan_suppression(comment: &str, line: u32, col: u32, out: &mut LexOutput) {
    let Some(at) = comment.find(SUPPRESSION_MARKER) else {
        return;
    };
    let rest = comment[at + SUPPRESSION_MARKER.len()..].trim_start();
    let Some(args) = rest.strip_prefix("allow") else {
        out.malformed.push(MalformedSuppression {
            line,
            col,
            why: "expected `allow(<lint-name>)` after `flow3d-tidy:`".to_string(),
        });
        return;
    };
    let args = args.trim_start();
    let Some(args) = args.strip_prefix('(') else {
        out.malformed.push(MalformedSuppression {
            line,
            col,
            why: "expected `(` after `allow`".to_string(),
        });
        return;
    };
    let Some(close) = args.find(')') else {
        out.malformed.push(MalformedSuppression {
            line,
            col,
            why: "unclosed `allow(` list".to_string(),
        });
        return;
    };
    let lints: Vec<String> = args[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if lints.is_empty() {
        out.malformed.push(MalformedSuppression {
            line,
            col,
            why: "empty `allow()` list".to_string(),
        });
        return;
    }
    // The reason: whatever follows the closing paren, stripped of
    // leading separators. Must be non-empty.
    let reason = args[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':' | ','))
        .trim();
    out.suppressions.push(Suppression {
        line,
        col,
        lints,
        has_reason: !reason.is_empty(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let out = lex("let x = a.unwrap();");
        let texts: Vec<&str> = out.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]
        );
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        assert_eq!(
            idents("// HashMap\n/* unwrap */ let s = \"panic!\"; f(s)"),
            vec!["let", "s", "f", "s"]
        );
    }

    #[test]
    fn raw_and_byte_strings() {
        assert_eq!(
            idents("let a = r#\"unwrap() \" inner\"#; let b = b\"x\"; let c = br#\"y\"#;"),
            vec!["let", "a", "let", "b", "let", "c"]
        );
    }

    #[test]
    fn string_content_is_retained() {
        let strs: Vec<String> = lex("f(\"ping\", r#\"a \" b\"#, \"es\\\"c\");")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text)
            .collect();
        assert_eq!(strs, vec!["ping", "a \" b", "es\\\"c"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let out = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert!(out
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            2
        );
    }

    #[test]
    fn float_classification() {
        let kinds: Vec<(String, TokKind)> = lex("1 1.0 1. 2e9 0x10 1..2 3.max(4) 5f64 6u32")
            .tokens
            .into_iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.text, t.kind))
            .collect();
        let f = |s: &str| {
            kinds
                .iter()
                .find(|(t, _)| t == s)
                .map(|&(_, k)| k)
                .unwrap_or(TokKind::Punct)
        };
        assert_eq!(f("1.0"), TokKind::Float);
        assert_eq!(f("2e9"), TokKind::Float);
        assert_eq!(f("5f64"), TokKind::Float);
        assert_eq!(f("0x10"), TokKind::Int);
        assert_eq!(f("6u32"), TokKind::Int);
        // Range and method-call dots do not glue into floats.
        assert!(kinds.iter().any(|(t, k)| t == "2" && *k == TokKind::Int));
        assert!(kinds.iter().any(|(t, k)| t == "3" && *k == TokKind::Int));
    }

    #[test]
    fn compound_operators() {
        let texts: Vec<String> = lex("a == b != c :: d -> e")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, vec!["==", "!=", "::", "->"]);
    }

    #[test]
    fn suppression_with_reason() {
        let out = lex("// flow3d-tidy: allow(panic-unwrap) — invariant: list is non-empty\nx();");
        assert_eq!(out.suppressions.len(), 1);
        let s = &out.suppressions[0];
        assert_eq!(s.lints, vec!["panic-unwrap"]);
        assert!(s.has_reason);
        assert!(out.malformed.is_empty());
    }

    #[test]
    fn suppression_without_reason_is_flagged() {
        let out = lex("// flow3d-tidy: allow(panic-unwrap)");
        assert_eq!(out.suppressions.len(), 1);
        assert!(!out.suppressions[0].has_reason);
    }

    #[test]
    fn malformed_suppression() {
        let out = lex("// flow3d-tidy: disallow(x)");
        assert_eq!(out.malformed.len(), 1);
        let out = lex("// flow3d-tidy: allow(unclosed");
        assert_eq!(out.malformed.len(), 1);
        let out = lex("// flow3d-tidy: allow()");
        assert_eq!(out.malformed.len(), 1);
    }

    #[test]
    fn multi_lint_suppression() {
        let out = lex("// flow3d-tidy: allow(panic-unwrap, float-eq) - both are invariants here");
        assert_eq!(out.suppressions[0].lints, vec!["panic-unwrap", "float-eq"]);
        assert!(out.suppressions[0].has_reason);
    }

    #[test]
    fn positions_are_one_based() {
        let out = lex("a\n  bb");
        assert_eq!((out.tokens[0].line, out.tokens[0].col), (1, 1));
        assert_eq!((out.tokens[1].line, out.tokens[1].col), (2, 3));
    }
}
