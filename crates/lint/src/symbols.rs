//! The symbol-graph layer: per-file fact extraction and content-hash
//! caching.
//!
//! Every source file is distilled into a [`FileFacts`] record — its
//! top-level item definitions (with `pub` visibility), struct fields,
//! enum variants, every identifier it references, string literals with
//! enough surrounding context to recognize known call sites (match
//! arms, `Flow3dConfig` literal binds, metric-name constants), plus the
//! raw per-file lint findings and suppression comments. The
//! workspace-level lints (W1 `contract-drift` in [`crate::contracts`],
//! W2 `dead-pub` in [`crate::deadpub`]) run entirely over these facts,
//! never re-reading source.
//!
//! Facts are cached on disk keyed by an FNV-64 hash of the file's
//! content XOR its lint-policy bits, so a repeat `flow3d tidy` run on
//! an unchanged tree re-lexes nothing. The cache is a versioned
//! tab-separated text file under `target/`; any parse surprise (old
//! version, truncation, concurrent writer) discards it wholesale —
//! correctness never depends on the cache being present.

use crate::lexer::{MalformedSuppression, Suppression, TokKind, Token};
use crate::lints::{check_file_raw, FilePolicy, Lint, Violation};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

/// Cache format tag; bump on any layout change to invalidate old files.
const CACHE_HEADER: &str = "flow3d-tidy-cache v1";

/// FNV-1a 64-bit hash of `bytes`.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Folds a file's lint policy into its content hash so a policy change
/// (e.g. a crate losing its d3 exemption) invalidates cached facts.
pub(crate) fn policy_hash(content: &str, policy: &FilePolicy) -> u64 {
    let mask = u64::from(policy.d1)
        | u64::from(policy.d2) << 1
        | u64::from(policy.d3) << 2
        | u64::from(policy.d4) << 3
        | u64::from(policy.d5) << 4
        | u64::from(policy.w3) << 5
        | u64::from(policy.crate_root) << 6;
    fnv64(content.as_bytes()) ^ (mask.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// The kind of a top-level item definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DefKind {
    /// A free function.
    Fn,
    /// A struct.
    Struct,
    /// An enum.
    Enum,
    /// A trait.
    Trait,
    /// A `const` item.
    Const,
    /// A `static` item.
    Static,
    /// A type alias.
    TypeAlias,
    /// A module.
    Mod,
}

impl DefKind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            DefKind::Fn => "fn",
            DefKind::Struct => "struct",
            DefKind::Enum => "enum",
            DefKind::Trait => "trait",
            DefKind::Const => "const",
            DefKind::Static => "static",
            DefKind::TypeAlias => "type",
            DefKind::Mod => "mod",
        }
    }

    fn from_str(s: &str) -> Option<DefKind> {
        Some(match s {
            "fn" => DefKind::Fn,
            "struct" => DefKind::Struct,
            "enum" => DefKind::Enum,
            "trait" => DefKind::Trait,
            "const" => DefKind::Const,
            "static" => DefKind::Static,
            "type" => DefKind::TypeAlias,
            "mod" => DefKind::Mod,
            _ => return None,
        })
    }
}

/// One top-level item definition.
#[derive(Debug, Clone)]
pub(crate) struct Def {
    pub kind: DefKind,
    pub name: String,
    pub is_pub: bool,
    pub line: u32,
}

/// One named struct field (`owner.name`).
#[derive(Debug, Clone)]
pub(crate) struct FieldDef {
    pub owner: String,
    pub name: String,
    pub line: u32,
}

/// One enum variant (`owner::name`).
#[derive(Debug, Clone)]
pub(crate) struct VariantDef {
    pub owner: String,
    pub name: String,
    pub line: u32,
}

/// One string literal with the context the contract lints key on.
#[derive(Debug, Clone)]
pub(crate) struct StrLit {
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// Text of the preceding token (`"=>"` marks a match-arm value).
    pub prev: String,
    /// Text of the following token (`"=>"`/`"|"` mark a match-arm key).
    pub next: String,
    /// Name of the nearest enclosing `fn`, or empty.
    pub in_fn: String,
}

/// One `field: … "flag" …` entry of a `Flow3dConfig { … }` literal.
#[derive(Debug, Clone)]
pub(crate) struct BindDef {
    pub field: String,
    pub flag: String,
    pub line: u32,
}

/// Everything the symbol graph knows about one source file.
#[derive(Debug, Clone, Default)]
pub(crate) struct FileFacts {
    /// [`policy_hash`] of the content this record was computed from.
    pub hash: u64,
    pub defs: Vec<Def>,
    pub fields: Vec<FieldDef>,
    pub variants: Vec<VariantDef>,
    pub binds: Vec<BindDef>,
    /// Every identifier appearing anywhere in the file (tests included)
    /// — the reference side of the W2 liveness check.
    pub refs: BTreeSet<String>,
    pub strings: Vec<StrLit>,
    /// Raw per-file violations, suppressions not yet applied.
    pub raw: Vec<Violation>,
    pub suppressions: Vec<Suppression>,
    pub malformed: Vec<MalformedSuppression>,
}

/// Extracts the full fact record for one file.
pub(crate) fn file_facts(src: &str, policy: &FilePolicy, hash: u64) -> FileFacts {
    let (raw, lexed) = check_file_raw(src, policy);
    let stripped = if crate::lints::file_gated_to_tests(&lexed.tokens) {
        Vec::new()
    } else {
        crate::lints::strip_test_items(&lexed.tokens)
    };
    let refs = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect();
    let (defs, fields, variants) = extract_items(&stripped);
    FileFacts {
        hash,
        defs,
        fields,
        variants,
        binds: extract_binds(&stripped),
        refs,
        strings: extract_strings(&stripped),
        raw,
        suppressions: lexed.suppressions,
        malformed: lexed.malformed,
    }
}

/// Index of the token closing the bracket opened at `open` (or `len`).
fn matching(tokens: &[Token], open: usize, l: &str, r: &str) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(l) {
            depth += 1;
        } else if t.is_punct(r) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len()
}

/// Walks the token stream and records top-level item definitions plus
/// the fields/variants of top-level structs and enums.
fn extract_items(tokens: &[Token]) -> (Vec<Def>, Vec<FieldDef>, Vec<VariantDef>) {
    let mut defs: Vec<Def> = Vec::new();
    let mut fields: Vec<FieldDef> = Vec::new();
    let mut variants: Vec<VariantDef> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth -= 1;
            i += 1;
            continue;
        }
        if depth != 0 {
            i += 1;
            continue;
        }
        if t.is_punct("#") {
            i = crate::lints::skip_attr(tokens, i);
            continue;
        }
        let mut j = i;
        let mut is_pub = false;
        if tokens[j].is_ident("pub") {
            j += 1;
            if tokens.get(j).is_some_and(|t| t.is_punct("(")) {
                // `pub(crate)` / `pub(super)`: not exported API surface.
                j = matching(tokens, j, "(", ")") + 1;
            } else {
                is_pub = true;
            }
        }
        while tokens
            .get(j)
            .is_some_and(|t| t.is_ident("unsafe") || t.is_ident("async") || t.is_ident("extern"))
        {
            j += 1;
            if tokens.get(j).is_some_and(|t| t.kind == TokKind::Str) {
                j += 1; // extern "C"
            }
        }
        let kind = tokens.get(j).and_then(|t| match t.text.as_str() {
            "fn" if t.kind == TokKind::Ident => Some(DefKind::Fn),
            "struct" => Some(DefKind::Struct),
            "enum" => Some(DefKind::Enum),
            "trait" => Some(DefKind::Trait),
            "const" => Some(DefKind::Const),
            "static" => Some(DefKind::Static),
            "type" => Some(DefKind::TypeAlias),
            "mod" => Some(DefKind::Mod),
            _ => None,
        });
        if let Some(kind) = kind {
            // `const fn f` / `const X: T`: a `fn` after const wins.
            let (kind, name_idx) =
                if kind == DefKind::Const && tokens.get(j + 1).is_some_and(|t| t.is_ident("fn")) {
                    (DefKind::Fn, j + 2)
                } else {
                    (kind, j + 1)
                };
            if let Some(name_tok) = tokens.get(name_idx).filter(|t| t.kind == TokKind::Ident) {
                defs.push(Def {
                    kind,
                    name: name_tok.text.clone(),
                    is_pub,
                    line: name_tok.line,
                });
                if kind == DefKind::Struct {
                    collect_fields(tokens, name_idx, &name_tok.text, &mut fields);
                } else if kind == DefKind::Enum {
                    collect_variants(tokens, name_idx, &name_tok.text, &mut variants);
                }
            }
            i = j + 1;
            continue;
        }
        i = j + 1;
    }
    (defs, fields, variants)
}

/// Finds the `{` body of the item named at `name_idx`, skipping
/// generics; returns `None` for unit/tuple forms.
fn item_body(tokens: &[Token], name_idx: usize) -> Option<usize> {
    let mut angle = 0i32;
    let mut j = name_idx + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct(">>") {
            angle -= 2;
        } else if angle <= 0 {
            if t.is_punct(";") || t.is_punct("(") {
                return None;
            }
            if t.is_punct("{") {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Records the named fields of one struct body.
fn collect_fields(tokens: &[Token], name_idx: usize, owner: &str, out: &mut Vec<FieldDef>) {
    let Some(open) = item_body(tokens, name_idx) else {
        return;
    };
    let close = matching(tokens, open, "{", "}");
    let mut k = open + 1;
    let mut depth = 0i32;
    let mut entry_start = true;
    while k < close {
        let t = &tokens[k];
        if entry_start && depth == 0 {
            if t.is_punct("#") {
                k = crate::lints::skip_attr(tokens, k);
                continue;
            }
            let mut m = k;
            if tokens[m].is_ident("pub") {
                m += 1;
                if tokens.get(m).is_some_and(|t| t.is_punct("(")) {
                    m = matching(tokens, m, "(", ")") + 1;
                }
            }
            if let Some(name_tok) = tokens.get(m).filter(|t| t.kind == TokKind::Ident) {
                if tokens.get(m + 1).is_some_and(|t| t.is_punct(":")) {
                    out.push(FieldDef {
                        owner: owner.to_string(),
                        name: name_tok.text.clone(),
                        line: name_tok.line,
                    });
                }
            }
            entry_start = false;
            k = m + 1;
            continue;
        }
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct(",") && depth == 0 {
            entry_start = true;
        }
        k += 1;
    }
}

/// Records the variants of one enum body.
fn collect_variants(tokens: &[Token], name_idx: usize, owner: &str, out: &mut Vec<VariantDef>) {
    let Some(open) = item_body(tokens, name_idx) else {
        return;
    };
    let close = matching(tokens, open, "{", "}");
    let mut k = open + 1;
    let mut depth = 0i32;
    let mut entry_start = true;
    while k < close {
        let t = &tokens[k];
        if entry_start && depth == 0 {
            if t.is_punct("#") {
                k = crate::lints::skip_attr(tokens, k);
                continue;
            }
            if t.kind == TokKind::Ident {
                out.push(VariantDef {
                    owner: owner.to_string(),
                    name: t.text.clone(),
                    line: t.line,
                });
            }
            entry_start = false;
            k += 1;
            continue;
        }
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct(",") && depth == 0 {
            entry_start = true;
        }
        k += 1;
    }
}

/// Records every string literal with its neighboring tokens and the
/// nearest enclosing `fn` name.
fn extract_strings(tokens: &[Token]) -> Vec<StrLit> {
    let mut out: Vec<StrLit> = Vec::new();
    let mut fn_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("fn") {
            if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                pending_fn = Some(name.text.clone());
            }
        } else if t.is_punct(";") && depth == 0 {
            pending_fn = None; // trait method declaration without a body
        } else if t.is_punct("{") {
            depth += 1;
            if let Some(name) = pending_fn.take() {
                fn_stack.push((name, depth));
            }
        } else if t.is_punct("}") {
            if fn_stack.last().is_some_and(|(_, d)| *d == depth) {
                fn_stack.pop();
            }
            depth -= 1;
        } else if t.kind == TokKind::Str {
            out.push(StrLit {
                text: t.text.clone(),
                line: t.line,
                col: t.col,
                prev: i.checked_sub(1).map_or(String::new(), |p| tokens[p].text.clone()),
                next: tokens.get(i + 1).map_or(String::new(), |n| n.text.clone()),
                in_fn: fn_stack.last().map_or(String::new(), |(n, _)| n.clone()),
            });
        }
    }
    out
}

/// Records `field: … "flag" …` binds inside `Flow3dConfig { … }`
/// struct literals (the definition in `config.rs`, whose `Flow3dConfig`
/// is preceded by `struct`, is excluded).
fn extract_binds(tokens: &[Token]) -> Vec<BindDef> {
    let mut out: Vec<BindDef> = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("Flow3dConfig")
            || !tokens.get(i + 1).is_some_and(|t| t.is_punct("{"))
            || (i > 0 && tokens[i - 1].is_ident("struct"))
        {
            continue;
        }
        let close = matching(tokens, i + 1, "{", "}");
        let mut k = i + 2;
        while k < close {
            // Entry head: `field :` at relative depth 0.
            let Some(field_tok) = tokens.get(k).filter(|t| t.kind == TokKind::Ident) else {
                k += 1;
                continue;
            };
            if !tokens.get(k + 1).is_some_and(|t| t.is_punct(":")) {
                k += 1;
                continue;
            }
            let field = field_tok.text.clone();
            let line = field_tok.line;
            let mut flag = String::new();
            let mut depth = 0i32;
            let mut m = k + 2;
            while m < close {
                let t = &tokens[m];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    depth -= 1;
                } else if t.is_punct(",") && depth == 0 {
                    break;
                } else if t.kind == TokKind::Str && flag.is_empty() {
                    flag = t.text.clone();
                }
                m += 1;
            }
            if !flag.is_empty() {
                out.push(BindDef { field, flag, line });
            }
            k = m + 1;
        }
    }
    out
}

// ---------------------------------------------------------------------
// On-disk cache: a versioned, escaped, tab-separated record stream.
// ---------------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Serializes the fact map to `path` (atomically, via a sibling temp
/// file). Failures are reported but non-fatal to callers.
pub(crate) fn save_cache(path: &Path, facts: &BTreeMap<String, FileFacts>) -> io::Result<()> {
    let mut out = String::new();
    out.push_str(CACHE_HEADER);
    out.push('\n');
    for (file, f) in facts {
        out.push_str(&format!("F\t{}\t{:016x}\n", esc(file), f.hash));
        for d in &f.defs {
            out.push_str(&format!(
                "d\t{}\t{}\t{}\t{}\n",
                d.kind.as_str(),
                esc(&d.name),
                u8::from(d.is_pub),
                d.line
            ));
        }
        for fd in &f.fields {
            out.push_str(&format!("f\t{}\t{}\t{}\n", esc(&fd.owner), esc(&fd.name), fd.line));
        }
        for v in &f.variants {
            out.push_str(&format!("v\t{}\t{}\t{}\n", esc(&v.owner), esc(&v.name), v.line));
        }
        for b in &f.binds {
            out.push_str(&format!("b\t{}\t{}\t{}\n", esc(&b.field), esc(&b.flag), b.line));
        }
        if !f.refs.is_empty() {
            let joined: Vec<&str> = f.refs.iter().map(String::as_str).collect();
            out.push_str(&format!("r\t{}\n", joined.join(" ")));
        }
        for s in &f.strings {
            out.push_str(&format!(
                "s\t{}\t{}\t{}\t{}\t{}\t{}\n",
                s.line,
                s.col,
                esc(&s.text),
                esc(&s.prev),
                esc(&s.next),
                esc(&s.in_fn)
            ));
        }
        for x in &f.raw {
            out.push_str(&format!(
                "x\t{}\t{}\t{}\t{}\t{}\t{}\n",
                x.lint.name(),
                x.line,
                x.col,
                x.len,
                esc(&x.message),
                esc(&x.help)
            ));
        }
        for p in &f.suppressions {
            out.push_str(&format!(
                "p\t{}\t{}\t{}\t{}\n",
                p.line,
                p.col,
                u8::from(p.has_reason),
                p.lints.join(",")
            ));
        }
        for m in &f.malformed {
            out.push_str(&format!("m\t{}\t{}\t{}\n", m.line, m.col, esc(&m.why)));
        }
    }
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, out)?;
    fs::rename(&tmp, path)
}

/// Loads the fact cache; any structural surprise yields an empty map.
pub(crate) fn load_cache(path: &Path) -> BTreeMap<String, FileFacts> {
    let Ok(text) = fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    parse_cache(&text).unwrap_or_default()
}

fn parse_cache(text: &str) -> Option<BTreeMap<String, FileFacts>> {
    let mut lines = text.lines();
    if lines.next() != Some(CACHE_HEADER) {
        return None;
    }
    let mut map: BTreeMap<String, FileFacts> = BTreeMap::new();
    let mut current: Option<(String, FileFacts)> = None;
    for line in lines {
        let cols: Vec<&str> = line.split('\t').collect();
        match cols.first().copied() {
            Some("F") if cols.len() == 3 => {
                if let Some((name, facts)) = current.take() {
                    map.insert(name, facts);
                }
                let hash = u64::from_str_radix(cols[2], 16).ok()?;
                current = Some((
                    unesc(cols[1]),
                    FileFacts {
                        hash,
                        ..FileFacts::default()
                    },
                ));
            }
            Some("d") if cols.len() == 5 => {
                let f = &mut current.as_mut()?.1;
                f.defs.push(Def {
                    kind: DefKind::from_str(cols[1])?,
                    name: unesc(cols[2]),
                    is_pub: cols[3] == "1",
                    line: cols[4].parse().ok()?,
                });
            }
            Some("f") if cols.len() == 4 => {
                let f = &mut current.as_mut()?.1;
                f.fields.push(FieldDef {
                    owner: unesc(cols[1]),
                    name: unesc(cols[2]),
                    line: cols[3].parse().ok()?,
                });
            }
            Some("v") if cols.len() == 4 => {
                let f = &mut current.as_mut()?.1;
                f.variants.push(VariantDef {
                    owner: unesc(cols[1]),
                    name: unesc(cols[2]),
                    line: cols[3].parse().ok()?,
                });
            }
            Some("b") if cols.len() == 4 => {
                let f = &mut current.as_mut()?.1;
                f.binds.push(BindDef {
                    field: unesc(cols[1]),
                    flag: unesc(cols[2]),
                    line: cols[3].parse().ok()?,
                });
            }
            Some("r") if cols.len() == 2 => {
                let f = &mut current.as_mut()?.1;
                f.refs = cols[1].split(' ').map(str::to_string).collect();
            }
            Some("s") if cols.len() == 7 => {
                let f = &mut current.as_mut()?.1;
                f.strings.push(StrLit {
                    line: cols[1].parse().ok()?,
                    col: cols[2].parse().ok()?,
                    text: unesc(cols[3]),
                    prev: unesc(cols[4]),
                    next: unesc(cols[5]),
                    in_fn: unesc(cols[6]),
                });
            }
            Some("x") if cols.len() == 7 => {
                let f = &mut current.as_mut()?.1;
                f.raw.push(Violation {
                    lint: Lint::from_name(cols[1])?,
                    line: cols[2].parse().ok()?,
                    col: cols[3].parse().ok()?,
                    len: cols[4].parse().ok()?,
                    message: unesc(cols[5]),
                    help: unesc(cols[6]),
                });
            }
            Some("p") if cols.len() == 5 => {
                let f = &mut current.as_mut()?.1;
                f.suppressions.push(Suppression {
                    line: cols[1].parse().ok()?,
                    col: cols[2].parse().ok()?,
                    has_reason: cols[3] == "1",
                    lints: if cols[4].is_empty() {
                        Vec::new()
                    } else {
                        cols[4].split(',').map(str::to_string).collect()
                    },
                });
            }
            Some("m") if cols.len() == 4 => {
                let f = &mut current.as_mut()?.1;
                f.malformed.push(MalformedSuppression {
                    line: cols[1].parse().ok()?,
                    col: cols[2].parse().ok()?,
                    why: unesc(cols[3]),
                });
            }
            _ => return None,
        }
    }
    if let Some((name, facts)) = current.take() {
        map.insert(name, facts);
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> FileFacts {
        file_facts(src, &FilePolicy::strict(), 7)
    }

    #[test]
    fn extracts_top_level_defs_with_visibility() {
        let f = facts(
            "pub fn a() {}\nfn b() {}\npub(crate) fn c() {}\npub struct S { pub x: u32, y: f64 }\npub enum E { A, B(u32) }\npub const K: u32 = 1;\n",
        );
        let pubs: Vec<&str> = f
            .defs
            .iter()
            .filter(|d| d.is_pub)
            .map(|d| d.name.as_str())
            .collect();
        assert_eq!(pubs, vec!["a", "S", "E", "K"]);
        let fields: Vec<&str> = f.fields.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(fields, vec!["x", "y"]);
        let variants: Vec<&str> = f.variants.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(variants, vec!["A", "B"]);
    }

    #[test]
    fn nested_items_are_not_top_level() {
        let f = facts("pub fn outer() { pub fn inner() {} struct Hidden { a: u32 } }\n");
        assert_eq!(f.defs.len(), 1);
        assert!(f.fields.is_empty());
    }

    #[test]
    fn strings_carry_match_arm_context() {
        let f = facts(
            "fn parse(c: &str) {\n    match c {\n        \"ping\" => go(),\n        \"load\" | \"eco\" => go(),\n        _ => {}\n    }\n}\nfn cmd() -> &'static str { match x { X::Ping => \"ping\" } }\n",
        );
        let arm_keys: Vec<&str> = f
            .strings
            .iter()
            .filter(|s| s.in_fn == "parse" && (s.next == "=>" || s.next == "|"))
            .map(|s| s.text.as_str())
            .collect();
        assert_eq!(arm_keys, vec!["ping", "load", "eco"]);
        let arm_vals: Vec<&str> = f
            .strings
            .iter()
            .filter(|s| s.in_fn == "cmd" && s.prev == "=>")
            .map(|s| s.text.as_str())
            .collect();
        assert_eq!(arm_vals, vec!["ping"]);
    }

    #[test]
    fn config_literal_binds_are_recorded() {
        let f = facts(
            "fn go(args: &Args) {\n    let c = Flow3dConfig {\n        alpha: args.get_f64(\"alpha\", 0.1)?,\n        allow_d2d: !args.flag(\"no-d2d\"),\n        ..Default::default()\n    };\n}\npub struct Flow3dConfig { pub alpha: f64 }\n",
        );
        let binds: Vec<(&str, &str)> = f
            .binds
            .iter()
            .map(|b| (b.field.as_str(), b.flag.as_str()))
            .collect();
        assert_eq!(binds, vec![("alpha", "alpha"), ("allow_d2d", "no-d2d")]);
    }

    #[test]
    fn cache_round_trips() {
        let f = facts(
            "pub fn a(x: Option<u32>) -> u32 {\n    // flow3d-tidy: allow(panic-unwrap) — test scaffolding\n    x.unwrap()\n}\nconst T: &str = \"tab\\there\";\n",
        );
        let mut map = BTreeMap::new();
        map.insert("crates/x/src/lib.rs".to_string(), f);
        let dir = std::env::temp_dir().join(format!("tidy-cache-test-{}", std::process::id()));
        let path = dir.join("cache.tsv");
        save_cache(&path, &map).expect("save");
        let back = load_cache(&path);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(back.len(), 1);
        let g = &back["crates/x/src/lib.rs"];
        let orig = &map["crates/x/src/lib.rs"];
        assert_eq!(g.hash, orig.hash);
        assert_eq!(g.defs.len(), orig.defs.len());
        assert_eq!(g.raw.len(), orig.raw.len());
        assert_eq!(g.suppressions.len(), orig.suppressions.len());
        assert_eq!(g.strings.iter().map(|s| &s.text).collect::<Vec<_>>(),
                   orig.strings.iter().map(|s| &s.text).collect::<Vec<_>>());
    }

    #[test]
    fn stale_or_foreign_cache_is_discarded() {
        assert!(parse_cache("some-other-tool v9\nF\tx\t0\n").is_none());
        assert!(parse_cache("flow3d-tidy-cache v1\nZ\tgarbage\n").is_none());
        assert!(parse_cache("flow3d-tidy-cache v1\n").is_some());
    }
}
