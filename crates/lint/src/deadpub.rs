//! W2 `dead-pub`: public items no other crate references.
//!
//! A candidate is a top-level `pub` fn/struct/enum/trait/const/static/
//! type alias in a `src/` file. It is *live* when any file belonging to
//! a different compilation unit — another crate, an integration-test or
//! bench target, a `src/bin/` binary, the workspace facade — mentions
//! its name. The check is name-based over the symbol graph's reference
//! sets, which over-approximates liveness (a same-named item elsewhere
//! keeps it alive) but never false-fires on an item that genuinely has
//! external users.
//!
//! Intentional API surface with no in-tree consumer yet keeps the
//! standard escape hatch: `// flow3d-tidy: allow(dead-pub) — <reason>`
//! on (or above) the definition line.

use crate::lints::{Lint, Violation};
use crate::symbols::{DefKind, FileFacts};
use std::collections::BTreeMap;

/// The compilation unit a workspace-relative path belongs to.
///
/// Integration tests, benches, and `src/bin/` binaries are distinct
/// units from their crate's library — they consume the library like an
/// external crate does, so their references count as external.
fn unit_of(path: &str) -> String {
    let (name, rest) = match path.strip_prefix("crates/") {
        Some(rest) => match rest.split_once('/') {
            Some((name, rest)) => (name, rest),
            None => (rest, ""),
        },
        None => ("flow3d", path),
    };
    if rest.starts_with("tests/") || rest.starts_with("benches/") {
        format!("{name}#tests")
    } else if rest.starts_with("src/bin/") {
        format!("{name}#bin")
    } else {
        name.to_string()
    }
}

/// `true` when the file can define candidate items (library source).
fn is_lib_src(path: &str) -> bool {
    let in_src = path.starts_with("src/") || path.contains("/src/");
    in_src && !path.contains("/src/bin/") && !path.contains("/bin/")
}

/// Runs the dead-pub check; returns `(path, violation)` pairs.
pub(crate) fn check_w2(facts: &BTreeMap<String, FileFacts>) -> Vec<(String, Violation)> {
    let mut out: Vec<(String, Violation)> = Vec::new();
    for (path, f) in facts {
        if !is_lib_src(path) {
            continue;
        }
        let unit = unit_of(path);
        for d in &f.defs {
            let candidate = d.is_pub
                && d.name != "main"
                && !d.name.starts_with('_')
                && !matches!(d.kind, DefKind::Mod);
            if !candidate {
                continue;
            }
            let live = facts
                .iter()
                .any(|(p2, f2)| unit_of(p2) != unit && f2.refs.contains(&d.name));
            if !live {
                out.push((
                    path.clone(),
                    Violation {
                        lint: Lint::DeadPub,
                        line: d.line,
                        col: 1,
                        len: d.name.chars().count().max(1) as u32,
                        message: format!(
                            "pub {} `{}` is referenced by no other crate",
                            d.kind.as_str(),
                            d.name
                        ),
                        help: "demote to pub(crate) or private, or keep deliberate API surface with `// flow3d-tidy: allow(dead-pub) — <reason>`"
                            .to_string(),
                    },
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::FilePolicy;
    use crate::symbols::file_facts;

    fn fact_map(entries: &[(&str, &str)]) -> BTreeMap<String, FileFacts> {
        entries
            .iter()
            .map(|(p, src)| (p.to_string(), file_facts(src, &FilePolicy::strict(), 0)))
            .collect()
    }

    #[test]
    fn unreferenced_pub_fn_is_dead() {
        let facts = fact_map(&[
            ("crates/a/src/lib.rs", "pub fn used() {}\npub fn orphan() {}"),
            ("crates/b/src/lib.rs", "fn f() { a::used(); }"),
        ]);
        let v = check_w2(&facts);
        assert_eq!(v.len(), 1);
        assert!(v[0].1.message.contains("`orphan`"));
    }

    #[test]
    fn same_crate_references_do_not_count() {
        let facts = fact_map(&[(
            "crates/a/src/lib.rs",
            "pub fn helper() {}\nfn caller() { helper(); }",
        )]);
        assert_eq!(check_w2(&facts).len(), 1);
    }

    #[test]
    fn integration_tests_and_bins_count_as_external() {
        let facts = fact_map(&[
            ("crates/a/src/lib.rs", "pub fn tested() {}\npub fn binned() {}"),
            ("crates/a/tests/api.rs", "fn t() { a::tested(); }"),
            ("crates/a/src/bin/tool.rs", "fn main() { a::binned(); }"),
        ]);
        assert!(check_w2(&facts).is_empty());
    }

    #[test]
    fn private_and_crate_visible_items_are_ignored() {
        let facts = fact_map(&[(
            "crates/a/src/lib.rs",
            "fn private() {}\npub(crate) fn internal() {}\npub mod sub;",
        )]);
        assert!(check_w2(&facts).is_empty());
    }
}
