//! W3 `nondet-capture`: closures handed to the `flow3d-par` fan-out
//! entry points must not smuggle shared mutable state.
//!
//! The workspace's bit-identical-under-threads guarantee rests on
//! parallel closures being pure functions of their index argument plus
//! worker-local state (the pool/init arguments of
//! `par_map_with`/`par_map_with_pool`). This pass finds every call to
//! `par_map`, `par_map_with`, or `par_map_with_pool`, locates the
//! closure literals in the argument list (following a bare-identifier
//! argument back to its `let name = |…|` definition in the same file),
//! and flags captures that can make the fan-out order observable:
//! `&mut` borrows of bindings the closure does not declare itself,
//! `RefCell`/`Cell` interior mutability, `.borrow_mut()` calls, and
//! `Relaxed` atomic orderings.
//!
//! Bindings introduced *inside* the closure — parameters, `let`
//! patterns, `for` loop variables, nested-closure parameters — are
//! exempt: `let mut items = Vec::new()` per invocation is worker-local
//! by construction.

use crate::lexer::{TokKind, Token};
use crate::lints::{suppress_hint, violation, Lint, Violation};
use std::collections::BTreeSet;

/// The `flow3d_par` entry points whose closure arguments are checked.
const PAR_ENTRY_POINTS: &[&str] = &["par_map", "par_map_with", "par_map_with_pool"];

/// Runs the W3 check over one file's (test-stripped) token stream.
pub(crate) fn check_w3(tokens: &[Token], out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        let tok = &tokens[i];
        if tok.kind == TokKind::Ident
            && PAR_ENTRY_POINTS.contains(&tok.text.as_str())
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            let close = matching(tokens, i + 1, "(", ")");
            check_call_args(tokens, &tok.text, i + 2, close, out);
        }
    }
}

/// Index of the token closing the bracket opened at `open` (or `len`).
fn matching(tokens: &[Token], open: usize, l: &str, r: &str) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(l) {
            depth += 1;
        } else if t.is_punct(r) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len()
}

/// Walks the argument list of one `par_map*` call and analyzes every
/// closure argument (literal or resolved bare identifier).
fn check_call_args(
    tokens: &[Token],
    entry: &str,
    start: usize,
    end: usize,
    out: &mut Vec<Violation>,
) {
    let mut j = start;
    let mut arg_start = true;
    let mut depth = 0i32;
    while j < end {
        let t = &tokens[j];
        if arg_start && depth == 0 {
            if let Some(past) = closure_at(tokens, j) {
                analyze_closure(tokens, entry, j, out);
                j = past;
                arg_start = false;
                continue;
            }
            // A bare identifier naming a closure defined earlier in the
            // same file: `let work = |…| …; par_map(t, n, work)`.
            if t.kind == TokKind::Ident
                && tokens
                    .get(j + 1)
                    .is_none_or(|n| n.is_punct(",") || n.is_punct(")"))
            {
                if let Some(def) = find_let_closure(tokens, &t.text) {
                    analyze_closure(tokens, entry, def, out);
                }
            }
        }
        arg_start = false;
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct(",") && depth == 0 {
            arg_start = true;
        }
        j += 1;
    }
}

/// If a closure literal starts at `i` (`|…|`, `||`, or `move` + either),
/// returns the index just past its body.
fn closure_at(tokens: &[Token], i: usize) -> Option<usize> {
    let mut k = i;
    if tokens.get(k).is_some_and(|t| t.is_ident("move")) {
        k += 1;
    }
    let t = tokens.get(k)?;
    if !(t.is_punct("|") || t.is_punct("||")) {
        return None;
    }
    let (_, _, past) = closure_extent(tokens, i)?;
    Some(past)
}

/// Splits a closure literal starting at `i` into parameter and body
/// token ranges; returns `(params, body, past_end)`.
#[allow(clippy::type_complexity)]
fn closure_extent(
    tokens: &[Token],
    i: usize,
) -> Option<((usize, usize), (usize, usize), usize)> {
    let mut k = i;
    if tokens.get(k).is_some_and(|t| t.is_ident("move")) {
        k += 1;
    }
    let params;
    let mut b;
    if tokens.get(k)?.is_punct("||") {
        params = (k, k);
        b = k + 1;
    } else if tokens.get(k)?.is_punct("|") {
        let mut k2 = k + 1;
        while k2 < tokens.len() && !tokens[k2].is_punct("|") {
            k2 += 1;
        }
        params = (k + 1, k2.min(tokens.len()));
        b = k2 + 1;
    } else {
        return None;
    }
    // Skip an explicit return type: `|x| -> T { … }`.
    if tokens.get(b).is_some_and(|t| t.is_punct("->")) {
        while b < tokens.len() && !tokens[b].is_punct("{") {
            b += 1;
        }
    }
    if tokens.get(b).is_some_and(|t| t.is_punct("{")) {
        let close = matching(tokens, b, "{", "}");
        return Some((params, (b + 1, close), close + 1));
    }
    // Expression body: runs to the `,` or closing bracket of the
    // enclosing argument list.
    let mut depth = 0i32;
    let mut j = b;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if t.is_punct(",") && depth == 0 {
            break;
        }
        j += 1;
    }
    Some((params, (b, j), j))
}

/// Finds `let [mut] NAME = [move] |…|` in the file; returns the index
/// of the closure literal (the `move` or pipe token).
fn find_let_closure(tokens: &[Token], name: &str) -> Option<usize> {
    for (j, t) in tokens.iter().enumerate() {
        if !t.is_ident("let") {
            continue;
        }
        let mut k = j + 1;
        if tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        if !tokens.get(k).is_some_and(|t| t.is_ident(name)) {
            continue;
        }
        k += 1;
        // Skip a `: Type` annotation up to the `=`.
        while k < tokens.len() && !tokens[k].is_punct("=") && !tokens[k].is_punct(";") {
            k += 1;
        }
        if !tokens.get(k).is_some_and(|t| t.is_punct("=")) {
            continue;
        }
        k += 1;
        let start = k;
        if tokens.get(k).is_some_and(|t| t.is_ident("move")) {
            k += 1;
        }
        if tokens
            .get(k)
            .is_some_and(|t| t.is_punct("|") || t.is_punct("||"))
        {
            return Some(start);
        }
    }
    None
}

/// Collects the identifiers a closure body binds locally: parameters,
/// `let` patterns, `for` loop variables, and nested-closure parameters.
fn local_bindings(tokens: &[Token], params: (usize, usize), body: (usize, usize)) -> BTreeSet<String> {
    let mut locals: BTreeSet<String> = BTreeSet::new();
    for t in &tokens[params.0..params.1] {
        if t.kind == TokKind::Ident {
            locals.insert(t.text.clone());
        }
    }
    let mut j = body.0;
    while j < body.1 {
        let t = &tokens[j];
        if t.is_ident("let") {
            // Everything up to the `=` (or `;` for `let x;`) is pattern
            // or type position — over-approximating with every
            // identifier there only widens the local set.
            let mut k = j + 1;
            while k < body.1 && !tokens[k].is_punct("=") && !tokens[k].is_punct(";") {
                if tokens[k].kind == TokKind::Ident {
                    locals.insert(tokens[k].text.clone());
                }
                k += 1;
            }
            j = k;
            continue;
        }
        if t.is_ident("for") {
            let mut k = j + 1;
            while k < body.1 && !tokens[k].is_ident("in") {
                if tokens[k].kind == TokKind::Ident {
                    locals.insert(tokens[k].text.clone());
                }
                k += 1;
            }
            j = k;
            continue;
        }
        if t.is_punct("|") {
            // Nested closure: its parameters are local to the body too.
            let mut k = j + 1;
            while k < body.1 && !tokens[k].is_punct("|") {
                if tokens[k].kind == TokKind::Ident {
                    locals.insert(tokens[k].text.clone());
                }
                k += 1;
            }
            j = k + 1;
            continue;
        }
        j += 1;
    }
    locals
}

/// Scans one closure for nondeterministic-capture patterns.
fn analyze_closure(tokens: &[Token], entry: &str, i: usize, out: &mut Vec<Violation>) {
    let Some((params, body, _)) = closure_extent(tokens, i) else {
        return;
    };
    let locals = local_bindings(tokens, params, body);
    let mut j = body.0;
    while j < body.1 {
        let t = &tokens[j];
        if t.is_punct("&") && tokens.get(j + 1).is_some_and(|n| n.is_ident("mut")) {
            let mut k = j + 2;
            while k < body.1 && tokens[k].is_punct("*") {
                k += 1;
            }
            if let Some(target) = tokens.get(k).filter(|t| t.kind == TokKind::Ident) {
                let captured = target.text == "self"
                    || (target
                        .text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_')
                        && !locals.contains(&target.text));
                if captured {
                    out.push(violation(
                        Lint::NondetCapture,
                        t,
                        format!(
                            "closure passed to `{entry}` takes `&mut {}` captured from the enclosing scope",
                            target.text
                        ),
                        format!(
                            "make the binding worker-local (`let mut` inside the closure) or thread it through the pool/init state; {}",
                            suppress_hint(Lint::NondetCapture)
                        ),
                    ));
                }
            }
        } else if t.kind == TokKind::Ident && (t.text == "RefCell" || t.text == "Cell") {
            out.push(violation(
                Lint::NondetCapture,
                t,
                format!("`{}` interior mutability inside a parallel closure", t.text),
                format!(
                    "shared-cell writes race the fan-out order; return values and reduce after the join; {}",
                    suppress_hint(Lint::NondetCapture)
                ),
            ));
        } else if t.is_ident("borrow_mut") && j > 0 && tokens[j - 1].is_punct(".") {
            out.push(violation(
                Lint::NondetCapture,
                t,
                "`.borrow_mut()` inside a parallel closure".to_string(),
                format!(
                    "a shared RefCell borrow races (or panics) under the pool; return values and reduce after the join; {}",
                    suppress_hint(Lint::NondetCapture)
                ),
            ));
        } else if t.is_ident("Relaxed") && j > 0 && tokens[j - 1].is_punct("::") {
            out.push(violation(
                Lint::NondetCapture,
                t,
                "`Ordering::Relaxed` atomic access inside a parallel closure".to_string(),
                format!(
                    "relaxed atomics make observed interleavings run-dependent; accumulate per worker and combine deterministically; {}",
                    suppress_hint(Lint::NondetCapture)
                ),
            ));
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn w3(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mut out = Vec::new();
        check_w3(&lexed.tokens, &mut out);
        out
    }

    #[test]
    fn flags_mut_capture_of_outer_binding() {
        let src = "fn f() { let mut total = 0; par_map(4, n, |i| { total += compute(&mut total, i); }); }";
        let v = w3(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, Lint::NondetCapture);
        assert!(v[0].message.contains("&mut total"));
    }

    #[test]
    fn local_let_mut_is_exempt() {
        let src = "fn f() { par_map(4, n, |i| { let mut acc = Vec::new(); fill(&mut acc, i); acc }); }";
        assert!(w3(src).is_empty());
    }

    #[test]
    fn closure_params_are_exempt() {
        let src = "fn f() { par_map_with_pool(t, n, &mut pool, mk, init, |scratch, wprof, i| run(&mut *scratch, &mut wprof.timer, i)); }";
        assert!(w3(src).is_empty());
    }

    #[test]
    fn pool_argument_outside_closures_is_not_flagged() {
        let src = "fn f() { par_map_with_pool(t, n, &mut *pool, || S::new(), || (), |s, (), i| s.go(i)); }";
        assert!(w3(src).is_empty());
    }

    #[test]
    fn named_closure_argument_is_resolved() {
        let bad = "fn f() { let mut hits = 0; let work = |i: usize| { hits += bump(&mut hits); i }; par_map(4, n, work); }";
        assert_eq!(w3(bad).len(), 1);
        let good = "fn f() { let work = |i: usize| { let mut rng = seed(i); step(&mut rng) }; par_map(4, n, work); }";
        assert!(w3(good).is_empty());
    }

    #[test]
    fn interior_mutability_and_relaxed_are_flagged() {
        let v = w3("fn f() { par_map(4, n, |i| cell.borrow_mut().push(i)); }");
        assert_eq!(v.len(), 1);
        let v = w3("fn f() { par_map(4, n, |i| counter.fetch_add(1, Ordering::Relaxed)); }");
        assert_eq!(v.len(), 1);
        let v = w3("fn f() { par_map(4, n, |i| shared(RefCell::new(i))); }");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn mut_self_capture_is_flagged() {
        let v = w3("fn f(&mut self) { par_map(4, n, |i| self.apply(&mut self.state, i)); }");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn shared_borrows_are_fine() {
        assert!(w3("fn f() { par_map(4, n, |i| self.execute(&work[i])); }").is_empty());
    }
}
