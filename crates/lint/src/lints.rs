//! The tidy lints (D1–D5) and the per-file checking engine.
//!
//! Every lint operates on the flat token stream from `crate::lexer`,
//! with `#[cfg(test)]` / `#[test]` items filtered out first — the lints
//! guard *shipping* code; tests may unwrap and compare floats freely.

use crate::lexer::{lex, LexOutput, TokKind, Token};

/// The project lints, in ISSUE order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// D1: `HashMap`/`HashSet` in deterministic crates — iteration order
    /// varies run-to-run (and with the allocator), which is exactly the
    /// nondeterminism the engine's bit-identical contract forbids.
    UnorderedMap,
    /// D2: wall-clock or unseeded-randomness sources in algorithm
    /// crates (`Instant::now`, `SystemTime`, `thread_rng`, …).
    NondetSource,
    /// D3: `unwrap`/`expect`/`panic!`-family in library non-test code.
    PanicUnwrap,
    /// D4: `==`/`!=` against float literals or float constants in
    /// geometry/cost code.
    FloatEq,
    /// D5: a library crate root without `#![forbid(unsafe_code)]`.
    MissingForbidUnsafe,
    /// W1: cross-artifact contract drift — config fields without CLI
    /// flags or docs, wire commands missing from dispatch arms or the
    /// SERVING.md table, metric names the docs don't know about.
    ContractDrift,
    /// W2: a `pub` item no other crate references — dead API surface.
    DeadPub,
    /// W3: a closure passed to `flow3d_par::par_map`-family entry points
    /// that captures shared mutable state (`&mut`, `RefCell`, `Cell`,
    /// `Relaxed` atomics) — nondeterminism the differential harness can
    /// only catch dynamically.
    NondetCapture,
    /// A malformed or reason-less `flow3d-tidy:` suppression comment.
    BadSuppression,
    /// A suppression that matched no violation — stale allows rot.
    UnusedSuppression,
}

/// All suppressible lints, for `--list` and name validation.
pub const ALL_LINTS: &[Lint] = &[
    Lint::UnorderedMap,
    Lint::NondetSource,
    Lint::PanicUnwrap,
    Lint::FloatEq,
    Lint::MissingForbidUnsafe,
    Lint::ContractDrift,
    Lint::DeadPub,
    Lint::NondetCapture,
];

impl Lint {
    /// The short ISSUE-style id (`D1`…`D5`).
    pub fn id(self) -> &'static str {
        match self {
            Lint::UnorderedMap => "D1",
            Lint::NondetSource => "D2",
            Lint::PanicUnwrap => "D3",
            Lint::FloatEq => "D4",
            Lint::MissingForbidUnsafe => "D5",
            Lint::ContractDrift => "W1",
            Lint::DeadPub => "W2",
            Lint::NondetCapture => "W3",
            Lint::BadSuppression => "S1",
            Lint::UnusedSuppression => "S2",
        }
    }

    /// The name used in diagnostics and `allow(...)` lists.
    pub fn name(self) -> &'static str {
        match self {
            Lint::UnorderedMap => "unordered-map",
            Lint::NondetSource => "nondet-source",
            Lint::PanicUnwrap => "panic-unwrap",
            Lint::FloatEq => "float-eq",
            Lint::MissingForbidUnsafe => "missing-forbid-unsafe",
            Lint::ContractDrift => "contract-drift",
            Lint::DeadPub => "dead-pub",
            Lint::NondetCapture => "nondet-capture",
            Lint::BadSuppression => "bad-suppression",
            Lint::UnusedSuppression => "unused-suppression",
        }
    }

    /// Resolves an `allow(...)` name.
    pub fn from_name(name: &str) -> Option<Lint> {
        ALL_LINTS.iter().copied().find(|l| l.name() == name)
    }

    /// One-line rationale, shown by `--list`.
    pub fn rationale(self) -> &'static str {
        match self {
            Lint::UnorderedMap => {
                "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet or sorted Vec"
            }
            Lint::NondetSource => {
                "wall-clock and unseeded RNG make algorithm results irreproducible; keep timing in flow3d-obs"
            }
            Lint::PanicUnwrap => {
                "library code must surface failures as typed errors, not panics; document real invariants"
            }
            Lint::FloatEq => "exact float equality is representation-dependent; compare with a tolerance",
            Lint::MissingForbidUnsafe => "every library crate root must carry #![forbid(unsafe_code)]",
            Lint::ContractDrift => {
                "config knobs, wire commands, and metric names must agree across code, CLI, and docs"
            }
            Lint::DeadPub => {
                "a pub item no other crate references is dead API surface; demote it or allow() with a reason"
            }
            Lint::NondetCapture => {
                "parallel closures must not capture shared mutable state; results must not depend on fan-out order"
            }
            Lint::BadSuppression => "flow3d-tidy suppressions must name a known lint and give a reason",
            Lint::UnusedSuppression => "an allow() that suppresses nothing is stale and must be removed",
        }
    }
}

/// Which lints apply to one file.
#[derive(Debug, Clone, Copy, Default)]
pub struct FilePolicy {
    /// D1 `unordered-map`.
    pub d1: bool,
    /// D2 `nondet-source`.
    pub d2: bool,
    /// D3 `panic-unwrap`.
    pub d3: bool,
    /// D4 `float-eq`.
    pub d4: bool,
    /// D5 `missing-forbid-unsafe` (only meaningful with `crate_root`).
    pub d5: bool,
    /// W3 `nondet-capture` on `flow3d_par` closure arguments.
    pub w3: bool,
    /// `true` for a crate root (`src/lib.rs`) where D5 is checked.
    pub crate_root: bool,
}

impl FilePolicy {
    /// Everything on — used for fixtures and unknown future crates.
    pub fn strict() -> Self {
        FilePolicy {
            d1: true,
            d2: true,
            d3: true,
            d4: true,
            d5: true,
            w3: true,
            crate_root: false,
        }
    }
}

/// One lint finding in one file.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which lint fired.
    pub lint: Lint,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Length of the offending token(s), for the diagnostic caret.
    pub len: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: String,
}

pub(crate) fn violation(lint: Lint, tok: &Token, message: String, help: String) -> Violation {
    Violation {
        lint,
        line: tok.line,
        col: tok.col,
        len: tok.text.chars().count().max(1) as u32,
        message,
        help,
    }
}

pub(crate) fn suppress_hint(lint: Lint) -> String {
    format!(
        "or suppress with `// flow3d-tidy: allow({}) — <reason>`",
        lint.name()
    )
}

/// Drops tokens belonging to `#[cfg(test)]` / `#[test]` / `#[bench]`
/// items (attribute included) so the lints only see shipping code.
///
/// The skip is purely token-structural: after a test attribute, the next
/// item is consumed up to its closing `}` (brace-counted) or `;`,
/// whichever comes first at nesting depth zero. Intervening attributes
/// on the same item are consumed too.
pub(crate) fn strip_test_items(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && is_test_attr(tokens, i) {
            i = skip_attr(tokens, i);
            // Consume any further attributes attached to the same item.
            while i < tokens.len() && tokens[i].is_punct("#") {
                i = skip_attr(tokens, i);
            }
            i = skip_item(tokens, i);
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// `true` if the attribute starting at `tokens[i] == '#'` marks a
/// test-only item: `#[test]`, `#[bench]`, or `#[cfg(... test ...)]`
/// (without a `not`). `#[cfg_attr(test, …)]` does NOT count — the item
/// it decorates still ships.
fn is_test_attr(tokens: &[Token], i: usize) -> bool {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct("!")) {
        j += 1; // inner attribute form
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct("[")) {
        return false;
    }
    let mut idents: Vec<&str> = Vec::new();
    let mut depth = 0i32;
    for tok in &tokens[j..] {
        if tok.is_punct("[") {
            depth += 1;
        } else if tok.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if tok.kind == TokKind::Ident {
            idents.push(tok.text.as_str());
        }
    }
    match idents.first() {
        Some(&"test") | Some(&"bench") if idents.len() == 1 => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    }
}

/// `true` if the file opens with an inner `#![cfg(test)]`-style
/// attribute, gating everything in it to test builds.
pub(crate) fn file_gated_to_tests(tokens: &[Token]) -> bool {
    let mut i = 0usize;
    while tokens.get(i).is_some_and(|t| t.is_punct("#"))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("!"))
    {
        if is_test_attr(tokens, i) {
            return true;
        }
        i = skip_attr(tokens, i);
    }
    false
}

/// Skips one `#[...]` attribute; returns the index after its `]`.
pub(crate) fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct("!")) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct("[")) {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        if tokens[j].is_punct("[") {
            depth += 1;
        } else if tokens[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Skips one item starting at `i`: up to the matching `}` of its first
/// top-level brace, or past the first top-level `;`.
fn skip_item(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    let mut depth = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if t.is_punct(";") && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    tokens.len()
}

/// Checks one file's source against `policy`; returns the surviving
/// violations (suppressions already applied, suppression problems
/// reported as violations themselves).
pub fn check_file(src: &str, policy: &FilePolicy) -> Vec<Violation> {
    let (raw, lexed) = check_file_raw(src, policy);
    apply_suppressions(raw, &lexed)
}

/// [`check_file`] without the suppression pass: returns the raw per-file
/// violations plus the lex output, so workspace-level lints (W1/W2) can
/// add their findings before suppressions are applied once for the file.
pub(crate) fn check_file_raw(src: &str, policy: &FilePolicy) -> (Vec<Violation>, LexOutput) {
    let lexed = lex(src);
    let mut raw: Vec<Violation> = Vec::new();

    // A `#![cfg(test)]` inner attribute gates the entire file.
    let tokens = if file_gated_to_tests(&lexed.tokens) {
        Vec::new()
    } else {
        strip_test_items(&lexed.tokens)
    };

    check_d1(&tokens, policy, &mut raw);
    check_d2(&tokens, policy, &mut raw);
    check_d3(&tokens, policy, &mut raw);
    check_d4(&tokens, policy, &mut raw);
    check_d5(&lexed.tokens, policy, &mut raw);
    if policy.w3 {
        crate::capture::check_w3(&tokens, &mut raw);
    }

    (raw, lexed)
}

fn check_d1(tokens: &[Token], policy: &FilePolicy, out: &mut Vec<Violation>) {
    if !policy.d1 {
        return;
    }
    for tok in tokens {
        if tok.kind == TokKind::Ident && (tok.text == "HashMap" || tok.text == "HashSet") {
            let ordered = if tok.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(violation(
                Lint::UnorderedMap,
                tok,
                format!("`{}` has nondeterministic iteration order", tok.text),
                format!(
                    "use `{ordered}` or a sorted `Vec`; {}",
                    suppress_hint(Lint::UnorderedMap)
                ),
            ));
        }
    }
}

fn check_d2(tokens: &[Token], policy: &FilePolicy, out: &mut Vec<Violation>) {
    if !policy.d2 {
        return;
    }
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let hit = match tok.text.as_str() {
            "SystemTime" | "thread_rng" | "from_entropy" => true,
            "Instant" => {
                tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
                    && tokens.get(i + 2).is_some_and(|t| t.is_ident("now"))
            }
            "random" => i >= 2 && tokens[i - 1].is_punct("::") && tokens[i - 2].is_ident("rand"),
            _ => false,
        };
        if hit {
            out.push(violation(
                Lint::NondetSource,
                tok,
                format!("`{}` is a nondeterministic source in algorithm code", tok.text),
                format!(
                    "thread timing through `flow3d_obs::Profile` hooks and randomness through a seeded RNG; {}",
                    suppress_hint(Lint::NondetSource)
                ),
            ));
        }
    }
}

fn check_d3(tokens: &[Token], policy: &FilePolicy, out: &mut Vec<Violation>) {
    if !policy.d3 {
        return;
    }
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && tokens[i - 1].is_punct(".");
        let next_paren = tokens.get(i + 1).is_some_and(|t| t.is_punct("("));
        let next_bang = tokens.get(i + 1).is_some_and(|t| t.is_punct("!"));
        let (hit, what) = match tok.text.as_str() {
            "unwrap" | "expect" if prev_dot && next_paren => (true, format!(".{}()", tok.text)),
            "panic" | "unreachable" | "todo" | "unimplemented" if next_bang => {
                (true, format!("{}!", tok.text))
            }
            _ => (false, String::new()),
        };
        if hit {
            out.push(violation(
                Lint::PanicUnwrap,
                tok,
                format!("`{what}` in library non-test code"),
                format!(
                    "return a typed error (`Flow3dError`/crate error enum) instead; for a documented invariant, suppress with `// flow3d-tidy: allow({}) — <reason>`",
                    Lint::PanicUnwrap.name()
                ),
            ));
        }
    }
}

fn check_d4(tokens: &[Token], policy: &FilePolicy, out: &mut Vec<Violation>) {
    if !policy.d4 {
        return;
    }
    const FLOAT_CONSTS: &[&str] = &["INFINITY", "NEG_INFINITY", "NAN", "EPSILON"];
    for (i, tok) in tokens.iter().enumerate() {
        if !(tok.is_punct("==") || tok.is_punct("!=")) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
        let next = tokens.get(i + 1);
        let float_side = prev.is_some_and(|t| t.kind == TokKind::Float)
            || next.is_some_and(|t| t.kind == TokKind::Float)
            || prev.is_some_and(|t| {
                t.kind == TokKind::Ident && FLOAT_CONSTS.contains(&t.text.as_str())
            })
            || (next.is_some_and(|t| t.is_ident("f32") || t.is_ident("f64"))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct("::")));
        if float_side {
            out.push(violation(
                Lint::FloatEq,
                tok,
                format!("float `{}` comparison in geometry/cost code", tok.text),
                format!(
                    "compare with an explicit tolerance or restructure the predicate; {}",
                    suppress_hint(Lint::FloatEq)
                ),
            ));
        }
    }
}

fn check_d5(all_tokens: &[Token], policy: &FilePolicy, out: &mut Vec<Violation>) {
    if !(policy.d5 && policy.crate_root) {
        return;
    }
    let found = all_tokens.windows(8).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("forbid")
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(")")
            && w[7].is_punct("]")
    });
    if !found {
        out.push(Violation {
            lint: Lint::MissingForbidUnsafe,
            line: 1,
            col: 1,
            len: 1,
            message: "library crate root lacks `#![forbid(unsafe_code)]`".to_string(),
            help: "add `#![forbid(unsafe_code)]` at the top of the crate root (auto-fixable with --fix)"
                .to_string(),
        });
    }
}

/// The source line the `#![forbid(unsafe_code)]` auto-fix inserts.
pub(crate) const FORBID_UNSAFE_LINE: &str = "#![forbid(unsafe_code)]";

/// The D5 mechanical rewrite: prepends `#![forbid(unsafe_code)]` to a
/// crate root that lacks it. Returns `None` when the file already
/// carries the attribute as a line of its own — a doc comment that
/// merely *mentions* the attribute must not defuse the fix.
pub(crate) fn fix_missing_forbid(src: &str) -> Option<String> {
    if src
        .lines()
        .any(|l| l.trim_start().starts_with(FORBID_UNSAFE_LINE))
    {
        return None;
    }
    Some(format!("{FORBID_UNSAFE_LINE}\n{src}"))
}

/// Applies suppression comments: a `// flow3d-tidy: allow(name) — reason`
/// covers matching violations on its own line and the next line.
/// Reason-less or malformed suppressions, unknown lint names, and allows
/// that match nothing become violations themselves.
pub(crate) fn apply_suppressions(raw: Vec<Violation>, lexed: &LexOutput) -> Vec<Violation> {
    let mut used = vec![false; lexed.suppressions.len()];
    let mut out: Vec<Violation> = Vec::new();

    for v in raw {
        let mut suppressed = false;
        for (si, s) in lexed.suppressions.iter().enumerate() {
            if !(s.line == v.line || s.line + 1 == v.line) {
                continue;
            }
            if s.lints.iter().any(|n| n == v.lint.name()) {
                used[si] = true;
                if s.has_reason {
                    suppressed = true;
                }
                // A reason-less allow does NOT suppress: the violation
                // stays and the bad suppression is reported below.
            }
        }
        if !suppressed {
            out.push(v);
        }
    }

    for (si, s) in lexed.suppressions.iter().enumerate() {
        if !s.has_reason {
            out.push(Violation {
                lint: Lint::BadSuppression,
                line: s.line,
                col: s.col,
                len: 1,
                message: "suppression without a reason".to_string(),
                help: "write `// flow3d-tidy: allow(<lint>) — <why this is sound>`".to_string(),
            });
        }
        for name in &s.lints {
            if Lint::from_name(name).is_none() {
                out.push(Violation {
                    lint: Lint::BadSuppression,
                    line: s.line,
                    col: s.col,
                    len: 1,
                    message: format!("unknown lint `{name}` in allow()"),
                    help: format!(
                        "known lints: {}",
                        ALL_LINTS
                            .iter()
                            .map(|l| l.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
        if s.has_reason && !used[si] && s.lints.iter().all(|n| Lint::from_name(n).is_some()) {
            out.push(Violation {
                lint: Lint::UnusedSuppression,
                line: s.line,
                col: s.col,
                len: 1,
                message: "suppression matches no violation".to_string(),
                help: "remove the stale `flow3d-tidy: allow(...)` comment".to_string(),
            });
        }
    }

    for m in &lexed.malformed {
        out.push(Violation {
            lint: Lint::BadSuppression,
            line: m.line,
            col: m.col,
            len: 1,
            message: format!("malformed flow3d-tidy comment: {}", m.why),
            help: "write `// flow3d-tidy: allow(<lint>) — <reason>`".to_string(),
        });
    }

    out.sort_by_key(|v| (v.line, v.col, v.lint));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(src: &str) -> Vec<Violation> {
        check_file(src, &FilePolicy::strict())
    }

    #[test]
    fn d1_flags_hashmap_and_hashset() {
        let v = strict(
            "use std::collections::HashMap;\nfn f() { let s: HashSet<u32> = Default::default(); }",
        );
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.lint == Lint::UnorderedMap));
    }

    #[test]
    fn d2_flags_instant_now_but_not_bare_instant() {
        let v = strict("fn f() { let t = Instant::now(); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, Lint::NondetSource);
        assert!(strict("fn f(t: Instant) -> Instant { t }").is_empty());
    }

    #[test]
    fn d3_flags_unwrap_expect_and_panics() {
        let v = strict("fn f(x: Option<u32>) -> u32 { x.unwrap() + x.expect(\"y\") }");
        assert_eq!(v.len(), 2);
        let v = strict("fn f() { panic!(\"boom\"); }");
        assert_eq!(v.len(), 1);
        // unwrap_or / unwrap_or_else are fine.
        assert!(strict("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }").is_empty());
        // `expect` not in method position is fine.
        assert!(strict("fn expect(x: u32) -> u32 { x }").is_empty());
    }

    #[test]
    fn d4_flags_float_literal_comparisons() {
        assert_eq!(strict("fn f(x: f64) -> bool { x == 0.0 }").len(), 1);
        assert_eq!(strict("fn f(x: f64) -> bool { 1.5 != x }").len(), 1);
        assert_eq!(
            strict("fn f(x: f64) -> bool { x == f64::INFINITY }").len(),
            1
        );
        assert!(strict("fn f(x: i64) -> bool { x == 0 }").is_empty());
    }

    #[test]
    fn d5_checks_crate_roots_only() {
        let mut p = FilePolicy::strict();
        p.crate_root = true;
        let v = check_file("pub fn f() {}", &p);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, Lint::MissingForbidUnsafe);
        assert!(check_file("#![forbid(unsafe_code)]\npub fn f() {}", &p).is_empty());
        assert!(strict("pub fn f() {}").is_empty());
    }

    #[test]
    fn d5_fix_inserts_attribute() {
        let fixed = fix_missing_forbid("//! Docs.\npub fn f() {}").expect("needs fix");
        assert!(fixed.starts_with("#![forbid(unsafe_code)]\n"));
        assert!(fix_missing_forbid(&fixed).is_none());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(strict(src).is_empty());
        // …but the same call outside the test mod fires.
        let src = "pub fn f() { None::<u32>.unwrap(); }";
        assert_eq!(strict(src).len(), 1);
    }

    #[test]
    fn code_after_test_mod_is_still_checked() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\npub fn g(y: Option<u32>) -> u32 { y.unwrap() }\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // flow3d-tidy: allow(panic-unwrap) — checked non-empty above\n    x.unwrap()\n}\n";
        assert!(strict(src).is_empty());
        // Same-line form.
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // flow3d-tidy: allow(panic-unwrap) — invariant\n";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn reasonless_suppression_keeps_violation_and_reports_itself() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // flow3d-tidy: allow(panic-unwrap)\n    x.unwrap()\n}\n";
        let v = strict(src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|v| v.lint == Lint::PanicUnwrap));
        assert!(v.iter().any(|v| v.lint == Lint::BadSuppression));
    }

    #[test]
    fn unused_suppression_is_reported() {
        let src = "// flow3d-tidy: allow(panic-unwrap) — but nothing here panics\nfn f() {}\n";
        let v = strict(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, Lint::UnusedSuppression);
    }

    #[test]
    fn unknown_lint_name_is_reported() {
        let src = "// flow3d-tidy: allow(no-such-lint) — whatever\nfn f() {}\n";
        let v = strict(src);
        assert!(v.iter().any(|v| v.lint == Lint::BadSuppression));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src =
            "fn f() -> &'static str { \"HashMap Instant::now() .unwrap() panic!\" } // HashMap\n";
        assert!(strict(src).is_empty());
    }
}
