#![forbid(unsafe_code)]
//! `flow3d-lint` — standalone entry point for the flow3d-tidy pass.
//!
//! ```text
//! cargo run -p flow3d-lint                # human diagnostics, exit 1 on violations
//! cargo run -p flow3d-lint -- --json      # machine-readable report on stdout
//! cargo run -p flow3d-lint -- --fix       # apply mechanical rewrites (D5), then re-check
//! cargo run -p flow3d-lint -- --list      # lint table
//! cargo run -p flow3d-lint -- --root DIR  # lint a different workspace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flow3d_lint_run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("flow3d-tidy: {msg}");
            ExitCode::from(2)
        }
    }
}

fn flow3d_lint_run(args: &[String]) -> Result<bool, String> {
    let mut json = false;
    let mut fix = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--fix" => fix = true,
            "--list" => {
                print_lint_table();
                return Ok(true);
            }
            "--root" => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or_else(|| "--root needs a directory".to_string())?;
                root_arg = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!(
                    "flow3d-tidy: determinism & panic-safety lints\n\n\
                     usage: flow3d-lint [--json] [--fix] [--list] [--root DIR]"
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
        i += 1;
    }

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            flow3d_lint::find_workspace_root(&cwd)
                .ok_or_else(|| "no workspace root found above the current directory".to_string())?
        }
    };

    let report = flow3d_lint::run(&root, fix).map_err(|e| format!("io error: {e}"))?;

    if json {
        print!(
            "{}",
            flow3d_lint::render_json(
                &report.violations,
                report.files_checked,
                &report.fixed,
                (report.cache_hits, report.cache_total),
            )
        );
    } else {
        for fv in &report.violations {
            eprintln!("{}", flow3d_lint::render_human(fv));
        }
        for fixed in &report.fixed {
            eprintln!("fixed: {fixed}");
        }
        eprintln!(
            "flow3d-tidy: {} file(s) checked ({}/{} cache hits), {} violation(s){}",
            report.files_checked,
            report.cache_hits,
            report.cache_total,
            report.violations.len(),
            if report.fixed.is_empty() {
                String::new()
            } else {
                format!(", {} file(s) fixed", report.fixed.len())
            }
        );
    }
    Ok(report.clean())
}

fn print_lint_table() {
    println!("{:<4} {:<24} rationale", "id", "name");
    for lint in flow3d_lint::ALL_LINTS {
        println!("{:<4} {:<24} {}", lint.id(), lint.name(), lint.rationale());
    }
    println!(
        "\nsuppression: // flow3d-tidy: allow(<name>) — <reason>   (reason required; \
         covers the same line and the next)"
    );
}
