//! Diagnostic rendering: rustc-style human output and a `--json`
//! machine-readable report (hand-rolled writer — the workspace builds
//! without serde).

use crate::lints::Violation;

/// A violation bound to the file it was found in.
#[derive(Debug, Clone)]
pub struct FileViolation {
    /// Workspace-relative path, `/`-separated on every platform.
    pub path: String,
    /// The source line the violation sits on (for the snippet).
    pub snippet: String,
    /// The finding itself.
    pub v: Violation,
}

/// Renders one diagnostic in the familiar rustc layout:
///
/// ```text
/// error[D3/panic-unwrap]: `.unwrap()` in library non-test code
///   --> crates/core/src/driver.rs:253:47
///    |
/// 253 |             let pa = candidates[a].0.as_ref().unwrap();
///     |                                               ^^^^^^
///    = help: return a typed error …
/// ```
pub fn render_human(fv: &FileViolation) -> String {
    let v = &fv.v;
    let line_no = v.line.to_string();
    let gutter = " ".repeat(line_no.len());
    let mut out = String::new();
    out.push_str(&format!(
        "error[{}/{}]: {}\n",
        v.lint.id(),
        v.lint.name(),
        v.message
    ));
    out.push_str(&format!("{gutter}--> {}:{}:{}\n", fv.path, v.line, v.col));
    out.push_str(&format!("{gutter} |\n"));
    out.push_str(&format!("{line_no} | {}\n", fv.snippet));
    let pad = " ".repeat(v.col.saturating_sub(1) as usize);
    let carets = "^".repeat(v.len.max(1) as usize);
    out.push_str(&format!("{gutter} | {pad}{carets}\n"));
    out.push_str(&format!("{gutter} = help: {}\n", v.help));
    out
}

/// Escapes a string for inclusion in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a full run to the `--json` report consumed by CI.
///
/// `cache` is the symbol-graph cache outcome as `(hits, total)`; a
/// fully warm repeat run reports `hits == total`.
pub fn render_json(
    violations: &[FileViolation],
    files_checked: usize,
    fixed: &[String],
    cache: (usize, usize),
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"flow3d-tidy\",\n");
    out.push_str("  \"version\": 2,\n");
    out.push_str(&format!("  \"files_checked\": {files_checked},\n"));
    out.push_str(&format!("  \"cache_hits\": {},\n", cache.0));
    out.push_str(&format!("  \"cache_total\": {},\n", cache.1));
    out.push_str(&format!(
        "  \"clean\": {},\n",
        if violations.is_empty() {
            "true"
        } else {
            "false"
        }
    ));
    out.push_str("  \"fixed\": [");
    for (i, f) in fixed.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", json_escape(f)));
    }
    out.push_str("],\n");
    out.push_str("  \"violations\": [\n");
    for (i, fv) in violations.iter().enumerate() {
        let v = &fv.v;
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"name\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\", \"help\": \"{}\", \"snippet\": \"{}\"}}{}\n",
            v.lint.id(),
            v.lint.name(),
            json_escape(&fv.path),
            v.line,
            v.col,
            json_escape(&v.message),
            json_escape(&v.help),
            json_escape(fv.snippet.trim_end()),
            if i + 1 < violations.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Lint;

    fn sample() -> FileViolation {
        FileViolation {
            path: "crates/x/src/lib.rs".to_string(),
            snippet: "    x.unwrap();".to_string(),
            v: Violation {
                lint: Lint::PanicUnwrap,
                line: 7,
                col: 7,
                len: 6,
                message: "`.unwrap()` in library non-test code".to_string(),
                help: "return a typed error".to_string(),
            },
        }
    }

    #[test]
    fn human_render_shape() {
        let text = render_human(&sample());
        assert!(text.starts_with("error[D3/panic-unwrap]:"));
        assert!(text.contains("--> crates/x/src/lib.rs:7:7"));
        assert!(text.contains("7 |     x.unwrap();"));
        assert!(text.contains("^^^^^^"));
        assert!(text.contains("= help:"));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_report_is_parseable_shape() {
        let json = render_json(&[sample()], 3, &["crates/x/src/lib.rs".to_string()], (2, 3));
        assert!(json.contains("\"files_checked\": 3"));
        assert!(json.contains("\"cache_hits\": 2"));
        assert!(json.contains("\"cache_total\": 3"));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"lint\": \"D3\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
