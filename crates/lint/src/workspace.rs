//! Workspace discovery and the tidy run driver: which files to check,
//! which lints apply to each crate, the symbol-graph cache, and the
//! `--fix` rewrites.

use crate::diag::FileViolation;
use crate::lexer::LexOutput;
use crate::lints::{apply_suppressions, fix_missing_forbid, FilePolicy, Lint, Violation};
use crate::symbols::{self, FileFacts};
use crate::{contracts, deadpub};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The result of one tidy run over the workspace.
#[derive(Debug, Default)]
// flow3d-tidy: allow(dead-pub) — returned by the re-exported `run` entry point; drivers consume it field-wise
pub struct TidyReport {
    /// Surviving violations, in (path, line, col) order.
    pub violations: Vec<FileViolation>,
    /// How many `.rs` files were lexed and checked.
    pub files_checked: usize,
    /// Paths rewritten by `--fix`.
    pub fixed: Vec<String>,
    /// Files (checked + reference-only) served from the symbol cache.
    pub cache_hits: usize,
    /// Files that participated in the symbol cache this run.
    pub cache_total: usize,
}

impl TidyReport {
    /// `true` when the tree is tidy.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-crate lint switches. Derived from the crate's role; unknown
/// (future) crates default to the strictest profile so new code is
/// gated from day one.
fn crate_policy(dir_name: &str) -> FilePolicy {
    let mut p = FilePolicy {
        d1: true,
        d2: true,
        d3: true,
        d4: false,
        d5: true,
        w3: true,
        crate_root: false,
    };
    // D4 (float-eq) targets geometry/cost arithmetic, where an exact
    // comparison is almost always a latent tolerance bug.
    if matches!(
        dir_name,
        "geom" | "core" | "metrics" | "baselines" | "gp" | "mcmf" | "gen" | "db"
    ) {
        p.d4 = true;
    }
    match dir_name {
        // Profiling is obs's whole purpose: wall-clock is allowed there
        // (and only there) — results never flow back into algorithms.
        "obs" => p.d2 = false,
        // Binaries and the bench harness time things and may exit on
        // bad input; the determinism lints still apply to them.
        "bench" | "cli" => {
            p.d2 = false;
            p.d3 = false;
        }
        // The server times request latency (operational telemetry that
        // never feeds an algorithm), so D2 stays off; D3 (panic-unwrap)
        // applies in full — the serve layer surfaces failures as typed
        // wire errors, with reasoned allows at documented invariants.
        "serve" => p.d2 = false,
        _ => {}
    }
    // Unknown crates: everything on, including float-eq.
    if !matches!(
        dir_name,
        "flow3d"
            | "geom"
            | "db"
            | "mcmf"
            | "io"
            | "gen"
            | "gp"
            | "metrics"
            | "obs"
            | "par"
            | "core"
            | "baselines"
            | "viz"
            | "cli"
            | "bench"
            | "lint"
            | "serve"
    ) {
        p.d4 = true;
    }
    p
}

/// One file scheduled for checking.
#[derive(Debug)]
struct FileTask {
    path: PathBuf,
    rel: String,
    policy: FilePolicy,
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Collects every file to lint under `root`, in deterministic order:
/// the facade crate's `src/`, then each `crates/<name>/src/` sorted by
/// name. `vendor/`, `target/`, per-crate `tests/`/`benches/`/
/// `examples/`, and fixture directories never participate.
fn discover(root: &Path) -> io::Result<Vec<FileTask>> {
    let mut tasks = Vec::new();
    // The facade crate.
    collect_src(root, &root.join("src"), crate_policy("flow3d"), &mut tasks)?;
    // Workspace member crates.
    let crates_dir = root.join("crates");
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    for name in names {
        let src = crates_dir.join(&name).join("src");
        collect_src(root, &src, crate_policy(&name), &mut tasks)?;
    }
    Ok(tasks)
}

/// Recursively collects `.rs` files under one crate's `src/`, marking
/// `src/lib.rs` as the crate root for D5.
fn collect_src(
    root: &Path,
    src: &Path,
    policy: FilePolicy,
    tasks: &mut Vec<FileTask>,
) -> io::Result<()> {
    if !src.is_dir() {
        return Ok(());
    }
    let mut stack = vec![src.to_path_buf()];
    let mut files: Vec<PathBuf> = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if entry.file_type()?.is_dir() {
                // `src/` should not contain test trees, but be explicit.
                let name = entry.file_name();
                if name != "fixtures" && name != "tests" {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let mut policy = policy;
        policy.crate_root = path == src.join("lib.rs");
        tasks.push(FileTask { path, rel, policy });
    }
    Ok(())
}

/// Collects reference-only `.rs` files — integration tests, benches,
/// and a root-level `tests/` tree. They are never linted, but their
/// identifier references feed the W2 dead-pub liveness check (an
/// integration test consumes the library exactly like an external
/// crate would).
fn discover_refs(root: &Path) -> io::Result<Vec<(PathBuf, String)>> {
    let mut dirs: Vec<PathBuf> = vec![root.join("tests"), root.join("benches")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<String> = Vec::new();
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        for name in names {
            dirs.push(crates_dir.join(&name).join("tests"));
            dirs.push(crates_dir.join(&name).join("benches"));
        }
    }
    let mut files: Vec<PathBuf> = Vec::new();
    for dir in dirs {
        if !dir.is_dir() {
            continue;
        }
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            for entry in fs::read_dir(&d)? {
                let entry = entry?;
                let path = entry.path();
                if entry.file_type()?.is_dir() {
                    if entry.file_name() != "fixtures" {
                        stack.push(path);
                    }
                } else if path.extension().is_some_and(|e| e == "rs") {
                    files.push(path);
                }
            }
        }
    }
    files.sort();
    Ok(files
        .into_iter()
        .map(|path| {
            let rel = rel_path(root, &path);
            (path, rel)
        })
        .collect())
}

/// Workspace-relative path with `/` separators.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Location of the symbol-graph cache for the workspace at `root`.
fn cache_path(root: &Path) -> PathBuf {
    root.join("target").join("flow3d-tidy-cache.tsv")
}

/// The doc files the W1 contract lint reads alongside the source.
const CONTRACT_DOCS: &[&str] = &["README.md", "EXPERIMENTS.md", "SERVING.md"];

/// Runs the tidy pass over the workspace at `root`. With `fix`, applies
/// the mechanical D5 rewrite in place and re-checks the patched files so
/// fixed violations do not appear in the report.
///
/// Per-file lexing and fact extraction are served from the content-hash
/// cache under `target/` when the file (and its policy) are unchanged;
/// the workspace-level lints (W1/W2) always re-run over the facts — they
/// are cross-file by construction, so no single file's hash can witness
/// their inputs.
pub fn run(root: &Path, fix: bool) -> io::Result<TidyReport> {
    let mut report = TidyReport::default();
    let tasks = discover(root)?;
    let refs = discover_refs(root)?;
    let cache = symbols::load_cache(&cache_path(root));
    let mut facts: BTreeMap<String, FileFacts> = BTreeMap::new();
    let mut contents: BTreeMap<String, String> = BTreeMap::new();

    for task in &tasks {
        let mut src = fs::read_to_string(&task.path)?;
        report.files_checked += 1;
        report.cache_total += 1;
        let mut hash = symbols::policy_hash(&src, &task.policy);
        let mut f = match cache.get(&task.rel) {
            Some(cached) if cached.hash == hash => {
                report.cache_hits += 1;
                cached.clone()
            }
            _ => symbols::file_facts(&src, &task.policy, hash),
        };
        if fix && f.raw.iter().any(|v| v.lint == Lint::MissingForbidUnsafe) {
            if let Some(fixed) = fix_missing_forbid(&src) {
                fs::write(&task.path, &fixed)?;
                report.fixed.push(task.rel.clone());
                src = fixed;
                hash = symbols::policy_hash(&src, &task.policy);
                f = symbols::file_facts(&src, &task.policy, hash);
            }
        }
        contents.insert(task.rel.clone(), src);
        facts.insert(task.rel.clone(), f);
    }

    // Reference-only files: facts for the symbol graph, no lint pass.
    let ref_policy = FilePolicy::default();
    for (path, rel) in &refs {
        let src = fs::read_to_string(path)?;
        report.cache_total += 1;
        let hash = symbols::policy_hash(&src, &ref_policy);
        let f = match cache.get(rel) {
            Some(cached) if cached.hash == hash => {
                report.cache_hits += 1;
                cached.clone()
            }
            _ => symbols::file_facts(&src, &ref_policy, hash),
        };
        facts.insert(rel.clone(), f);
    }

    let mut docs: BTreeMap<String, String> = BTreeMap::new();
    for name in CONTRACT_DOCS {
        if let Ok(text) = fs::read_to_string(root.join(name)) {
            docs.insert((*name).to_string(), text);
        }
    }

    // Workspace-level lints over the assembled symbol graph.
    let mut extra: BTreeMap<String, Vec<Violation>> = BTreeMap::new();
    for (path, v) in contracts::check_w1(&facts, &docs)
        .into_iter()
        .chain(deadpub::check_w2(&facts))
    {
        extra.entry(path).or_default().push(v);
    }

    // Per-file suppression pass over combined (per-file + workspace)
    // findings, then snippet assembly.
    for task in &tasks {
        let f = &facts[&task.rel];
        let mut raw = f.raw.clone();
        if let Some(ws) = extra.remove(&task.rel) {
            raw.extend(ws);
        }
        let lexed = LexOutput {
            tokens: Vec::new(),
            suppressions: f.suppressions.clone(),
            malformed: f.malformed.clone(),
        };
        let violations = apply_suppressions(raw, &lexed);
        if violations.is_empty() {
            continue;
        }
        let src = &contents[&task.rel];
        let lines: Vec<&str> = src.lines().collect();
        for v in violations {
            let snippet = lines
                .get(v.line.saturating_sub(1) as usize)
                .map(|s| (*s).to_string())
                .unwrap_or_default();
            report.violations.push(FileViolation {
                path: task.rel.clone(),
                snippet,
                v,
            });
        }
    }

    // Doc-anchored findings (SERVING.md rows etc.) have no suppression
    // mechanism — they pass through, sorted per file.
    for (path, mut vs) in extra {
        vs.sort_by_key(|v| (v.line, v.col, v.lint));
        let lines: Vec<&str> = docs.get(&path).map(|d| d.lines().collect()).unwrap_or_default();
        for v in vs {
            let snippet = lines
                .get(v.line.saturating_sub(1) as usize)
                .map(|s| (*s).to_string())
                .unwrap_or_default();
            report.violations.push(FileViolation {
                path: path.clone(),
                snippet,
                v,
            });
        }
    }

    // Cache write failures are non-fatal: the next run just re-lexes.
    let _ = symbols::save_cache(&cache_path(root), &facts);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_profiles() {
        assert!(crate_policy("core").d4, "core compares costs");
        assert!(!crate_policy("obs").d2, "obs is the profiling layer");
        assert!(!crate_policy("cli").d3, "the binary may exit on bad input");
        assert!(crate_policy("cli").d1, "determinism applies everywhere");
        let serve = crate_policy("serve");
        assert!(!serve.d2, "the server times request latency");
        assert!(
            serve.d3,
            "panic-unwrap applies to serve: failures become typed wire errors"
        );
        assert!(
            serve.d1 && serve.d5 && serve.w3,
            "determinism, no-unsafe, and capture hygiene still apply"
        );
        let future = crate_policy("brand-new-crate");
        assert!(
            future.d1 && future.d2 && future.d3 && future.d4 && future.d5 && future.w3
        );
    }

    #[test]
    fn finds_the_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates").is_dir());
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn discovery_is_deterministic_and_excludes_vendor() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let a = discover(&root).expect("discover");
        let b = discover(&root).expect("discover");
        let rels = |ts: &[FileTask]| ts.iter().map(|t| t.rel.clone()).collect::<Vec<_>>();
        assert_eq!(rels(&a), rels(&b));
        assert!(a.iter().all(|t| !t.rel.starts_with("vendor/")));
        assert!(a.iter().all(|t| !t.rel.contains("/tests/")));
        assert!(a.iter().any(|t| t.rel == "crates/core/src/driver.rs"));
        assert!(a
            .iter()
            .any(|t| t.rel == "crates/core/src/lib.rs" && t.policy.crate_root));
        assert!(a
            .iter()
            .any(|t| t.rel == "crates/core/src/driver.rs" && !t.policy.crate_root));
    }
}
