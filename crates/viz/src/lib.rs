#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! SVG visualization for the 3D-Flow reproduction.
//!
//! Two chart kinds reproduce the paper's figures:
//!
//! * [`DisplacementPlot`] — Fig. 8: one die in plan view with macros,
//!   placed cells, displacement vectors, and cells arriving from the
//!   other die highlighted.
//! * [`BarChart`] — Fig. 7: grouped bars (ΔHPWL% per case per legalizer).
//!
//! [`heatmap_svg`] additionally renders the telemetry sidecars of
//! `flow3d-obs` (per-bin supply/demand/overflow/moves grids) as colored
//! plan-view grids.
//!
//! The output is self-contained SVG with no external assets.

use flow3d_db::{CellId, Design, DieId, LegalPlacement, Placement3d};
use flow3d_obs::Heatmap;
use std::fmt::Write as _;

/// Series colors shared by both chart kinds (color-blind-safe-ish).
const COLORS: [&str; 6] = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Grouped bar chart (Fig. 7: ΔHPWL% per benchmark per legalizer).
///
/// # Examples
///
/// ```
/// use flow3d_viz::BarChart;
/// let svg = BarChart::new("dHPWL (%)")
///     .group("case2", &[("tetris", 4.2), ("ours", 2.9)])
///     .group("case3", &[("tetris", 6.0), ("ours", 4.5)])
///     .to_svg();
/// assert!(svg.contains("<svg"));
/// assert!(svg.contains("case3"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    title: String,
    groups: Vec<(String, Vec<(String, f64)>)>,
}

impl BarChart {
    /// Starts a chart with a y-axis title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            groups: Vec::new(),
        }
    }

    /// Adds one group (benchmark case) of `(series, value)` bars.
    #[must_use]
    pub fn group(mut self, label: impl Into<String>, bars: &[(&str, f64)]) -> Self {
        self.groups.push((
            label.into(),
            bars.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        ));
        self
    }

    /// Renders the chart.
    pub fn to_svg(&self) -> String {
        let width = 760.0;
        let height = 360.0;
        let (ml, mr, mt, mb) = (60.0, 20.0, 30.0, 60.0);
        let plot_w = width - ml - mr;
        let plot_h = height - mt - mb;

        let max_v = self
            .groups
            .iter()
            .flat_map(|(_, bars)| bars.iter().map(|(_, v)| *v))
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let series: Vec<&str> = self
            .groups
            .first()
            .map(|(_, bars)| bars.iter().map(|(n, _)| n.as_str()).collect())
            .unwrap_or_default();

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{width}" height="{height}" fill="white"/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="14" y="{:.1}" font-size="12" transform="rotate(-90 14 {:.1})" text-anchor="middle">{}</text>"#,
            mt + plot_h / 2.0,
            mt + plot_h / 2.0,
            esc(&self.title)
        );
        // Y grid: 5 lines.
        for k in 0..=5 {
            let v = max_v * k as f64 / 5.0;
            let y = mt + plot_h * (1.0 - k as f64 / 5.0);
            let _ = write!(
                svg,
                r##"<line x1="{ml}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/><text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end">{v:.1}</text>"##,
                ml + plot_w,
                ml - 4.0,
                y + 3.0
            );
        }
        // Bars.
        let ng = self.groups.len().max(1) as f64;
        let group_w = plot_w / ng;
        for (gi, (label, bars)) in self.groups.iter().enumerate() {
            let gx = ml + group_w * gi as f64;
            let nb = bars.len().max(1) as f64;
            let bw = (group_w * 0.8) / nb;
            for (bi, (_, v)) in bars.iter().enumerate() {
                let bh = plot_h * (v / max_v).clamp(0.0, 1.0);
                let x = gx + group_w * 0.1 + bw * bi as f64;
                let y = mt + plot_h - bh;
                let color = COLORS[bi % COLORS.len()];
                let _ = write!(
                    svg,
                    r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{bh:.1}" fill="{color}"><title>{}: {v:.2}</title></rect>"#,
                    bw * 0.9,
                    esc(&bars[bi].0)
                );
            }
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="middle">{}</text>"#,
                gx + group_w / 2.0,
                mt + plot_h + 14.0,
                esc(label)
            );
        }
        // Legend.
        for (si, name) in series.iter().enumerate() {
            let x = ml + 90.0 * si as f64;
            let y = height - 18.0;
            let color = COLORS[si % COLORS.len()];
            let _ = write!(
                svg,
                r#"<rect x="{x:.1}" y="{:.1}" width="10" height="10" fill="{color}"/><text x="{:.1}" y="{y:.1}" font-size="10">{}</text>"#,
                y - 9.0,
                x + 14.0,
                esc(name)
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

/// Plan-view displacement plot of one die (Fig. 8): macros in gray, cells
/// as small rectangles, a line from each cell's global position to its
/// legal position, and cells that crossed dies highlighted in blue.
#[derive(Debug, Clone)]
pub struct DisplacementPlot<'a> {
    design: &'a Design,
    global: &'a Placement3d,
    legal: &'a LegalPlacement,
    die: DieId,
}

impl<'a> DisplacementPlot<'a> {
    /// Creates a plot of `die`.
    pub fn new(
        design: &'a Design,
        global: &'a Placement3d,
        legal: &'a LegalPlacement,
        die: DieId,
    ) -> Self {
        Self {
            design,
            global,
            legal,
            die,
        }
    }

    /// Renders the plot scaled to ~800 px wide.
    pub fn to_svg(&self) -> String {
        let outline = self.design.die(self.die).outline;
        let scale = 800.0 / outline.width().max(1) as f64;
        let w = outline.width() as f64 * scale;
        let h = outline.height() as f64 * scale;
        let px = |x: i64| (x - outline.xlo) as f64 * scale;
        // SVG y grows downward; flip so the plot reads like the paper.
        let py = |y: i64| h - (y - outline.ylo) as f64 * scale;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{w:.0}" height="{h:.0}" fill="white" stroke="black"/>"#
        );
        // Macros.
        for rect in self.design.macro_rects_on(self.die) {
            let _ = write!(
                svg,
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#bbbbbb"/>"##,
                px(rect.xlo),
                py(rect.yhi),
                rect.width() as f64 * scale,
                rect.height() as f64 * scale
            );
        }
        // Cells + displacement vectors.
        let num_dies = self.design.num_dies();
        for i in 0..self.design.num_cells() {
            let c = CellId::new(i);
            if self.legal.die(c) != self.die {
                continue;
            }
            let p = self.legal.pos(c);
            let cw = self.design.cell_width(c, self.die) as f64 * scale;
            let ch = self.design.cell_height(self.die) as f64 * scale;
            let from_other_die = self.global.nearest_die(c, num_dies) != self.die;
            let fill = if from_other_die { "#4477aa" } else { "#dd8866" };
            let _ = write!(
                svg,
                r#"<rect x="{:.1}" y="{:.1}" width="{:.2}" height="{:.2}" fill="{fill}" fill-opacity="0.8"/>"#,
                px(p.x),
                py(p.y) - ch,
                cw.max(0.5),
                ch.max(0.5)
            );
            let g = self.global.pos(c);
            let gx = (g.x - outline.xlo as f64) * scale;
            let gy = h - (g.y - outline.ylo as f64) * scale;
            let _ = write!(
                svg,
                r#"<line x1="{gx:.1}" y1="{gy:.1}" x2="{:.1}" y2="{:.1}" stroke="black" stroke-width="0.4" stroke-opacity="0.5"/>"#,
                px(p.x),
                py(p.y)
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_gen::GeneratorConfig;
    use flow3d_geom::Point;

    #[test]
    fn bar_chart_renders_all_groups_and_series() {
        let svg = BarChart::new("Δ HPWL (%)")
            .group("case2", &[("tetris", 4.0), ("abacus", 3.0), ("ours", 2.0)])
            .group("case3", &[("tetris", 5.0), ("abacus", 4.0), ("ours", 3.0)])
            .to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("case2") && svg.contains("case3"));
        assert!(svg.contains("tetris") && svg.contains("ours"));
        assert!(svg.matches("<rect").count() >= 7); // 6 bars + bg + legend
    }

    #[test]
    fn bar_chart_handles_empty_and_zero() {
        let svg = BarChart::new("x").to_svg();
        assert!(svg.contains("</svg>"));
        let svg = BarChart::new("x").group("a", &[("s", 0.0)]).to_svg();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn bar_chart_escapes_labels() {
        let svg = BarChart::new("a<b").group("c&d", &[("e>f", 1.0)]).to_svg();
        assert!(svg.contains("a&lt;b"));
        assert!(svg.contains("c&amp;d"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn displacement_plot_draws_cells_macros_and_vectors() {
        let case = GeneratorConfig::small_demo(8).generate().unwrap();
        let d = &case.design;
        let n = d.num_cells();
        let mut legal = LegalPlacement::new(n);
        // Synthetic legal-ish positions: row 0, spaced; half per die.
        for i in 0..n {
            let die = if i % 2 == 0 {
                DieId::BOTTOM
            } else {
                DieId::TOP
            };
            legal.place(CellId::new(i), Point::new((i as i64 * 7) % 500, 0), die);
        }
        let svg = DisplacementPlot::new(d, &case.natural, &legal, DieId::BOTTOM).to_svg();
        assert!(svg.contains("<line"), "vectors missing");
        assert!(svg.matches("<rect").count() > n / 4, "cells missing");
        if d.num_macros() > 0 && !d.macro_rects_on(DieId::BOTTOM).is_empty() {
            assert!(svg.contains("#bbbbbb"), "macros missing");
        }
    }
}

/// Displacement-distribution chart: one column per row-height bucket
/// (the data of `flow3d-metrics`'s `DisplacementHistogram`), rendered
/// with the same styling as [`BarChart`].
///
/// # Examples
///
/// ```
/// let svg = flow3d_viz::histogram_svg("cells", &[120, 40, 8, 2]);
/// assert!(svg.contains("<svg"));
/// assert!(svg.contains("3+"));
/// ```
pub fn histogram_svg(title: &str, counts: &[usize]) -> String {
    let mut chart = BarChart::new(title);
    for (k, &c) in counts.iter().enumerate() {
        let label = if k + 1 == counts.len() {
            format!("{k}+")
        } else {
            format!("{k}")
        };
        chart = chart.group(label, &[("cells", c as f64)]);
    }
    chart.to_svg()
}

/// Linear ramp between two RGB colors at `t` in `[0, 1]`.
fn lerp_rgb(a: (u8, u8, u8), b: (u8, u8, u8), t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    let ch = |x: u8, y: u8| (x as f64 + (y as f64 - x as f64) * t).round() as u8;
    format!(
        "#{:02x}{:02x}{:02x}",
        ch(a.0, b.0),
        ch(a.1, b.1),
        ch(a.2, b.2)
    )
}

/// Renders one telemetry [`Heatmap`] (a per-bin grid from a `flow3d-obs`
/// sidecar) as a plan-view colored grid.
///
/// Grid row 0 is the lowest placement row, so it is drawn at the bottom
/// — the picture reads like [`DisplacementPlot`]. `NaN` cells ("no bin
/// there") are light gray. Signed data (overflow) gets a diverging
/// blue–white–red ramp centered on zero; non-negative data a sequential
/// white–red ramp.
///
/// # Examples
///
/// ```
/// let mut h = flow3d_obs::Heatmap::new("flow_pass0/die0/overflow", 2, 3);
/// h.set(0, 0, -2.0);
/// h.set(1, 2, 5.0);
/// let svg = flow3d_viz::heatmap_svg(&h);
/// assert!(svg.contains("<svg"));
/// assert!(svg.contains("overflow"));
/// ```
pub fn heatmap_svg(map: &Heatmap) -> String {
    const NEG: (u8, u8, u8) = (0x44, 0x77, 0xaa);
    const MID: (u8, u8, u8) = (0xff, 0xff, 0xff);
    const POS: (u8, u8, u8) = (0xee, 0x66, 0x77);
    let cols = map.cols.max(1);
    let rows = map.rows.max(1);
    let cell = (800.0 / cols as f64).clamp(2.0, 24.0);
    let (mt, mb, ml) = (26.0, 18.0, 6.0);
    let w = ml + cell * cols as f64 + 6.0;
    let h = mt + cell * rows as f64 + mb;
    let range = map.finite_range();
    let color = |v: f64| -> String {
        if !v.is_finite() {
            return "#e5e5e5".to_string();
        }
        let Some((lo, hi)) = range else {
            return "#e5e5e5".to_string();
        };
        if lo < 0.0 {
            // Diverging, symmetric around zero so 0 is always white.
            let m = lo.abs().max(hi.abs()).max(1e-12);
            if v < 0.0 {
                lerp_rgb(MID, NEG, -v / m)
            } else {
                lerp_rgb(MID, POS, v / m)
            }
        } else {
            let span = (hi - lo).max(1e-12);
            lerp_rgb(MID, POS, (v - lo) / span)
        }
    };

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{w:.0}" height="{h:.0}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{ml}" y="16" font-size="12">{}</text>"#,
        esc(&map.name)
    );
    for r in 0..map.rows {
        // Flip vertically: row 0 at the bottom.
        let y = mt + cell * (rows - 1 - r) as f64;
        for c in 0..map.cols {
            let v = map.get(r, c);
            let x = ml + cell * c as f64;
            let _ = write!(
                svg,
                r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{:.1}" fill="{}"><title>row {r}, col {c}: {v}</title></rect>"#,
                cell.max(0.5),
                cell.max(0.5),
                color(v)
            );
        }
    }
    if let Some((lo, hi)) = range {
        let _ = write!(
            svg,
            r#"<text x="{ml}" y="{:.1}" font-size="10">min {lo:.3}   max {hi:.3}</text>"#,
            h - 5.0
        );
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod heatmap_tests {
    use super::*;

    #[test]
    fn heatmap_svg_renders_all_cells_and_range() {
        let mut h = Heatmap::new("flow_pass0/die0/overflow", 2, 3);
        h.set(0, 0, -2.0);
        h.set(0, 1, 0.0);
        h.set(1, 2, 4.0);
        let svg = heatmap_svg(&h);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        // 6 grid cells + background.
        assert_eq!(svg.matches("<rect").count(), 7);
        assert!(svg.contains("min -2.000"));
        assert!(svg.contains("max 4.000"));
        // NaN cells render gray; zero renders white on the diverging ramp.
        assert!(svg.contains("#e5e5e5"));
        assert!(svg.contains("#ffffff"));
    }

    #[test]
    fn heatmap_svg_handles_empty_and_unsigned_grids() {
        let svg = heatmap_svg(&Heatmap::new("blank", 1, 2));
        assert!(svg.ends_with("</svg>"));
        assert!(!svg.contains("min "));
        let mut h = Heatmap::new("moves", 1, 2);
        h.set(0, 0, 0.0);
        h.set(0, 1, 10.0);
        let svg = heatmap_svg(&h);
        // Sequential ramp: low end white, high end the POS color.
        assert!(svg.contains("#ffffff"));
        assert!(svg.contains("#ee6677"));
    }

    #[test]
    fn heatmap_svg_escapes_names() {
        let svg = heatmap_svg(&Heatmap::new("a<b&c", 1, 1));
        assert!(svg.contains("a&lt;b&amp;c"));
    }
}

#[cfg(test)]
mod histogram_tests {
    #[test]
    fn histogram_svg_labels_open_ended_bucket() {
        let svg = super::histogram_svg("disp", &[5, 3, 1]);
        assert!(svg.contains(">0<"));
        assert!(svg.contains(">1<"));
        assert!(svg.contains(">2+<"));
    }

    #[test]
    fn histogram_svg_empty_is_valid() {
        let svg = super::histogram_svg("disp", &[]);
        assert!(svg.ends_with("</svg>"));
    }
}
