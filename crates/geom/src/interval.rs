//! Half-open 1D integer intervals.

use std::fmt;

/// A half-open interval `[lo, hi)` in database units.
///
/// Intervals model the horizontal extent of rows, segments, bins, and placed
/// cells. The half-open convention makes abutting objects (`[0,10)` and
/// `[10,20)`) non-overlapping, matching legal abutment of standard cells.
///
/// # Examples
///
/// ```
/// use flow3d_geom::Interval;
/// let seg = Interval::new(0, 100);
/// assert_eq!(seg.len(), 100);
/// assert!(seg.contains_point(0));
/// assert!(!seg.contains_point(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Exclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// Creates the interval `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo > hi`; an empty interval (`lo == hi`) is
    /// allowed.
    #[inline]
    pub fn new(lo: i64, hi: i64) -> Self {
        debug_assert!(lo <= hi, "Interval::new: lo {lo} > hi {hi}");
        Self { lo, hi }
    }

    /// Creates an interval from a start position and a non-negative length.
    #[inline]
    pub fn with_len(lo: i64, len: i64) -> Self {
        debug_assert!(len >= 0, "Interval::with_len: negative length {len}");
        Self { lo, hi: lo + len }
    }

    /// Length (`hi - lo`).
    #[inline]
    pub fn len(&self) -> i64 {
        self.hi - self.lo
    }

    /// `true` if the interval contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// `true` if `x` lies inside `[lo, hi)`.
    #[inline]
    pub fn contains_point(&self, x: i64) -> bool {
        self.lo <= x && x < self.hi
    }

    /// `true` if `other` is entirely inside `self` (both half-open).
    #[inline]
    pub fn contains(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// `true` if the interiors of the intervals intersect.
    ///
    /// Empty intervals overlap nothing, even when positioned inside another
    /// interval.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo.max(other.lo) < self.hi.min(other.hi)
    }

    /// Intersection of the two intervals, or `None` if they are disjoint
    /// (abutting intervals are disjoint).
    ///
    /// # Examples
    ///
    /// ```
    /// use flow3d_geom::Interval;
    /// let a = Interval::new(0, 10);
    /// assert_eq!(a.intersection(&Interval::new(5, 20)), Some(Interval::new(5, 10)));
    /// assert_eq!(a.intersection(&Interval::new(10, 20)), None);
    /// ```
    #[inline]
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo < hi {
            Some(Interval::new(lo, hi))
        } else {
            None
        }
    }

    /// Length of the overlap between the two intervals (0 if disjoint).
    #[inline]
    pub fn overlap_len(&self, other: &Interval) -> i64 {
        (self.hi.min(other.hi) - self.lo.max(other.lo)).max(0)
    }

    /// Distance from `x` to the nearest point of the closed hull `[lo, hi]`
    /// (0 if `x` is inside).
    #[inline]
    pub fn distance_to_point(&self, x: i64) -> i64 {
        if x < self.lo {
            self.lo - x
        } else if x > self.hi {
            x - self.hi
        } else {
            0
        }
    }

    /// Clamps `x` into the closed hull `[lo, hi]`.
    #[inline]
    pub fn clamp_point(&self, x: i64) -> i64 {
        crate::clamp_i64(x, self.lo, self.hi)
    }

    /// The nearest start position for an object of width `w` placed inside
    /// this interval so that `[pos, pos + w)` fits, given a desired start
    /// `x`. Returns `None` if `w > len()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use flow3d_geom::Interval;
    /// let seg = Interval::new(10, 100);
    /// assert_eq!(seg.nearest_fit(0, 20), Some(10));
    /// assert_eq!(seg.nearest_fit(95, 20), Some(80));
    /// assert_eq!(seg.nearest_fit(50, 20), Some(50));
    /// assert_eq!(seg.nearest_fit(50, 200), None);
    /// ```
    #[inline]
    pub fn nearest_fit(&self, x: i64, w: i64) -> Option<i64> {
        if w > self.len() {
            return None;
        }
        Some(crate::clamp_i64(x, self.lo, self.hi - w))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn abutting_intervals_do_not_overlap() {
        let a = Interval::new(0, 10);
        let b = Interval::new(10, 20);
        assert!(!a.overlaps(&b));
        assert_eq!(a.overlap_len(&b), 0);
    }

    #[test]
    fn empty_interval_properties() {
        let e = Interval::new(5, 5);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(!e.contains_point(5));
        assert!(!e.overlaps(&Interval::new(0, 10)));
    }

    #[test]
    fn contains_is_reflexive() {
        let a = Interval::new(-4, 17);
        assert!(a.contains(&a));
    }

    #[test]
    fn distance_to_point_zero_inside() {
        let a = Interval::new(0, 10);
        assert_eq!(a.distance_to_point(5), 0);
        assert_eq!(a.distance_to_point(10), 0); // closed hull boundary
        assert_eq!(a.distance_to_point(-3), 3);
        assert_eq!(a.distance_to_point(13), 3);
    }

    #[test]
    fn nearest_fit_exact_width() {
        let seg = Interval::new(0, 10);
        assert_eq!(seg.nearest_fit(3, 10), Some(0));
        assert_eq!(seg.nearest_fit(3, 11), None);
    }

    proptest! {
        #[test]
        fn intersection_is_commutative(a_lo in -100i64..100, a_len in 0i64..100,
                                       b_lo in -100i64..100, b_len in 0i64..100) {
            let a = Interval::with_len(a_lo, a_len);
            let b = Interval::with_len(b_lo, b_len);
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
            prop_assert_eq!(a.overlap_len(&b), b.overlap_len(&a));
        }

        #[test]
        fn intersection_contained_in_both(a_lo in -100i64..100, a_len in 0i64..100,
                                          b_lo in -100i64..100, b_len in 0i64..100) {
            let a = Interval::with_len(a_lo, a_len);
            let b = Interval::with_len(b_lo, b_len);
            if let Some(i) = a.intersection(&b) {
                prop_assert!(a.contains(&i));
                prop_assert!(b.contains(&i));
                prop_assert_eq!(i.len(), a.overlap_len(&b));
            } else {
                prop_assert_eq!(a.overlap_len(&b), 0);
            }
        }

        #[test]
        fn nearest_fit_result_fits_and_is_nearest(lo in -100i64..100, len in 0i64..200,
                                                  x in -300i64..300, w in 0i64..200) {
            let seg = Interval::with_len(lo, len);
            match seg.nearest_fit(x, w) {
                Some(pos) => {
                    prop_assert!(seg.contains(&Interval::with_len(pos, w)));
                    // nearest: any other feasible pos is at least as far from x
                    for cand in [seg.lo, seg.hi - w, x] {
                        if cand >= seg.lo && cand + w <= seg.hi {
                            prop_assert!((pos - x).abs() <= (cand - x).abs());
                        }
                    }
                }
                None => prop_assert!(w > seg.len()),
            }
        }
    }
}
