#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Integer (database-unit) geometry primitives for the 3D-Flow legalizer.
//!
//! All physical coordinates in the workspace are expressed in database units
//! (DBU) as [`i64`]. This crate provides the small set of geometric types the
//! rest of the workspace builds on: [`Point`], [`FPoint`] (for continuous
//! global-placement coordinates), half-open [`Interval`]s, axis-aligned
//! [`Rect`]angles, and Manhattan-distance helpers.
//!
//! # Examples
//!
//! ```
//! use flow3d_geom::{Interval, Point, Rect};
//!
//! let row = Rect::new(0, 0, 1_000, 12);
//! let cell = Rect::new(40, 0, 100, 12);
//! assert!(row.contains_rect(&cell));
//!
//! let a = Interval::new(0, 50);
//! let b = Interval::new(30, 80);
//! assert_eq!(a.intersection(&b), Some(Interval::new(30, 50)));
//!
//! let p = Point::new(3, 4);
//! assert_eq!(p.manhattan(Point::new(0, 0)), 7);
//! ```

pub mod interval;
pub mod point;
pub mod rect;

pub use interval::Interval;
pub use point::{FPoint, Point};
pub use rect::Rect;

/// Clamps `x` to the inclusive range `[lo, hi]`.
///
/// This is the snapping operation used when a cell's global-placement
/// x-coordinate is projected into a bin or segment: the nearest in-range
/// position to an out-of-range coordinate is the closest boundary.
///
/// # Panics
///
/// Panics in debug builds if `lo > hi`.
///
/// # Examples
///
/// ```
/// assert_eq!(flow3d_geom::clamp_i64(5, 0, 10), 5);
/// assert_eq!(flow3d_geom::clamp_i64(-3, 0, 10), 0);
/// assert_eq!(flow3d_geom::clamp_i64(42, 0, 10), 10);
/// ```
#[inline]
// flow3d-tidy: allow(dead-pub) — geometry primitive on the flow3d::geom facade surface
pub fn clamp_i64(x: i64, lo: i64, hi: i64) -> i64 {
    debug_assert!(lo <= hi, "clamp_i64: lo {lo} > hi {hi}");
    x.max(lo).min(hi)
}

/// Rounds `x` down to the nearest multiple of `step` relative to `origin`.
///
/// Used to align positions to placement sites: sites start at `origin` and
/// repeat every `step` DBU.
///
/// # Panics
///
/// Panics if `step <= 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(flow3d_geom::snap_down(17, 0, 5), 15);
/// assert_eq!(flow3d_geom::snap_down(17, 2, 5), 17);
/// assert_eq!(flow3d_geom::snap_down(-3, 0, 5), -5);
/// ```
#[inline]
pub fn snap_down(x: i64, origin: i64, step: i64) -> i64 {
    assert!(step > 0, "snap_down: non-positive step {step}");
    origin + (x - origin).div_euclid(step) * step
}

/// Rounds `x` up to the nearest multiple of `step` relative to `origin`.
///
/// # Panics
///
/// Panics if `step <= 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(flow3d_geom::snap_up(17, 0, 5), 20);
/// assert_eq!(flow3d_geom::snap_up(15, 0, 5), 15);
/// ```
#[inline]
pub fn snap_up(x: i64, origin: i64, step: i64) -> i64 {
    assert!(step > 0, "snap_up: non-positive step {step}");
    origin + (x - origin + step - 1).div_euclid(step) * step
}

/// Rounds `x` to the nearest multiple of `step` relative to `origin`,
/// breaking ties toward negative infinity.
///
/// # Panics
///
/// Panics if `step <= 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(flow3d_geom::snap_nearest(17, 0, 5), 15);
/// assert_eq!(flow3d_geom::snap_nearest(18, 0, 5), 20);
/// ```
#[inline]
pub fn snap_nearest(x: i64, origin: i64, step: i64) -> i64 {
    assert!(step > 0, "snap_nearest: non-positive step {step}");
    let down = snap_down(x, origin, step);
    let up = down + step;
    if x - down <= up - x {
        down
    } else {
        up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clamp_inside_range_is_identity() {
        for x in -5..=5 {
            assert_eq!(clamp_i64(x, -5, 5), x);
        }
    }

    #[test]
    fn clamp_saturates_at_bounds() {
        assert_eq!(clamp_i64(i64::MIN, -1, 1), -1);
        assert_eq!(clamp_i64(i64::MAX, -1, 1), 1);
    }

    #[test]
    fn snap_down_negative_coordinates() {
        assert_eq!(snap_down(-1, 0, 10), -10);
        assert_eq!(snap_down(-10, 0, 10), -10);
        assert_eq!(snap_down(-11, 0, 10), -20);
    }

    #[test]
    fn snap_up_matches_snap_down_on_multiples() {
        for k in -4..4 {
            let x = k * 7 + 3; // origin 3, step 7 multiples
            assert_eq!(snap_up(x, 3, 7), x);
            assert_eq!(snap_down(x, 3, 7), x);
        }
    }

    #[test]
    #[should_panic]
    fn snap_down_rejects_zero_step() {
        let _ = snap_down(1, 0, 0);
    }

    proptest! {
        #[test]
        fn snap_down_is_lower_bound(x in -1_000_000i64..1_000_000, origin in -100i64..100, step in 1i64..1000) {
            let s = snap_down(x, origin, step);
            prop_assert!(s <= x);
            prop_assert!(x - s < step);
            prop_assert_eq!((s - origin).rem_euclid(step), 0);
        }

        #[test]
        fn snap_up_is_upper_bound(x in -1_000_000i64..1_000_000, origin in -100i64..100, step in 1i64..1000) {
            let s = snap_up(x, origin, step);
            prop_assert!(s >= x);
            prop_assert!(s - x < step);
            prop_assert_eq!((s - origin).rem_euclid(step), 0);
        }

        #[test]
        fn snap_nearest_within_half_step(x in -1_000_000i64..1_000_000, origin in -100i64..100, step in 1i64..1000) {
            let s = snap_nearest(x, origin, step);
            prop_assert!((s - x).abs() * 2 <= step);
        }

        #[test]
        fn clamp_is_idempotent(x in any::<i64>(), lo in -1000i64..0, hi in 0i64..1000) {
            let once = clamp_i64(x, lo, hi);
            prop_assert_eq!(clamp_i64(once, lo, hi), once);
            prop_assert!(once >= lo && once <= hi);
        }
    }
}
