//! Axis-aligned integer rectangles.

use crate::{Interval, Point};
use std::fmt;

/// An axis-aligned rectangle `[xlo, xhi) × [ylo, yhi)` in database units.
///
/// Rectangles model die outlines, macro blockages, placed cell footprints,
/// and bin extents. Like [`Interval`], the bounds are half-open so abutting
/// rectangles do not overlap.
///
/// # Examples
///
/// ```
/// use flow3d_geom::Rect;
/// let die = Rect::new(0, 0, 1000, 500);
/// let mac = Rect::new(100, 100, 300, 220);
/// assert!(die.contains_rect(&mac));
/// assert_eq!(mac.area(), 200 * 120);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rect {
    /// Inclusive left edge.
    pub xlo: i64,
    /// Inclusive bottom edge.
    pub ylo: i64,
    /// Exclusive right edge.
    pub xhi: i64,
    /// Exclusive top edge.
    pub yhi: i64,
}

impl Rect {
    /// Creates the rectangle `[xlo, xhi) × [ylo, yhi)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the bounds are inverted.
    #[inline]
    pub fn new(xlo: i64, ylo: i64, xhi: i64, yhi: i64) -> Self {
        debug_assert!(
            xlo <= xhi && ylo <= yhi,
            "Rect::new: inverted bounds ({xlo},{ylo})-({xhi},{yhi})"
        );
        Self { xlo, ylo, xhi, yhi }
    }

    /// Creates a rectangle from its lower-left corner and size.
    #[inline]
    pub fn with_size(ll: Point, w: i64, h: i64) -> Self {
        debug_assert!(w >= 0 && h >= 0);
        Self::new(ll.x, ll.y, ll.x + w, ll.y + h)
    }

    /// Width (`xhi - xlo`).
    #[inline]
    pub fn width(&self) -> i64 {
        self.xhi - self.xlo
    }

    /// Height (`yhi - ylo`).
    #[inline]
    pub fn height(&self) -> i64 {
        self.yhi - self.ylo
    }

    /// Area in DBU².
    #[inline]
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// `true` if the rectangle encloses no area.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xlo >= self.xhi || self.ylo >= self.yhi
    }

    /// Lower-left corner.
    #[inline]
    pub fn lower_left(&self) -> Point {
        Point::new(self.xlo, self.ylo)
    }

    /// Center point, rounded toward negative infinity.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(self.xlo + self.width() / 2, self.ylo + self.height() / 2)
    }

    /// Horizontal span as an [`Interval`].
    #[inline]
    pub fn x_span(&self) -> Interval {
        Interval::new(self.xlo, self.xhi)
    }

    /// Vertical span as an [`Interval`].
    #[inline]
    pub fn y_span(&self) -> Interval {
        Interval::new(self.ylo, self.yhi)
    }

    /// `true` if point `p` lies inside the half-open extents.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        self.x_span().contains_point(p.x) && self.y_span().contains_point(p.y)
    }

    /// `true` if `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x_span().contains(&other.x_span()) && self.y_span().contains(&other.y_span())
    }

    /// `true` if the interiors of the rectangles intersect.
    #[inline]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x_span().overlaps(&other.x_span()) && self.y_span().overlaps(&other.y_span())
    }

    /// Intersection, or `None` if the interiors are disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x = self.x_span().intersection(&other.x_span())?;
        let y = self.y_span().intersection(&other.y_span())?;
        Some(Rect::new(x.lo, y.lo, x.hi, y.hi))
    }

    /// Area of the overlap with `other` (0 if disjoint).
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> i64 {
        self.x_span().overlap_len(&other.x_span()) * self.y_span().overlap_len(&other.y_span())
    }

    /// The smallest rectangle containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.xlo.min(other.xlo),
            self.ylo.min(other.ylo),
            self.xhi.max(other.xhi),
            self.yhi.max(other.yhi),
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})-({},{})", self.xlo, self.ylo, self.xhi, self.yhi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn abutting_rects_do_not_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert!(!a.overlaps(&b));
        assert_eq!(a.overlap_area(&b), 0);
    }

    #[test]
    fn contains_point_half_open() {
        let r = Rect::new(0, 0, 10, 10);
        assert!(r.contains_point(Point::new(0, 0)));
        assert!(!r.contains_point(Point::new(10, 0)));
        assert!(!r.contains_point(Point::new(0, 10)));
    }

    #[test]
    fn empty_rect_is_empty() {
        assert!(Rect::new(5, 5, 5, 10).is_empty());
        assert!(Rect::new(5, 5, 10, 5).is_empty());
        assert!(!Rect::new(5, 5, 6, 6).is_empty());
    }

    #[test]
    fn center_of_unit_rect() {
        assert_eq!(Rect::new(0, 0, 1, 1).center(), Point::new(0, 0));
        assert_eq!(Rect::new(0, 0, 2, 2).center(), Point::new(1, 1));
    }

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (-100i64..100, -100i64..100, 0i64..100, 0i64..100)
            .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
    }

    proptest! {
        #[test]
        fn intersection_area_matches_overlap_area(a in arb_rect(), b in arb_rect()) {
            match a.intersection(&b) {
                Some(i) => {
                    prop_assert_eq!(i.area(), a.overlap_area(&b));
                    prop_assert!(a.contains_rect(&i));
                    prop_assert!(b.contains_rect(&i));
                }
                None => prop_assert_eq!(a.overlap_area(&b), 0),
            }
        }

        #[test]
        fn union_contains_both(a in arb_rect(), b in arb_rect()) {
            let u = a.union(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
        }

        #[test]
        fn overlap_is_symmetric(a in arb_rect(), b in arb_rect()) {
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
            prop_assert_eq!(a.overlap_area(&b), b.overlap_area(&a));
        }
    }
}
