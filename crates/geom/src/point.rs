//! Integer and floating-point 2D points.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A 2D point in database units.
///
/// # Examples
///
/// ```
/// use flow3d_geom::Point;
/// let p = Point::new(10, 20) + Point::new(1, 2);
/// assert_eq!(p, Point::new(11, 22));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate in DBU.
    pub x: i64,
    /// Vertical coordinate in DBU.
    pub y: i64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0, 0);

    /// Manhattan (L1) distance to `other`.
    ///
    /// This is the displacement measure of Eq. (4) in the paper:
    /// `|x - x'| + |y - y'|`.
    ///
    /// # Examples
    ///
    /// ```
    /// use flow3d_geom::Point;
    /// assert_eq!(Point::new(1, 2).manhattan(Point::new(4, -2)), 7);
    /// ```
    #[inline]
    pub fn manhattan(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Converts to a floating-point point.
    #[inline]
    pub fn to_fpoint(self) -> FPoint {
        FPoint::new(self.x as f64, self.y as f64)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        *self = *self + rhs;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    #[inline]
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

/// A 2D point with floating-point coordinates.
///
/// Used for continuous global-placement positions before they are snapped to
/// rows and sites.
///
/// # Examples
///
/// ```
/// use flow3d_geom::FPoint;
/// let p = FPoint::new(1.5, 2.0);
/// assert_eq!(p.round(), flow3d_geom::Point::new(2, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FPoint {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl FPoint {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Manhattan (L1) distance to `other`.
    #[inline]
    pub fn manhattan(self, other: FPoint) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn euclid(self, other: FPoint) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Rounds each coordinate to the nearest integer DBU.
    #[inline]
    pub fn round(self) -> Point {
        Point::new(self.x.round() as i64, self.y.round() as i64)
    }
}

impl Add for FPoint {
    type Output = FPoint;
    #[inline]
    fn add(self, rhs: FPoint) -> FPoint {
        FPoint::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for FPoint {
    type Output = FPoint;
    #[inline]
    fn sub(self, rhs: FPoint) -> FPoint {
        FPoint::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for FPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<Point> for FPoint {
    #[inline]
    fn from(p: Point) -> Self {
        p.to_fpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric() {
        let a = Point::new(-3, 9);
        let b = Point::new(12, -4);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn manhattan_triangle_inequality() {
        let a = Point::new(0, 0);
        let b = Point::new(5, 5);
        let c = Point::new(10, -2);
        assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Point::new(7, -2);
        let b = Point::new(-3, 11);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn fpoint_round_half_away_from_zero() {
        assert_eq!(FPoint::new(0.5, -0.5).round(), Point::new(1, -1));
    }

    #[test]
    fn fpoint_euclid_matches_pythagoras() {
        let d = FPoint::new(0.0, 0.0).euclid(FPoint::new(3.0, 4.0));
        assert!((d - 5.0).abs() < 1e-12);
    }
}
