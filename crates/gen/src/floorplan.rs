//! Die sizing, macro placement, and final design assembly.

use crate::config::{GenError, GeneratorConfig};
use crate::library::Library;
use crate::netlist::NetSpec;
use flow3d_db::{Design, DesignBuilder, DieSpec, LibCellSpec, Placement3d, TechnologySpec};
use flow3d_geom::Rect;
use rand::rngs::SmallRng;
use rand::Rng;

/// A fixed macro chosen by the floorplanner.
#[derive(Debug, Clone)]
pub(crate) struct MacroDef {
    pub name: String,
    pub lib_name: String,
    pub width: i64,
    pub height: i64,
    pub x: i64,
    pub y: i64,
    /// 0 = bottom, 1 = top.
    pub die: usize,
}

/// The floorplan: common die outline plus placed macros.
#[derive(Debug, Clone)]
pub(crate) struct Plan {
    pub width: i64,
    pub height: i64,
    pub macros: Vec<MacroDef>,
}

impl Plan {
    /// Macro footprints on one die.
    pub fn macro_rects(&self, die: usize) -> Vec<Rect> {
        self.macros
            .iter()
            .filter(|m| m.die == die)
            .map(|m| Rect::new(m.x, m.y, m.x + m.width, m.y + m.height))
            .collect()
    }
}

/// Sizes the dies from the instance area and places macros.
pub(crate) fn build(
    cfg: &GeneratorConfig,
    lib: &Library,
    growth: f64,
    rng: &mut SmallRng,
) -> Result<Plan, GenError> {
    let area_bottom = lib.total_area_bottom(cfg.row_height_bottom) as f64;
    let area_top = lib.total_area_top(cfg.row_height_top) as f64;
    // Cells split roughly evenly across the two dies; size each die for
    // half the larger-technology area at the target density.
    let mut die_area = area_bottom.max(area_top) / 2.0 / cfg.target_density * growth;
    // Reserve room for macro blockages (~1.2% of the die each).
    let macros_per_die = cfg.scaled_macros().div_ceil(2) as f64;
    die_area /= (1.0 - 0.012 * macros_per_die).max(0.5);

    let side = die_area.sqrt();
    let height = flow3d_geom::snap_up(
        (side.max((3 * cfg.row_height_bottom.max(cfg.row_height_top)) as f64)) as i64,
        0,
        cfg.row_height_bottom,
    );
    let width_raw = (die_area / height as f64).ceil() as i64;
    // Width on the site grid of both dies.
    let site_step = lcm(lib.site_bottom, lib.site_top);
    let width = flow3d_geom::snap_up(width_raw.max(site_step * 16), 0, site_step);

    let mut plan = Plan {
        width,
        height,
        macros: Vec::new(),
    };

    // Macros: alternating dies, rejection-sampled positions on the row/site
    // grid of their die.
    let num_macros = cfg.scaled_macros();
    for k in 0..num_macros {
        let die = k % 2;
        let (row_h, site_w) = if die == 0 {
            (cfg.row_height_bottom, lib.site_bottom)
        } else {
            (cfg.row_height_top, lib.site_top)
        };
        let mut frac_w = rng.random_range(0.08..0.16);
        let mut frac_h = rng.random_range(0.06..0.14);
        let mut placed = false;
        'shrink: for _ in 0..6 {
            let w = flow3d_geom::snap_up(((width as f64) * frac_w) as i64, 0, site_w).max(site_w);
            let h =
                flow3d_geom::snap_up(((height as f64) * frac_h) as i64, 0, row_h).max(2 * row_h);
            if w >= width || h >= height {
                frac_w *= 0.7;
                frac_h *= 0.7;
                continue;
            }
            for _try in 0..500 {
                let x = flow3d_geom::snap_down(rng.random_range(0..=(width - w)), 0, site_w);
                let y = flow3d_geom::snap_down(rng.random_range(0..=(height - h)), 0, row_h);
                let rect = Rect::new(x, y, x + w, y + h);
                if plan.macro_rects(die).iter().all(|r| !r.overlaps(&rect)) {
                    plan.macros.push(MacroDef {
                        name: format!("m{k}"),
                        lib_name: format!("MC{k}"),
                        width: w,
                        height: h,
                        x,
                        y,
                        die,
                    });
                    placed = true;
                    break 'shrink;
                }
            }
            frac_w *= 0.8;
            frac_h *= 0.8;
        }
        if !placed {
            return Err(GenError::Infeasible {
                detail: format!("could not place macro {k} without overlap"),
            });
        }
    }
    Ok(plan)
}

/// Checks whether the natural die split fits under the utilization caps
/// with a safety margin; returns an explanation when it does not.
pub(crate) fn infeasibility(
    cfg: &GeneratorConfig,
    lib: &Library,
    plan: &Plan,
    natural: &Placement3d,
) -> Option<String> {
    let rows_bottom = plan.height / cfg.row_height_bottom;
    let rows_top = plan.height / cfg.row_height_top;
    let rows_area = [
        rows_bottom * cfg.row_height_bottom * plan.width,
        rows_top * cfg.row_height_top * plan.width,
    ];
    for (die, &die_rows_area) in rows_area.iter().enumerate() {
        let blocked: i64 = plan
            .macro_rects(die)
            .iter()
            .map(|r| {
                // Macros are snapped to rows of their die, so the blocked
                // row area is the footprint clipped to the rows region.
                let rows_h = die_rows_area / plan.width;
                let clipped = Rect::new(r.xlo, r.ylo, r.xhi, r.yhi.min(rows_h));
                clipped.area().max(0)
            })
            .sum();
        let free = die_rows_area - blocked;
        let max_util = if die == 0 {
            cfg.max_util_bottom
        } else {
            cfg.max_util_top
        };
        let assigned: i64 = lib
            .instance_lib
            .iter()
            .enumerate()
            .filter(|&(i, _)| {
                let aff = natural.die_affinity(flow3d_db::CellId::new(i));
                aff.round() as usize == die
            })
            .map(|(_, &lc)| {
                if die == 0 {
                    lib.width_bottom(lc) * cfg.row_height_bottom
                } else {
                    lib.width_top(lc) * cfg.row_height_top
                }
            })
            .sum();
        if (assigned as f64) > 0.94 * max_util * free as f64 {
            return Some(format!(
                "die {die}: assigned area {assigned} exceeds 94% of cap {:.0}",
                max_util * free as f64
            ));
        }
    }
    None
}

/// Assembles the validated [`Design`] from all pipeline outputs.
pub(crate) fn assemble(
    cfg: &GeneratorConfig,
    lib: &Library,
    plan: &Plan,
    nets: &[NetSpec],
) -> Result<Design, GenError> {
    let tech_for = |name: &str, site: i64, hr: i64| {
        let mut tech = TechnologySpec::new(name);
        for cell in &lib.std_cells {
            let w = cell.sites * site;
            let mut spec = LibCellSpec::std_cell(&cell.name, w, hr);
            for (pname, fx, fy) in &cell.pins {
                spec = spec.pin(
                    pname,
                    ((w as f64 * fx) as i64).min(w - 1),
                    ((hr as f64 * fy) as i64).min(hr - 1),
                );
            }
            tech = tech.lib_cell(spec);
        }
        for m in &plan.macros {
            // Macros keep one footprint in both technologies (they are
            // fixed on a single die; the aligned table just needs the
            // entry to exist).
            tech = tech.lib_cell(LibCellSpec::macro_cell(&m.lib_name, m.width, m.height).pin(
                "P0",
                m.width / 2,
                m.height / 2,
            ));
        }
        tech
    };
    let tech_bottom = tech_for("TechBottom", lib.site_bottom, cfg.row_height_bottom);
    let tech_top = tech_for("TechTop", lib.site_top, cfg.row_height_top);

    let mut builder = DesignBuilder::new(&cfg.name)
        .technology(tech_bottom)
        .technology(tech_top)
        .die(DieSpec::new(
            "bottom",
            "TechBottom",
            (0, 0, plan.width, plan.height),
            cfg.row_height_bottom,
            lib.site_bottom,
            cfg.max_util_bottom,
        ))
        .die(DieSpec::new(
            "top",
            "TechTop",
            (0, 0, plan.width, plan.height),
            cfg.row_height_top,
            lib.site_top,
            cfg.max_util_top,
        ));

    for (i, &lc) in lib.instance_lib.iter().enumerate() {
        builder = builder.cell(format!("c{i}"), &lib.std_cells[lc].name);
    }
    for m in &plan.macros {
        builder = builder.macro_inst(
            &m.name,
            &m.lib_name,
            if m.die == 0 { "bottom" } else { "top" },
            m.x,
            m.y,
        );
    }
    for net in nets {
        let pins: Vec<(&str, usize)> = net
            .pins
            .iter()
            .map(|(name, pin)| (name.as_str(), *pin))
            .collect();
        builder = builder.net(&net.name, &pins);
    }
    Ok(builder.build()?)
}

fn lcm(a: i64, b: i64) -> i64 {
    a / gcd(a, b) * b
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (GeneratorConfig, Library, Plan) {
        let cfg = GeneratorConfig::small_demo(seed);
        let mut rng = SmallRng::seed_from_u64(seed);
        let lib = library::build(&cfg, &mut rng);
        let plan = build(&cfg, &lib, 1.0, &mut rng).unwrap();
        (cfg, lib, plan)
    }

    #[test]
    fn dies_are_row_and_site_aligned() {
        let (cfg, lib, plan) = setup(5);
        assert_eq!(plan.height % cfg.row_height_bottom, 0);
        assert_eq!(plan.width % lib.site_bottom, 0);
        assert_eq!(plan.width % lib.site_top, 0);
        assert!(plan.width > 0 && plan.height > 0);
    }

    #[test]
    fn macros_land_on_grid_without_overlap() {
        let (cfg, lib, plan) = setup(6);
        assert_eq!(plan.macros.len(), cfg.scaled_macros());
        for m in &plan.macros {
            let (row_h, site_w) = if m.die == 0 {
                (cfg.row_height_bottom, lib.site_bottom)
            } else {
                (cfg.row_height_top, lib.site_top)
            };
            assert_eq!(m.x % site_w, 0);
            assert_eq!(m.y % row_h, 0);
            assert!(m.x + m.width <= plan.width);
            assert!(m.y + m.height <= plan.height);
        }
        for die in 0..2 {
            let rects = plan.macro_rects(die);
            for i in 0..rects.len() {
                for j in 0..i {
                    assert!(!rects[i].overlaps(&rects[j]));
                }
            }
        }
    }

    #[test]
    fn growth_enlarges_the_die() {
        let cfg = GeneratorConfig::small_demo(7);
        let mut rng = SmallRng::seed_from_u64(7);
        let lib = library::build(&cfg, &mut rng);
        let mut rng1 = SmallRng::seed_from_u64(8);
        let small = build(&cfg, &lib, 1.0, &mut rng1).unwrap();
        let mut rng2 = SmallRng::seed_from_u64(8);
        let big = build(&cfg, &lib, 2.0, &mut rng2).unwrap();
        assert!(
            big.width as i128 * big.height as i128 > small.width as i128 * small.height as i128
        );
    }

    #[test]
    fn die_area_tracks_target_density() {
        let (cfg, lib, plan) = setup(8);
        let cell_area = lib.total_area_bottom(cfg.row_height_bottom) as f64;
        let die_area = (plan.width * plan.height) as f64;
        // Each die holds about half the cells at target density, so the
        // die must be at least that large (plus macro slack).
        assert!(die_area >= cell_area / 2.0 / cfg.target_density * 0.95);
    }
}
