#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Synthetic benchmark generator.
//!
//! The paper evaluates on the ICCAD 2022/2023 contest benchmarks, which are
//! not redistributable. This crate generates cases with the *same published
//! statistics* (Table II: cell/macro/net counts, per-die row heights,
//! homogeneous vs heterogeneous technology pairs) and the same structural
//! character: realistic cell-width mixes, spatially clustered "natural"
//! placements that netlists are drawn from with locality, and fixed macro
//! blockages for the 2023 suite.
//!
//! Everything is deterministic given the seed.
//!
//! # Examples
//!
//! ```
//! use flow3d_gen::GeneratorConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let case = GeneratorConfig::small_demo(7).generate()?;
//! assert!(case.design.num_cells() > 0);
//! assert_eq!(case.natural.num_cells(), case.design.num_cells());
//! # Ok(())
//! # }
//! ```

mod config;
mod floorplan;
mod library;
mod natural;
mod netlist;

pub use config::{GenError, GeneratedCase, GeneratorConfig};

/// Names of the ICCAD 2022 suite cases reproduced from Table II.
pub const ICCAD2022_CASES: [&str; 6] = ["case2", "case2h", "case3", "case3h", "case4", "case4h"];

/// Names of the ICCAD 2023 suite cases reproduced from Table II.
pub const ICCAD2023_CASES: [&str; 7] = [
    "case2", "case2h1", "case2h2", "case3", "case3h", "case4", "case4h",
];

/// Names of the million-cell scaling family (beyond the contest suites;
/// see [`GeneratorConfig::million`]).
pub const MILLION_CASES: [&str; 3] = ["m1", "m1h", "m2"];
