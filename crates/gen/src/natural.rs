//! Clustered "natural" placement synthesis.
//!
//! Analytical global placers produce clumpy placements: cells congregate
//! around netlist hotspots, leaving locally overflowed regions the
//! legalizer must resolve. We synthesize that structure directly: cells
//! are drawn from a mixture of Gaussian clusters, each biased toward one
//! die, with noisy die affinities so a band of cells is genuinely
//! ambiguous (the regime where 3D legalization pays off).

use crate::config::GeneratorConfig;
use crate::floorplan::Plan;
use crate::library::Library;
use flow3d_db::{CellId, Placement3d};
use flow3d_geom::FPoint;
use rand::rngs::SmallRng;
use rand::Rng;

/// Approximate standard normal sample (Irwin–Hall with 12 uniforms); good
/// enough for placement noise and dependency-free.
pub(crate) fn normal(rng: &mut SmallRng) -> f64 {
    (0..12).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() - 6.0
}

#[derive(Debug, Clone, Copy)]
struct Cluster {
    center: FPoint,
    /// Die bias in [0, 1]; most clusters are firmly 0 or 1.
    bias: f64,
    /// Sampling weight.
    weight: f64,
}

/// Generates the natural placement for every instance.
pub(crate) fn build(
    cfg: &GeneratorConfig,
    plan: &Plan,
    lib: &Library,
    rng: &mut SmallRng,
) -> Placement3d {
    let w = plan.width as f64;
    let h = plan.height as f64;

    let mut clusters = Vec::with_capacity(cfg.num_clusters);
    for k in 0..cfg.num_clusters {
        let bias = match k % 4 {
            0 | 2 => (k % 2) as f64, // firmly bottom / top
            1 => 1.0 - (k % 2) as f64,
            _ => 0.5, // every fourth cluster is die-ambiguous
        };
        clusters.push(Cluster {
            center: FPoint::new(
                rng.random_range(0.12 * w..0.88 * w),
                rng.random_range(0.12 * h..0.88 * h),
            ),
            bias,
            weight: rng.random_range(0.5..1.5),
        });
    }
    let total_weight: f64 = clusters.iter().map(|c| c.weight).sum();
    let cumulative: Vec<f64> = clusters
        .iter()
        .scan(0.0, |acc, c| {
            *acc += c.weight / total_weight;
            Some(*acc)
        })
        .collect();

    let spread_x = cfg.cluster_spread * w;
    let spread_y = cfg.cluster_spread * h;
    let n = lib.instance_lib.len();
    let mut placement = Placement3d::new(n);
    for i in 0..n {
        let r: f64 = rng.random_range(0.0..1.0);
        let k = cumulative
            .partition_point(|&c| c < r)
            .min(clusters.len() - 1);
        let cl = &clusters[k];
        let x = (cl.center.x + normal(rng) * spread_x).clamp(0.0, w - 1.0);
        let y = (cl.center.y + normal(rng) * spread_y).clamp(0.0, h - 1.0);
        let z = (cl.bias + normal(rng) * 0.3).clamp(0.0, 1.0);
        let cell = CellId::new(i);
        placement.set_pos(cell, FPoint::new(x, y));
        placement.set_die_affinity(cell, z);
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{floorplan, library};
    use rand::SeedableRng;

    fn setup(seed: u64) -> (GeneratorConfig, Library, Plan, Placement3d) {
        let cfg = GeneratorConfig::small_demo(seed);
        let mut rng = SmallRng::seed_from_u64(seed);
        let lib = library::build(&cfg, &mut rng);
        let plan = floorplan::build(&cfg, &lib, 1.0, &mut rng).unwrap();
        let nat = build(&cfg, &plan, &lib, &mut rng);
        (cfg, lib, plan, nat)
    }

    #[test]
    fn positions_stay_inside_the_outline() {
        let (_, lib, plan, nat) = setup(11);
        for i in 0..lib.instance_lib.len() {
            let p = nat.pos(CellId::new(i));
            assert!(p.x >= 0.0 && p.x < plan.width as f64);
            assert!(p.y >= 0.0 && p.y < plan.height as f64);
            let z = nat.die_affinity(CellId::new(i));
            assert!((0.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn both_dies_receive_cells() {
        let (_, lib, _, nat) = setup(12);
        let n = lib.instance_lib.len();
        let bottom = (0..n)
            .filter(|&i| nat.die_affinity(CellId::new(i)) < 0.5)
            .count();
        assert!(bottom > n / 10, "bottom got {bottom}/{n}");
        assert!(n - bottom > n / 10, "top got {}/{n}", n - bottom);
    }

    #[test]
    fn placement_is_clustered_not_uniform() {
        // Variance of pairwise distances should be far below uniform: check
        // that a large fraction of cells sits within 2 spreads of some
        // cluster by verifying local density: mean nearest-centroid
        // distance is well below the die diagonal.
        let (cfg, lib, plan, nat) = setup(13);
        let n = lib.instance_lib.len();
        let mean_x: f64 = (0..n).map(|i| nat.pos(CellId::new(i)).x).sum::<f64>() / n as f64;
        let var_x: f64 = (0..n)
            .map(|i| (nat.pos(CellId::new(i)).x - mean_x).powi(2))
            .sum::<f64>()
            / n as f64;
        // Uniform over [0, W) would have variance W^2/12; clusters with
        // spread 0.12 W concentrate mass, but cluster centers themselves
        // spread over the die, so just assert we are below uniform + slack
        // and above a degenerate point.
        let w = plan.width as f64;
        assert!(var_x < w * w / 6.0, "variance {var_x} vs die width {w}");
        assert!(var_x > 0.0);
        let _ = cfg;
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
