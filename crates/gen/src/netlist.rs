//! Locality-driven netlist synthesis.
//!
//! Real netlists are local: a net's pins sit near each other after global
//! placement (that is what the placer optimizes). We synthesize nets by
//! seeding each at a random cell and drawing its remaining pins from a
//! spatial neighbourhood of the seed in the natural placement, so HPWL
//! comparisons between legalizers are meaningful.

use crate::config::GeneratorConfig;
use crate::floorplan::Plan;
use crate::library::Library;
use flow3d_db::{CellId, Placement3d};
use rand::rngs::SmallRng;
use rand::Rng;

/// One synthesized net: name plus `(instance_name, pin_index)` pairs.
#[derive(Debug, Clone)]
pub(crate) struct NetSpec {
    pub name: String,
    pub pins: Vec<(String, usize)>,
}

/// Uniform spatial hash over the natural placement.
struct SpatialGrid {
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
    buckets: Vec<Vec<u32>>,
}

impl SpatialGrid {
    fn build(plan: &Plan, natural: &Placement3d, n: usize) -> Self {
        // Aim for ~24 cells per bucket.
        let target_buckets = (n / 24).clamp(1, 1 << 16);
        let cols = (target_buckets as f64).sqrt().ceil() as usize;
        let rows = cols;
        let cell_w = plan.width as f64 / cols as f64;
        let cell_h = plan.height as f64 / rows as f64;
        let mut buckets = vec![Vec::new(); cols * rows];
        for i in 0..n {
            let p = natural.pos(CellId::new(i));
            let cx = ((p.x / cell_w) as usize).min(cols - 1);
            let cy = ((p.y / cell_h) as usize).min(rows - 1);
            buckets[cy * cols + cx].push(i as u32);
        }
        Self {
            cols,
            rows,
            cell_w,
            cell_h,
            buckets,
        }
    }

    /// Collects cells in rings of buckets around `(x, y)` until at least
    /// `want` candidates are found (or the whole grid is exhausted).
    fn neighbourhood(&self, x: f64, y: f64, want: usize, out: &mut Vec<u32>) {
        out.clear();
        let cx = ((x / self.cell_w) as usize).min(self.cols - 1) as i64;
        let cy = ((y / self.cell_h) as usize).min(self.rows - 1) as i64;
        let max_ring = self.cols.max(self.rows) as i64;
        for ring in 0..=max_ring {
            for dy in -ring..=ring {
                for dx in -ring..=ring {
                    if dx.abs() != ring && dy.abs() != ring {
                        continue; // only the ring boundary
                    }
                    let bx = cx + dx;
                    let by = cy + dy;
                    if bx < 0 || by < 0 || bx >= self.cols as i64 || by >= self.rows as i64 {
                        continue;
                    }
                    out.extend(&self.buckets[by as usize * self.cols + bx as usize]);
                }
            }
            if out.len() >= want {
                return;
            }
        }
    }
}

/// Synthesizes the netlist.
pub(crate) fn build(
    cfg: &GeneratorConfig,
    lib: &Library,
    plan: &Plan,
    natural: &Placement3d,
    rng: &mut SmallRng,
) -> Vec<NetSpec> {
    let n = lib.instance_lib.len();
    let grid = SpatialGrid::build(plan, natural, n);
    let num_nets = cfg.scaled_nets();
    let mut nets = Vec::with_capacity(num_nets);
    let mut candidates: Vec<u32> = Vec::new();

    for net_idx in 0..num_nets {
        // Degree: 2 + geometric tail, mean ≈ 3.3, capped at 8.
        let mut degree = 2;
        while degree < 8 && rng.random_range(0.0..1.0) < 0.42 {
            degree += 1;
        }
        let seed = rng.random_range(0..n);
        let seed_pos = natural.pos(CellId::new(seed));
        grid.neighbourhood(seed_pos.x, seed_pos.y, degree * 6, &mut candidates);

        let mut members = Vec::with_capacity(degree);
        members.push(seed as u32);
        let mut guard = 0;
        while members.len() < degree && guard < 64 {
            guard += 1;
            let pick = candidates[rng.random_range(0..candidates.len())];
            if !members.contains(&pick) {
                members.push(pick);
            }
        }

        let mut pins: Vec<(String, usize)> = members
            .iter()
            .map(|&c| {
                let pin = rng.random_range(0..lib.pin_count(lib.instance_lib[c as usize]));
                (format!("c{c}"), pin)
            })
            .collect();

        // Sprinkle macro connectivity: ~2% of nets gain a macro pin.
        if !plan.macros.is_empty() && rng.random_range(0.0..1.0) < 0.02 {
            let m = &plan.macros[rng.random_range(0..plan.macros.len())];
            pins.push((m.name.clone(), 0));
        }

        nets.push(NetSpec {
            name: format!("n{net_idx}"),
            pins,
        });
    }
    nets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{floorplan, library, natural};
    use rand::SeedableRng;

    fn nets(seed: u64) -> (GeneratorConfig, Library, Plan, Placement3d, Vec<NetSpec>) {
        let cfg = GeneratorConfig::small_demo(seed);
        let mut rng = SmallRng::seed_from_u64(seed);
        let lib = library::build(&cfg, &mut rng);
        let plan = floorplan::build(&cfg, &lib, 1.0, &mut rng).unwrap();
        let nat = natural::build(&cfg, &plan, &lib, &mut rng);
        let nets = build(&cfg, &lib, &plan, &nat, &mut rng);
        (cfg, lib, plan, nat, nets)
    }

    #[test]
    fn net_count_and_degrees_match_config() {
        let (cfg, _, _, _, nets) = nets(21);
        assert_eq!(nets.len(), cfg.scaled_nets());
        for net in &nets {
            assert!(
                net.pins.len() >= 2,
                "{} has {} pins",
                net.name,
                net.pins.len()
            );
            assert!(net.pins.len() <= 9);
        }
    }

    #[test]
    fn nets_have_no_duplicate_cells() {
        let (_, _, _, _, nets) = nets(22);
        for net in &nets {
            let cells: Vec<&str> = net
                .pins
                .iter()
                .map(|(n, _)| n.as_str())
                .filter(|n| n.starts_with('c'))
                .collect();
            let mut dedup = cells.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(cells.len(), dedup.len(), "{}", net.name);
        }
    }

    #[test]
    fn nets_are_spatially_local() {
        let (_, _, plan, nat, nets) = nets(23);
        // Mean net bounding-box half-perimeter should be far below the die
        // half-perimeter (locality), for cell pins at natural positions.
        let mut total = 0.0;
        for net in &nets {
            let pts: Vec<_> = net
                .pins
                .iter()
                .filter_map(|(name, _)| {
                    name.strip_prefix('c')
                        .and_then(|i| i.parse::<usize>().ok())
                        .map(|i| nat.pos(CellId::new(i)))
                })
                .collect();
            let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
            let bbox = (xs.iter().cloned().fold(f64::MIN, f64::max)
                - xs.iter().cloned().fold(f64::MAX, f64::min))
                + (ys.iter().cloned().fold(f64::MIN, f64::max)
                    - ys.iter().cloned().fold(f64::MAX, f64::min));
            total += bbox;
        }
        let mean = total / nets.len() as f64;
        let die_half_perim = (plan.width + plan.height) as f64;
        assert!(
            mean < die_half_perim * 0.6,
            "mean net bbox {mean} vs die {die_half_perim}"
        );
    }

    #[test]
    fn macro_pins_reference_existing_macros() {
        let (_, _, plan, _, nets) = nets(24);
        let macro_names: Vec<&str> = plan.macros.iter().map(|m| m.name.as_str()).collect();
        for net in &nets {
            for (name, pin) in &net.pins {
                if name.starts_with('m') {
                    assert!(macro_names.contains(&name.as_str()));
                    assert_eq!(*pin, 0);
                }
            }
        }
    }
}
