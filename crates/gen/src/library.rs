//! Standard-cell library synthesis and instance mix selection.

use crate::config::GeneratorConfig;
use rand::rngs::SmallRng;
use rand::Rng;

/// One synthesized standard lib cell (technology-independent part).
#[derive(Debug, Clone)]
pub(crate) struct StdCellDef {
    pub name: String,
    /// Width in sites; the per-tech DBU width is `sites * site_width`.
    pub sites: i64,
    /// Pin offsets as fractions of the footprint, shared across techs.
    pub pins: Vec<(String, f64, f64)>,
}

/// The synthesized library plus the per-instance lib cell choice.
#[derive(Debug, Clone)]
pub(crate) struct Library {
    pub std_cells: Vec<StdCellDef>,
    /// Lib cell index per cell instance (`c{i}`).
    pub instance_lib: Vec<usize>,
    /// Site width of the bottom die in DBU.
    pub site_bottom: i64,
    /// Site width of the top die in DBU.
    pub site_top: i64,
}

impl Library {
    /// DBU width of lib cell `lc` on the bottom die.
    pub fn width_bottom(&self, lc: usize) -> i64 {
        self.std_cells[lc].sites * self.site_bottom
    }

    /// DBU width of lib cell `lc` on the top die.
    pub fn width_top(&self, lc: usize) -> i64 {
        self.std_cells[lc].sites * self.site_top
    }

    /// Total instance area if every cell sat on the bottom die.
    pub fn total_area_bottom(&self, row_height: i64) -> i64 {
        self.instance_lib
            .iter()
            .map(|&lc| self.width_bottom(lc) * row_height)
            .sum()
    }

    /// Total instance area if every cell sat on the top die.
    pub fn total_area_top(&self, row_height: i64) -> i64 {
        self.instance_lib
            .iter()
            .map(|&lc| self.width_top(lc) * row_height)
            .sum()
    }

    /// Number of pins of lib cell `lc`.
    pub fn pin_count(&self, lc: usize) -> usize {
        self.std_cells[lc].pins.len()
    }
}

/// Derives the site width from a row height: roughly an eighth of the row,
/// matching typical standard-cell aspect ratios.
pub(crate) fn site_width(row_height: i64) -> i64 {
    (row_height / 8).max(1)
}

/// Synthesizes the library and the per-instance lib cell mix.
///
/// Widths follow a skewed mix: most instances are small (1–2 sites), a
/// tail is medium (3–6) and a few are wide (7–16), mirroring real designs
/// where inverters/buffers dominate.
pub(crate) fn build(cfg: &GeneratorConfig, rng: &mut SmallRng) -> Library {
    let n_lib = cfg.num_lib_cells;
    let mut std_cells = Vec::with_capacity(n_lib);
    for i in 0..n_lib {
        // Spread lib cell widths over the three bands.
        let sites = match i % 5 {
            0 | 1 => 1 + (i as i64 % 2),    // 1-2 sites
            2 | 3 => 3 + (i as i64 % 4),    // 3-6 sites
            _ => 7 + ((i as i64 * 3) % 10), // 7-16 sites
        };
        let num_pins = 2 + (i % 3); // 2-4 pins
        let pins = (0..num_pins)
            .map(|p| {
                (
                    format!("P{p}"),
                    rng.random_range(0.05..0.95),
                    rng.random_range(0.2..0.8),
                )
            })
            .collect();
        std_cells.push(StdCellDef {
            name: format!("SC{i}"),
            sites,
            pins,
        });
    }

    // Instance mix: weight small cells heavily.
    let weights: Vec<f64> = std_cells
        .iter()
        .map(|c| match c.sites {
            1..=2 => 8.0,
            3..=6 => 3.0,
            _ => 1.0,
        })
        .collect();
    let total: f64 = weights.iter().sum();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w / total;
            Some(*acc)
        })
        .collect();

    let n = cfg.scaled_cells();
    let instance_lib = (0..n)
        .map(|_| {
            let r: f64 = rng.random_range(0.0..1.0);
            cumulative.partition_point(|&c| c < r).min(n_lib - 1)
        })
        .collect();

    Library {
        std_cells,
        instance_lib,
        site_bottom: site_width(cfg.row_height_bottom),
        site_top: site_width(cfg.row_height_top),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn lib(seed: u64) -> Library {
        let cfg = GeneratorConfig::small_demo(seed);
        build(&cfg, &mut SmallRng::seed_from_u64(seed))
    }

    #[test]
    fn library_has_requested_variety_and_instances() {
        let cfg = GeneratorConfig::small_demo(3);
        let l = lib(3);
        assert_eq!(l.std_cells.len(), cfg.num_lib_cells);
        assert_eq!(l.instance_lib.len(), cfg.scaled_cells());
        assert!(l.instance_lib.iter().all(|&i| i < cfg.num_lib_cells));
    }

    #[test]
    fn widths_scale_with_site_width() {
        let l = lib(1);
        // demo: bottom h=12 -> site 1; top h=10 -> site 1.
        for i in 0..l.std_cells.len() {
            assert_eq!(l.width_bottom(i), l.std_cells[i].sites * l.site_bottom);
            assert!(l.width_bottom(i) > 0);
            assert!(l.width_top(i) > 0);
        }
    }

    #[test]
    fn site_width_floor_is_one() {
        assert_eq!(site_width(4), 1);
        assert_eq!(site_width(33), 4);
        assert_eq!(site_width(252), 31);
    }

    #[test]
    fn small_cells_dominate_the_mix() {
        let l = lib(2);
        let small = l
            .instance_lib
            .iter()
            .filter(|&&i| l.std_cells[i].sites <= 2)
            .count();
        assert!(
            small * 2 > l.instance_lib.len(),
            "small cells are {small}/{}",
            l.instance_lib.len()
        );
    }

    #[test]
    fn pin_fractions_are_interior() {
        let l = lib(4);
        for c in &l.std_cells {
            assert!(!c.pins.is_empty());
            for (_, fx, fy) in &c.pins {
                assert!((0.0..1.0).contains(fx));
                assert!((0.0..1.0).contains(fy));
            }
        }
    }
}
