//! Generator configuration, presets, and the generation pipeline.

use crate::{floorplan, library, natural, netlist};
use flow3d_db::{DbError, Design, Placement3d};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;

/// An error raised by the generator.
#[derive(Debug)]
#[non_exhaustive]
// flow3d-tidy: allow(dead-pub) — generator API surface (flow3d::gen) for custom benchmark recipes
pub enum GenError {
    /// The configuration is contradictory (zero cells, bad utilization...).
    InvalidConfig {
        /// Explanation.
        detail: String,
    },
    /// The generated case could not be made feasible (cells cannot fit
    /// under the utilization constraints even after growing the dies).
    Infeasible {
        /// Explanation.
        detail: String,
    },
    /// The assembled design failed database validation (generator bug).
    Db(DbError),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::InvalidConfig { detail } => write!(f, "invalid generator config: {detail}"),
            GenError::Infeasible { detail } => write!(f, "infeasible case: {detail}"),
            GenError::Db(e) => write!(f, "generated design rejected: {e}"),
        }
    }
}

impl Error for GenError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GenError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for GenError {
    fn from(e: DbError) -> Self {
        GenError::Db(e)
    }
}

/// A generated benchmark: the design plus the clustered *natural*
/// placement the netlist was drawn around (used to seed global placement).
#[derive(Debug, Clone)]
pub struct GeneratedCase {
    /// The validated design.
    pub design: Design,
    /// Clustered continuous placement with die affinities; the input to
    /// [`flow3d-gp`](https://docs.rs/flow3d-gp) or, directly, a legalizer.
    pub natural: Placement3d,
}

/// Configuration of one synthetic benchmark.
///
/// Use the presets ([`iccad2022`](Self::iccad2022),
/// [`iccad2023`](Self::iccad2023), [`small_demo`](Self::small_demo)) or
/// fill the fields directly.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Case name (becomes the design name).
    pub name: String,
    /// RNG seed; everything is deterministic given the seed.
    pub seed: u64,
    /// Number of movable standard cells.
    pub num_cells: usize,
    /// Number of fixed macros (0 for the 2022 suite).
    pub num_macros: usize,
    /// Number of nets.
    pub num_nets: usize,
    /// Row height of the top die (`h_r^+`).
    pub row_height_top: i64,
    /// Row height of the bottom die (`h_r^-`).
    pub row_height_bottom: i64,
    /// Number of distinct standard lib cells.
    pub num_lib_cells: usize,
    /// Natural-placement density target that sizes the dies (fraction of
    /// free area the cells would occupy if split evenly).
    pub target_density: f64,
    /// Contest `TopDieMaxUtil` as a fraction.
    pub max_util_top: f64,
    /// Contest `BottomDieMaxUtil` as a fraction.
    pub max_util_bottom: f64,
    /// Number of placement hotspots in the natural placement.
    pub num_clusters: usize,
    /// Cluster standard deviation relative to the die width.
    pub cluster_spread: f64,
    /// Uniform scale factor applied to `num_cells`, `num_nets` and
    /// `num_macros` (for quick reduced-size runs; 1.0 = full size).
    pub scale: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            name: "case".into(),
            seed: 1,
            num_cells: 1000,
            num_macros: 0,
            num_nets: 1000,
            row_height_top: 12,
            row_height_bottom: 12,
            num_lib_cells: 24,
            target_density: 0.72,
            max_util_top: 0.85,
            max_util_bottom: 0.85,
            num_clusters: 8,
            cluster_spread: 0.12,
            scale: 1.0,
        }
    }
}

impl GeneratorConfig {
    /// A tiny case (a few hundred cells) for demos and tests.
    pub fn small_demo(seed: u64) -> Self {
        Self {
            name: "demo".into(),
            seed,
            num_cells: 400,
            num_macros: 2,
            num_nets: 420,
            row_height_top: 10,
            row_height_bottom: 12,
            num_lib_cells: 12,
            num_clusters: 4,
            ..Self::default()
        }
    }

    /// Preset matching one ICCAD 2022 suite row of Table II
    /// (standard cells only). Returns `None` for unknown case names; see
    /// [`crate::ICCAD2022_CASES`].
    pub fn iccad2022(case: &str) -> Option<Self> {
        // (cells, nets, h_r^+, h_r^-) from Table II.
        let (cells, nets, ht, hb) = match case {
            "case2" => (2_735, 2_644, 176, 252),
            "case2h" => (2_735, 2_644, 252, 252),
            "case3" => (44_764, 44_360, 115, 115),
            "case3h" => (44_764, 44_360, 92, 115),
            "case4" => (220_845, 220_071, 92, 115),
            "case4h" => (220_845, 220_071, 103, 115),
            _ => return None,
        };
        Some(Self {
            name: format!("iccad2022_{case}"),
            seed: 0x2022 ^ fxhash(case),
            num_cells: cells,
            num_macros: 0,
            num_nets: nets,
            row_height_top: ht,
            row_height_bottom: hb,
            num_lib_cells: 32,
            num_clusters: (cells / 2500).clamp(4, 40),
            ..Self::default()
        })
    }

    /// Preset matching one ICCAD 2023 suite row of Table II (mixed-size:
    /// macros present). Returns `None` for unknown case names; see
    /// [`crate::ICCAD2023_CASES`].
    ///
    /// The paper's Table II as available to us truncates the case4 rows;
    /// their cell/net counts here are estimates consistent with the
    /// reported runtimes (documented in `DESIGN.md`).
    pub fn iccad2023(case: &str) -> Option<Self> {
        let (cells, macros, nets, ht, hb) = match case {
            "case2" => (13_901, 6, 19_547, 33, 33),
            "case2h1" => (13_901, 6, 19_547, 33, 48),
            "case2h2" => (13_901, 6, 19_547, 33, 48),
            "case3" => (124_231, 34, 164_429, 33, 48),
            "case3h" => (124_231, 34, 164_429, 33, 48),
            // Table II rows truncated in our source; sized from runtimes.
            "case4" => (300_000, 64, 350_000, 33, 33),
            "case4h" => (300_000, 64, 350_000, 33, 48),
            _ => return None,
        };
        Some(Self {
            name: format!("iccad2023_{case}"),
            seed: 0x2023 ^ fxhash(case),
            num_cells: cells,
            num_macros: macros,
            num_nets: nets,
            row_height_top: ht,
            row_height_bottom: hb,
            num_lib_cells: 32,
            num_clusters: (cells / 2500).clamp(4, 48),
            // Macro-heavy cases run a bit denser, like the contest set.
            target_density: 0.75,
            ..Self::default()
        })
    }

    /// Million-cell scaling family: synthetic cases beyond the contest
    /// suites, sized to exercise the streaming reader and the SoA
    /// legalization view at memory-bound scale. Returns `None` for
    /// unknown case names; see [`crate::MILLION_CASES`].
    ///
    /// The `m1`/`m1h` rows carry one million standard cells (`h` =
    /// heterogeneous row heights, like the contest `h` rows); `m2`
    /// doubles that. Generate CI-sized slices with
    /// [`scale`](Self::scale) < 1 — the golden-hash tests pin the family
    /// at `scale = 0.01`, and the `#[ignore]`d smoke tests run it full.
    pub fn million(case: &str) -> Option<Self> {
        let (cells, macros, nets, ht, hb) = match case {
            "m1" => (1_000_000, 0, 1_050_000, 92, 92),
            "m1h" => (1_000_000, 16, 1_050_000, 92, 115),
            "m2" => (2_000_000, 0, 2_100_000, 92, 92),
            _ => return None,
        };
        Some(Self {
            name: format!("million_{case}"),
            seed: 0x100_0000 ^ fxhash(case),
            num_cells: cells,
            num_macros: macros,
            num_nets: nets,
            row_height_top: ht,
            row_height_bottom: hb,
            num_lib_cells: 32,
            num_clusters: 64,
            ..Self::default()
        })
    }

    /// Scaled cell count after applying [`scale`](Self::scale).
    pub fn scaled_cells(&self) -> usize {
        ((self.num_cells as f64 * self.scale) as usize).max(1)
    }

    /// Scaled net count.
    pub fn scaled_nets(&self) -> usize {
        (self.num_nets as f64 * self.scale) as usize
    }

    /// Scaled macro count.
    pub fn scaled_macros(&self) -> usize {
        if self.num_macros == 0 {
            0
        } else {
            ((self.num_macros as f64 * self.scale) as usize).max(1)
        }
    }

    /// Runs the full generation pipeline on an auto-sized worker pool
    /// (see [`flow3d_par::resolve_threads`]; honours `FLOW3D_THREADS`).
    ///
    /// # Errors
    ///
    /// [`GenError::InvalidConfig`] for contradictory parameters;
    /// [`GenError::Infeasible`] if the case cannot fit its cells under the
    /// utilization constraints even after repeatedly growing the dies.
    pub fn generate(&self) -> Result<GeneratedCase, GenError> {
        self.generate_with_threads(flow3d_par::resolve_threads(0))
    }

    /// [`generate`](Self::generate) with an explicit worker count.
    ///
    /// Case construction grows the dies until the natural die split fits
    /// under the utilization caps. The growth attempts are *speculative*:
    /// attempt `k` rebuilds floorplan and natural placement from a fresh
    /// RNG at die growth `1.18^k`, so every attempt is a pure function of
    /// `(config, k)` and the serial loop simply takes the first feasible
    /// one in order. With more than one worker, all attempts race on the
    /// pool and the same first-feasible selection runs over the collected
    /// results — the generated case is therefore identical for every
    /// thread count.
    ///
    /// # Errors
    ///
    /// Same as [`generate`](Self::generate).
    pub fn generate_with_threads(&self, threads: usize) -> Result<GeneratedCase, GenError> {
        self.validate()?;
        let mut rng = SmallRng::seed_from_u64(self.seed);

        let lib = library::build(self, &mut rng);

        const GROWTH_ATTEMPTS: usize = 6;
        type Attempt = Option<(floorplan::Plan, Placement3d, SmallRng)>;
        let attempt = |k: usize| -> Result<Attempt, GenError> {
            // The same growth sequence as the serial loop's repeated
            // `growth *= 1.18` (a fold, not `powi`: bit-identical).
            let growth = (0..k).fold(1.0f64, |g, _| g * 1.18);
            let mut rng = SmallRng::seed_from_u64(self.seed.wrapping_add(1));
            let plan = floorplan::build(self, &lib, growth, &mut rng)?;
            let natural = natural::build(self, &plan, &lib, &mut rng);
            if floorplan::infeasibility(self, &lib, &plan, &natural).is_some() {
                return Ok(None);
            }
            Ok(Some((plan, natural, rng)))
        };

        let chosen = if threads <= 1 {
            // Serial: try growth factors in order, stopping at the first
            // feasible (or failing) attempt.
            let mut found = None;
            for k in 0..GROWTH_ATTEMPTS {
                if let Some(hit) = attempt(k)? {
                    found = Some(hit);
                    break;
                }
            }
            found
        } else {
            // Speculative: all growth factors race on the pool; the scan
            // below replays the serial loop's decisions over the results.
            let attempts = flow3d_par::par_map(threads, GROWTH_ATTEMPTS, attempt);
            let mut found = None;
            for a in attempts {
                if let Some(hit) = a? {
                    found = Some(hit);
                    break;
                }
            }
            found
        };

        let Some((plan, natural, mut rng)) = chosen else {
            return Err(GenError::Infeasible {
                detail: format!(
                    "could not fit {} cells under utilization {}/{} after growing dies",
                    self.scaled_cells(),
                    self.max_util_top,
                    self.max_util_bottom
                ),
            });
        };
        let nets = netlist::build(self, &lib, &plan, &natural, &mut rng);
        let design = crate::floorplan::assemble(self, &lib, &plan, &nets)?;
        Ok(GeneratedCase { design, natural })
    }

    fn validate(&self) -> Result<(), GenError> {
        let fail = |detail: &str| {
            Err(GenError::InvalidConfig {
                detail: detail.into(),
            })
        };
        if self.num_cells == 0 {
            return fail("num_cells must be positive");
        }
        if self.row_height_top <= 0 || self.row_height_bottom <= 0 {
            return fail("row heights must be positive");
        }
        if self.num_lib_cells == 0 {
            return fail("num_lib_cells must be positive");
        }
        if !(0.05..=0.98).contains(&self.target_density) {
            return fail("target_density must be in [0.05, 0.98]");
        }
        for u in [self.max_util_top, self.max_util_bottom] {
            if !(u > 0.0 && u <= 1.0) {
                return fail("max utilizations must be in (0, 1]");
            }
        }
        if self.target_density > self.max_util_top.min(self.max_util_bottom) {
            return fail("target_density exceeds the utilization caps");
        }
        if self.scale <= 0.0 || self.scale > 1.0 {
            return fail("scale must be in (0, 1]");
        }
        if self.num_clusters == 0 {
            return fail("num_clusters must be positive");
        }
        Ok(())
    }
}

/// Tiny deterministic string hash for preset seeds.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_all_published_cases() {
        for c in crate::ICCAD2022_CASES {
            assert!(GeneratorConfig::iccad2022(c).is_some(), "{c}");
        }
        for c in crate::ICCAD2023_CASES {
            assert!(GeneratorConfig::iccad2023(c).is_some(), "{c}");
        }
        for c in crate::MILLION_CASES {
            assert!(GeneratorConfig::million(c).is_some(), "{c}");
        }
        assert!(GeneratorConfig::iccad2022("case9").is_none());
        assert!(GeneratorConfig::iccad2023("case9").is_none());
        assert!(GeneratorConfig::million("m9").is_none());
    }

    #[test]
    fn million_presets_carry_seven_figures() {
        for c in crate::MILLION_CASES {
            let cfg = GeneratorConfig::million(c).unwrap();
            assert!(cfg.num_cells >= 1_000_000, "{c}: {}", cfg.num_cells);
            assert!(cfg.num_nets > cfg.num_cells, "{c}");
        }
        let het = GeneratorConfig::million("m1h").unwrap();
        assert_ne!(het.row_height_top, het.row_height_bottom);
        assert!(het.num_macros > 0);
    }

    #[test]
    fn preset_statistics_match_table2() {
        let c = GeneratorConfig::iccad2022("case3h").unwrap();
        assert_eq!(c.num_cells, 44_764);
        assert_eq!(c.num_nets, 44_360);
        assert_eq!(c.row_height_top, 92);
        assert_eq!(c.row_height_bottom, 115);
        assert_eq!(c.num_macros, 0);

        let c = GeneratorConfig::iccad2023("case2h1").unwrap();
        assert_eq!(c.num_cells, 13_901);
        assert_eq!(c.num_macros, 6);
        assert_eq!(c.num_nets, 19_547);
        assert_eq!((c.row_height_top, c.row_height_bottom), (33, 48));
    }

    #[test]
    fn different_cases_get_different_seeds() {
        let a = GeneratorConfig::iccad2022("case2").unwrap().seed;
        let b = GeneratorConfig::iccad2022("case2h").unwrap().seed;
        assert_ne!(a, b);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = GeneratorConfig::small_demo(1);
        c.num_cells = 0;
        assert!(matches!(c.generate(), Err(GenError::InvalidConfig { .. })));

        let mut c = GeneratorConfig::small_demo(1);
        c.target_density = 0.95;
        c.max_util_top = 0.5;
        assert!(matches!(c.generate(), Err(GenError::InvalidConfig { .. })));

        let mut c = GeneratorConfig::small_demo(1);
        c.scale = 0.0;
        assert!(matches!(c.generate(), Err(GenError::InvalidConfig { .. })));
    }

    #[test]
    fn scaling_reduces_counts_but_keeps_macros_nonzero() {
        let mut c = GeneratorConfig::iccad2023("case2").unwrap();
        c.scale = 0.1;
        assert_eq!(c.scaled_cells(), 1390);
        assert_eq!(c.scaled_macros(), 1.max((6.0 * 0.1) as usize));
        assert!(c.scaled_macros() >= 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = GeneratorConfig::small_demo(9).generate().unwrap();
        let b = GeneratorConfig::small_demo(9).generate().unwrap();
        assert_eq!(a.design, b.design);
        assert_eq!(a.natural, b.natural);
        let c = GeneratorConfig::small_demo(10).generate().unwrap();
        assert_ne!(a.natural, c.natural);
    }

    #[test]
    fn speculative_growth_matches_serial() {
        // The parallel path must pick the same growth attempt and emit a
        // bit-identical case, including under a config that needs to grow
        // its dies (high density leaves little slack for the die split).
        let mut dense = GeneratorConfig::small_demo(3);
        dense.target_density = 0.84;
        dense.max_util_top = 0.85;
        dense.max_util_bottom = 0.85;
        for cfg in [GeneratorConfig::small_demo(7), dense] {
            let serial = cfg.generate_with_threads(1).unwrap();
            for threads in [2, 4, 8] {
                let parallel = cfg.generate_with_threads(threads).unwrap();
                assert_eq!(parallel.design, serial.design, "threads={threads}");
                assert_eq!(parallel.natural, serial.natural, "threads={threads}");
            }
        }
    }
}
