//! Golden snapshot tests for the case generator: the same seed must
//! produce the same case *content*, pinned as an FNV-1a hash over the
//! serialized case text. A changed hash means the generator's output
//! changed for existing seeds — which silently invalidates every
//! recorded experiment, so it must be a conscious, reviewed decision
//! (update the constant in the same commit that changes the generator).

use flow3d_gen::GeneratorConfig;

/// FNV-1a over the serialized case file — stable across platforms,
/// dependency-free, and sensitive to any byte change.
fn case_hash(cfg: &GeneratorConfig) -> u64 {
    let generated = cfg.generate().expect("generation failed");
    let mut text = String::new();
    flow3d_io::write_case(&generated.design, &mut text).expect("serialize case");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const SMALL_DEMO_SEED1_HASH: u64 = 6_750_976_735_181_162_110;
const ICCAD2022_CASE2_HASH: u64 = 7_470_959_955_042_146_623;
// The million family pinned at scale = 0.01 (10k/20k cells): cheap
// enough for CI, still the exact code path the full-size cases take.
const MILLION_M1_SCALE001_HASH: u64 = 11_381_635_972_017_256_235;
const MILLION_M1H_SCALE001_HASH: u64 = 13_173_355_869_758_790_387;
const MILLION_M2_SCALE001_HASH: u64 = 10_788_629_626_277_523_218;

#[test]
fn small_demo_case_content_is_pinned() {
    let cfg = GeneratorConfig::small_demo(1);
    assert_eq!(
        case_hash(&cfg),
        SMALL_DEMO_SEED1_HASH,
        "small_demo(1) content changed; if intentional, update the pinned hash"
    );
}

#[test]
fn table2_scale_case_content_is_pinned() {
    let cfg = GeneratorConfig::iccad2022("case2").unwrap();
    assert_eq!(
        case_hash(&cfg),
        ICCAD2022_CASE2_HASH,
        "iccad2022 case2 content changed; if intentional, update the pinned hash"
    );
}

#[test]
fn repeated_generation_hashes_identically() {
    let cfg = GeneratorConfig::small_demo(33);
    assert_eq!(case_hash(&cfg), case_hash(&cfg));
}

#[test]
fn million_family_content_is_pinned_at_ci_scale() {
    for (case, expected) in [
        ("m1", MILLION_M1_SCALE001_HASH),
        ("m1h", MILLION_M1H_SCALE001_HASH),
        ("m2", MILLION_M2_SCALE001_HASH),
    ] {
        let mut cfg = GeneratorConfig::million(case).unwrap();
        cfg.scale = 0.01;
        assert_eq!(
            case_hash(&cfg),
            expected,
            "million {case} (scale 0.01) content changed; if intentional, update the pinned hash"
        );
    }
}

/// Full-size smoke: one million cells generate, serialize, and re-parse
/// through the streaming reader. Minutes of work — run explicitly with
/// `cargo test -p flow3d-gen -- --ignored`.
#[test]
#[ignore = "full-size million-cell generation; run with -- --ignored"]
fn million_m1_generates_at_full_size() {
    let cfg = GeneratorConfig::million("m1").unwrap();
    let case = cfg.generate().expect("million m1 generation failed");
    assert!(case.design.num_cells() >= 1_000_000);
    let mut text = String::new();
    flow3d_io::write_case(&case.design, &mut text).expect("serialize");
    let reparsed = flow3d_io::parse_case_reader(text.as_bytes()).expect("streaming reparse");
    assert_eq!(reparsed, case.design);
}
