//! Tetris legalization (Hill, US patent 6,370,673).
//!
//! The classical greedy legalizer: cells are processed in ascending x
//! order and each is committed to the nearest free location on its die —
//! never to be moved again. Free space is tracked as per-segment gap
//! lists; the candidate rows are scanned outward from the cell's anchor
//! row with a distance-based early exit. Greedy commitment is what makes
//! Tetris fast, and what makes cells processed late travel far.

use flow3d_core::assign;
use flow3d_core::{LegalizeError, LegalizeOutcome, LegalizeStats, Legalizer};
use flow3d_db::{CellId, Design, DieId, LegalPlacement, Placement3d, RowId, RowLayout};
use flow3d_geom::Point;
use flow3d_obs::{Obs, ObsExt};

/// The Tetris greedy legalizer.
#[derive(Debug, Clone, Default)]
pub struct TetrisLegalizer {
    _private: (),
}

impl TetrisLegalizer {
    /// Creates a Tetris legalizer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Free gaps of one segment, sorted by x. All bounds stay site-aligned
/// because placed widths are site multiples on site-aligned positions.
#[derive(Debug, Clone)]
struct GapList {
    gaps: Vec<(i64, i64)>,
}

impl GapList {
    fn new(lo: i64, hi: i64) -> Self {
        Self {
            gaps: vec![(lo, hi)],
        }
    }

    /// Best placement of a `width`-wide cell near `x`: returns
    /// `(position, |position - x|)` over all gaps, scanning outward from
    /// `x` and stopping as soon as a fitting gap is found on each side.
    fn best_fit(&self, x: i64, width: i64, snap: impl Fn(i64) -> i64) -> Option<(i64, i64)> {
        let idx = self.gaps.partition_point(|&(_, hi)| hi <= x);
        let mut best: Option<(i64, i64)> = None;
        let mut consider = |gap: (i64, i64)| -> bool {
            let (lo, hi) = gap;
            if hi - lo < width {
                return false;
            }
            let pos = snap(x).clamp(lo, hi - width);
            let dist = (pos - x).abs();
            if best.is_none_or(|(_, d)| dist < d) {
                best = Some((pos, dist));
            }
            true
        };
        // Rightward (including the gap containing x).
        for &gap in &self.gaps[idx..] {
            if consider(gap) {
                break;
            }
        }
        // Leftward.
        for &gap in self.gaps[..idx].iter().rev() {
            if consider(gap) {
                break;
            }
        }
        best
    }

    /// Carves `[pos, pos + width)` out of its gap.
    fn occupy(&mut self, pos: i64, width: i64) {
        let idx = self
            .gaps
            .partition_point(|&(_, hi)| hi <= pos)
            .min(self.gaps.len().saturating_sub(1));
        let (lo, hi) = self.gaps[idx];
        debug_assert!(
            lo <= pos && pos + width <= hi,
            "occupy outside gap: [{pos}, {}) not in [{lo}, {hi})",
            pos + width
        );
        let left = (lo, pos);
        let right = (pos + width, hi);
        match (left.1 > left.0, right.1 > right.0) {
            (true, true) => {
                self.gaps[idx] = left;
                self.gaps.insert(idx + 1, right);
            }
            (true, false) => self.gaps[idx] = left,
            (false, true) => self.gaps[idx] = right,
            (false, false) => {
                self.gaps.remove(idx);
            }
        }
    }
}

/// The greedy packing loop: each cell, in ascending anchor-x order, is
/// committed to the nearest free location on its assigned die.
fn pack(
    design: &Design,
    layout: &RowLayout,
    dies: &[DieId],
    anchors: &[Point],
) -> Result<LegalPlacement, LegalizeError> {
    let mut gaps: Vec<GapList> = layout
        .segments()
        .iter()
        .map(|s| GapList::new(s.span.lo, s.span.hi))
        .collect();

    // Ascending anchor x (the classical Tetris order).
    let mut order: Vec<usize> = (0..design.num_cells()).collect();
    order.sort_by_key(|&i| (anchors[i].x, i));

    let mut placement = LegalPlacement::new(design.num_cells());
    for i in order {
        let cell = CellId::new(i);
        let die_id = dies[i];
        let die = design.die(die_id);
        let w = design.cell_width(cell, die_id);
        let a = anchors[i];
        let num_rows = die.num_rows();
        if num_rows == 0 {
            return Err(LegalizeError::NoPosition { cell });
        }
        let center = die
            .nearest_row(a.y)
            .map(|r| r.id.index() as i64)
            .unwrap_or(0);

        let mut best: Option<(i64, usize, i64)> = None; // (cost, seg idx, x)
        for step in 0..2 * num_rows as i64 {
            let offset = if step % 2 == 0 {
                step / 2
            } else {
                -(step / 2 + 1)
            };
            let row_idx = center + offset;
            if row_idx < 0 || row_idx >= num_rows as i64 {
                continue;
            }
            let row_y = die.rows[row_idx as usize].y;
            let dy = (row_y - a.y).abs();
            if let Some((best_cost, _, _)) = best {
                if dy >= best_cost {
                    if offset > 0 {
                        continue;
                    }
                    break;
                }
            }
            for &sid in layout.segments_in_row(die_id, RowId::new(row_idx as usize)) {
                if let Some((x, dx)) = gaps[sid.index()].best_fit(a.x, w, |x| die.snap_to_site(x)) {
                    let cost = dx + dy;
                    if best.is_none_or(|(c, _, _)| cost < c) {
                        best = Some((cost, sid.index(), x));
                    }
                }
            }
        }
        let Some((_, seg_idx, x)) = best else {
            return Err(LegalizeError::NoPosition { cell });
        };
        let seg = &layout.segments()[seg_idx];
        placement.place(cell, Point::new(x, seg.y), die_id);
        gaps[seg_idx].occupy(x, w);
    }
    Ok(placement)
}

/// The pipeline body, wrapped in the `"legalize"` phase by
/// [`TetrisLegalizer::legalize_observed`].
fn run(
    design: &Design,
    global: &Placement3d,
    mut obs: Obs<'_>,
) -> Result<LegalizeOutcome, LegalizeError> {
    obs.begin("partition");
    let layout = RowLayout::build(design);
    let dies = assign::partition_dies(design, global);
    obs.end("partition");
    let dies = dies?;
    let anchors = assign::anchors(design, global);

    obs.begin("pack");
    let packed = pack(design, &layout, &dies, &anchors);
    obs.end("pack");
    let placement = packed?;

    let stats = LegalizeStats {
        cross_die_moves: placement.cross_die_moves(global, design.num_dies()),
        ..Default::default()
    };
    Ok(LegalizeOutcome { placement, stats })
}

impl Legalizer for TetrisLegalizer {
    fn name(&self) -> &str {
        "tetris"
    }

    fn legalize(
        &self,
        design: &Design,
        global: &Placement3d,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        self.legalize_observed(design, global, None)
    }

    fn legalize_observed(
        &self,
        design: &Design,
        global: &Placement3d,
        mut obs: Obs<'_>,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        if global.num_cells() != design.num_cells() {
            return Err(LegalizeError::PlacementMismatch {
                design_cells: design.num_cells(),
                placement_cells: global.num_cells(),
            });
        }
        obs.begin("legalize");
        let result = run(design, global, obs.reborrow());
        obs.end("legalize");
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_db::{DesignBuilder, DieId, DieSpec, LibCellSpec, TechnologySpec};
    use flow3d_geom::FPoint;
    use flow3d_metrics::{check_legal, displacement_stats};

    fn design(n: usize, width: i64) -> Design {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", width, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 400, 40), 10, 1, 1.0));
        for i in 0..n {
            b = b.cell(format!("u{i}"), "C");
        }
        b.build().unwrap()
    }

    #[test]
    fn gap_list_occupy_splits_and_shrinks() {
        let mut g = GapList::new(0, 100);
        g.occupy(40, 20);
        assert_eq!(g.gaps, vec![(0, 40), (60, 100)]);
        g.occupy(0, 40);
        assert_eq!(g.gaps, vec![(60, 100)]);
        g.occupy(90, 10);
        assert_eq!(g.gaps, vec![(60, 90)]);
        g.occupy(60, 30);
        assert!(g.gaps.is_empty());
    }

    #[test]
    fn gap_list_best_fit_prefers_containing_gap() {
        let mut g = GapList::new(0, 200);
        g.occupy(50, 100); // gaps [0,50) and [150,200)
        let (pos, dist) = g.best_fit(100, 20, |x| x).unwrap();
        // 100 is occupied; nearest fits are 30 (left, dist 70) or 150
        // (right, dist 50).
        assert_eq!((pos, dist), (150, 50));
        assert!(g.best_fit(100, 60, |x| x).is_none());
    }

    #[test]
    fn non_overlapping_cells_stay_near_anchors() {
        let d = design(4, 20);
        let mut gp = Placement3d::new(4);
        for i in 0..4 {
            gp.set_pos(CellId::new(i), FPoint::new(i as f64 * 50.0, 10.0));
        }
        let outcome = TetrisLegalizer::new().legalize(&d, &gp).unwrap();
        assert!(check_legal(&d, &outcome.placement).is_legal());
        let s = displacement_stats(&d, &gp, &outcome.placement);
        assert_eq!(s.max_dbu, 0.0);
    }

    #[test]
    fn clumped_cells_spread_legally() {
        let d = design(10, 30);
        let mut gp = Placement3d::new(10);
        for i in 0..10 {
            gp.set_pos(CellId::new(i), FPoint::new(100.0, 10.0));
        }
        let outcome = TetrisLegalizer::new().legalize(&d, &gp).unwrap();
        let report = check_legal(&d, &outcome.placement);
        assert!(report.is_legal(), "{report}");
    }

    #[test]
    fn overfull_die_is_an_error_not_a_panic() {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 100, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 400, 40), 10, 1, 1.0));
        for i in 0..40 {
            b = b.cell(format!("u{i}"), "C");
        }
        let d = b.build().unwrap();
        let gp = Placement3d::new(40); // all at origin, all bottom
        let err = TetrisLegalizer::new().legalize(&d, &gp).unwrap_err();
        assert!(matches!(
            err,
            LegalizeError::DieOverflow { .. } | LegalizeError::NoPosition { .. }
        ));
    }

    #[test]
    fn respects_fixed_die_assignment() {
        let d = design(6, 20);
        let mut gp = Placement3d::new(6);
        for i in 0..6 {
            gp.set_pos(CellId::new(i), FPoint::new(i as f64 * 30.0, 0.0));
            gp.set_die_affinity(CellId::new(i), if i % 2 == 0 { 0.0 } else { 1.0 });
        }
        let outcome = TetrisLegalizer::new().legalize(&d, &gp).unwrap();
        for i in 0..6 {
            let expect = if i % 2 == 0 {
                DieId::BOTTOM
            } else {
                DieId::TOP
            };
            assert_eq!(outcome.placement.die(CellId::new(i)), expect);
        }
        assert_eq!(outcome.stats.cross_die_moves, 0);
    }

    #[test]
    fn fills_fragmented_space_from_gaps() {
        // Single-row die: a cell arriving last must find the interior gap
        // left behind earlier instead of failing at the frontier.
        let d = {
            let mut b = DesignBuilder::new("t")
                .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 80, 10)))
                .die(DieSpec::new("bottom", "T", (0, 0, 400, 10), 10, 1, 1.0))
                .die(DieSpec::new("top", "T", (0, 0, 400, 10), 10, 1, 1.0));
            for i in 0..5 {
                b = b.cell(format!("u{i}"), "C");
            }
            b.build().unwrap()
        };
        let mut gp = Placement3d::new(5);
        // Cells placed in x order at 0, 80, 240, 320 leave gap [160, 240).
        for (i, x) in [(0, 0.0), (1, 80.0), (2, 240.0), (3, 320.0)] {
            gp.set_pos(CellId::new(i), FPoint::new(x, 0.0));
        }
        // The fifth arrives last (largest x) and only fits in the gap.
        gp.set_pos(CellId::new(4), FPoint::new(330.0, 0.0));
        let outcome = TetrisLegalizer::new().legalize(&d, &gp).unwrap();
        assert!(check_legal(&d, &outcome.placement).is_legal());
        assert_eq!(outcome.placement.pos(CellId::new(4)), Point::new(160, 0));
    }
}
