//! BonnPlaceLegal-style flow legalization (Brenner, TCAD 2013).
//!
//! The same bin/flow formulation as 3D-Flow, restricted the way the paper
//! characterizes BonnPlaceLegal (§III-B): per-die 2D grids (no die-to-die
//! edges), edge costs clamped non-negative, and true Dijkstra searches —
//! label-correcting relaxation over the whole grid with an early exit at
//! the first absorbing bin popped. The repeated full-grid searches are
//! what makes this approach scale poorly on large designs (Tables III/IV).

use flow3d_core::assign;
use flow3d_core::augment::realize;
use flow3d_core::driver::{bin_widths, placerow_all_observed, teleport_fallback};
use flow3d_core::grid::{BinGrid, BinId, EdgeKind};
use flow3d_core::placerow::RowAlgo;
use flow3d_core::search::{AugmentingPath, PathStep};
use flow3d_core::selection::{select_moves, SelectionParams};
use flow3d_core::state::FlowState;
use flow3d_core::{LegalizeError, LegalizeOutcome, LegalizeStats, Legalizer};
use flow3d_db::{Design, Placement3d, RowLayout};
use flow3d_obs::{keys, Obs, ObsExt};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of the Bonn-style legalizer.
#[derive(Debug, Clone, PartialEq)]
// flow3d-tidy: allow(dead-pub) — baseline knob surface, reachable as flow3d::baselines for external comparisons
pub struct BonnConfig {
    /// Bin width as a multiple of the mean cell width (same default as
    /// 3D-Flow's flow phase for comparability).
    pub bin_width_factor: f64,
    /// Stop each Dijkstra at the first absorbing bin popped instead of
    /// completing the shortest-path tree. The vanilla successive-
    /// shortest-path algorithm the paper benchmarks computes full trees
    /// (that is what makes it slow on large designs), so this defaults to
    /// `false`.
    pub early_exit: bool,
}

impl Default for BonnConfig {
    fn default() -> Self {
        Self {
            bin_width_factor: 10.0,
            early_exit: false,
        }
    }
}

/// The BonnPlaceLegal-style legalizer.
#[derive(Debug, Clone, Default)]
pub struct BonnLegalizer {
    config: BonnConfig,
}

impl BonnLegalizer {
    /// Creates a Bonn-style legalizer.
    pub fn new(config: BonnConfig) -> Self {
        Self { config }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Dijkstra over the bin grid with non-negative move costs. Unlike the
/// branch-and-bound search, labels may be corrected (a bin can be relaxed
/// several times), and the search exits at the first absorbing bin popped
/// — the classical shortest augmenting path.
fn dijkstra(
    state: &FlowState<'_>,
    source: BinId,
    limit: i64,
    params: &SelectionParams,
    early_exit: bool,
    expanded: &mut usize,
) -> Option<AugmentingPath> {
    let supply = state.sup(source).min(limit);
    if supply <= 0 {
        return None;
    }
    let n = state.grid.num_bins();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<(BinId, EdgeKind)>> = vec![None; n];
    let mut inflow = vec![0i64; n];
    let mut done = vec![false; n];

    dist[source.index()] = 0.0;
    inflow[source.index()] = supply;
    let mut heap: BinaryHeap<Reverse<(OrdF64, BinId)>> = BinaryHeap::new();
    heap.push(Reverse((OrdF64(0.0), source)));
    let mut best: Option<(BinId, f64)> = None;

    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if done[u.index()] || d > dist[u.index()] {
            continue;
        }
        done[u.index()] = true;
        *expanded += 1;

        if u != source && inflow[u.index()] <= state.dem(u) {
            // Pops come in nondecreasing cost order, so the first
            // absorbing bin is the shortest augmenting path. Vanilla SSP
            // still finishes the whole shortest-path tree before
            // augmenting; `early_exit` skips that busywork.
            if best.is_none() {
                best = Some((u, dist[u.index()]));
            }
            if early_exit {
                break;
            }
            continue;
        }

        let needed = inflow[u.index()] - state.dem(u);
        if needed <= 0 {
            continue;
        }
        for &(v, kind) in state.grid.neighbors(u) {
            if done[v.index()] {
                continue;
            }
            let Some(sel) = select_moves(state, u, v, kind, needed, params) else {
                continue;
            };
            debug_assert!(sel.cost >= 0.0, "Bonn requires non-negative costs");
            let nd = d + sel.cost;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                parent[v.index()] = Some((u, kind));
                inflow[v.index()] = sel.added_to_v;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
    let (sink, cost) = best?;
    let mut steps = Vec::new();
    let mut cur = sink;
    loop {
        let edge = parent[cur.index()]
            .map(|(_, k)| k)
            .unwrap_or(EdgeKind::Horizontal);
        steps.push(PathStep {
            bin: cur,
            inflow: inflow[cur.index()],
            edge,
        });
        match parent[cur.index()] {
            Some((prev, _)) => cur = prev,
            None => break,
        }
    }
    steps.reverse();
    Some(AugmentingPath { steps, cost })
}

impl BonnLegalizer {
    /// Drains every overflowed bin by successive shortest (Dijkstra)
    /// augmenting paths. Search counters accumulate into `obs` when it is
    /// `Some`.
    fn drain(
        &self,
        state: &mut FlowState<'_>,
        params: &SelectionParams,
        stats: &mut LegalizeStats,
        mut obs: Obs<'_>,
    ) -> Result<(), LegalizeError> {
        let expanded_before = stats.nodes_expanded;
        let fallback_before = stats.fallback_moves;
        let mut retries: usize = 0;

        let mut heap: BinaryHeap<(i64, BinId)> = state
            .overflowed_bins()
            .into_iter()
            .map(|b| (state.sup(b), b))
            .collect();
        let mut guard = 64 * heap.len() + 4 * state.grid.num_bins();
        while let Some((recorded, bin)) = heap.pop() {
            let sup = state.sup(bin);
            if sup == 0 {
                continue;
            }
            if sup != recorded {
                heap.push((sup, bin));
                continue;
            }
            if guard == 0 {
                return Err(LegalizeError::NoAugmentingPath {
                    die: state.grid.bin(bin).die,
                    supply: sup,
                });
            }
            guard -= 1;

            let mut limit = sup;
            let mut path = None;
            let mut searches_this_source: usize = 0;
            while limit > 0 {
                searches_this_source += 1;
                if let Some(p) = dijkstra(
                    state,
                    bin,
                    limit,
                    params,
                    self.config.early_exit,
                    &mut stats.nodes_expanded,
                ) {
                    path = Some(p);
                    break;
                }
                limit /= 2;
            }
            retries += searches_this_source.saturating_sub(1);
            let Some(path) = path else {
                // Macro-enclosed pocket with no 2D augmenting path: fall
                // back to direct relocation (same-die only — Bonn never
                // crosses dies).
                let moved = teleport_fallback(state, bin, false, stats)?;
                if moved && state.sup(bin) > 0 {
                    heap.push((state.sup(bin), bin));
                }
                continue;
            };
            stats.cells_moved += realize(state, &path, params);
            stats.augmentations += 1;
            // Re-queue any path bin left overfull (realization drift can
            // overshoot an intermediate bin; see flow3d-core's flow_pass).
            for step in &path.steps {
                if state.sup(step.bin) > 0 {
                    heap.push((state.sup(step.bin), step.bin));
                }
            }
        }

        obs.bump(
            keys::NODES_EXPANDED,
            (stats.nodes_expanded - expanded_before) as u64,
        );
        obs.bump(keys::AUGMENTING_PATHS, stats.augmentations as u64);
        obs.bump(keys::SEARCH_RETRIES, retries as u64);
        obs.bump(keys::CELLS_MOVED, stats.cells_moved as u64);
        obs.bump(
            keys::FALLBACK_MOVES,
            (stats.fallback_moves - fallback_before) as u64,
        );
        Ok(())
    }

    fn run(
        &self,
        design: &Design,
        global: &Placement3d,
        mut obs: Obs<'_>,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        obs.begin("partition");
        let layout = RowLayout::build(design);
        let dies = assign::partition_dies(design, global);
        obs.end("partition");
        let mut dies = dies?;

        obs.begin("grid_build");
        let widths = bin_widths(design, self.config.bin_width_factor);
        // No D2D edges: each die is legalized on its own 2D grid.
        let grid = BinGrid::build(design, &layout, &widths, false);
        obs.end("grid_build");

        obs.begin("assign");
        let state = assign::build_state(design, &layout, &grid, global, &mut dies);
        obs.end("assign");
        let mut state = state?;

        let params = SelectionParams {
            clamp_negative: true,
            d2d_congestion_cost: false,
            d2d_penalty: 0.0,
        };
        let mut stats = LegalizeStats::default();

        obs.begin("flow_pass");
        let drained = self.drain(&mut state, &params, &mut stats, obs.reborrow());
        obs.end("flow_pass");
        drained?;

        obs.begin("placerow");
        let placed = placerow_all_observed(&state, RowAlgo::AbacusQuadratic, obs.reborrow());
        obs.end("placerow");
        let placement = placed?;
        stats.cross_die_moves = placement.cross_die_moves(global, design.num_dies());
        Ok(LegalizeOutcome { placement, stats })
    }
}

impl Legalizer for BonnLegalizer {
    fn name(&self) -> &str {
        "bonn"
    }

    fn legalize(
        &self,
        design: &Design,
        global: &Placement3d,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        self.legalize_observed(design, global, None)
    }

    fn legalize_observed(
        &self,
        design: &Design,
        global: &Placement3d,
        mut obs: Obs<'_>,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        obs.begin("legalize");
        let result = self.run(design, global, obs.reborrow());
        obs.end("legalize");
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_db::{CellId, DesignBuilder, DieId, DieSpec, LibCellSpec, TechnologySpec};
    use flow3d_geom::FPoint;
    use flow3d_metrics::{check_legal, displacement_stats};

    fn design(n: usize) -> Design {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 30, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 400, 40), 10, 1, 1.0));
        for i in 0..n {
            b = b.cell(format!("u{i}"), "C");
        }
        b.build().unwrap()
    }

    #[test]
    fn clump_is_legalized() {
        let d = design(16);
        let mut gp = Placement3d::new(16);
        for i in 0..16 {
            gp.set_pos(CellId::new(i), FPoint::new(150.0, 10.0));
        }
        let outcome = BonnLegalizer::default().legalize(&d, &gp).unwrap();
        let report = check_legal(&d, &outcome.placement);
        assert!(report.is_legal(), "{report}");
        assert!(outcome.stats.augmentations > 0);
    }

    #[test]
    fn never_moves_cells_across_dies() {
        let d = design(16);
        let mut gp = Placement3d::new(16);
        for i in 0..16 {
            gp.set_pos(CellId::new(i), FPoint::new(150.0, 10.0));
            gp.set_die_affinity(CellId::new(i), if i < 8 { 0.0 } else { 1.0 });
        }
        let outcome = BonnLegalizer::default().legalize(&d, &gp).unwrap();
        assert_eq!(outcome.stats.cross_die_moves, 0);
        for i in 0..16 {
            let expect = if i < 8 { DieId::BOTTOM } else { DieId::TOP };
            assert_eq!(outcome.placement.die(CellId::new(i)), expect);
        }
    }

    #[test]
    fn sparse_placement_is_untouched() {
        let d = design(4);
        let mut gp = Placement3d::new(4);
        for i in 0..4 {
            gp.set_pos(CellId::new(i), FPoint::new(i as f64 * 80.0, 10.0));
        }
        let outcome = BonnLegalizer::default().legalize(&d, &gp).unwrap();
        assert_eq!(displacement_stats(&d, &gp, &outcome.placement).max_dbu, 0.0);
        assert_eq!(outcome.stats.augmentations, 0);
    }
}
