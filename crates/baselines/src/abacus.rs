//! Abacus legalization (Spindler, Schlichtmann, Johannes — ISPD 2008).
//!
//! Like Tetris, cells are processed in ascending x order, but instead of a
//! frozen frontier each candidate row re-arranges its already-placed cells
//! with the quadratic-optimal `PlaceRow` clustering; the row where the new
//! cell lands cheapest wins. Already-placed cells may slide within their
//! row, but never change rows or dies — the weakness 3D-Flow exploits.

use flow3d_core::assign;
use flow3d_core::placerow::{place_row, RowItem};
use flow3d_core::{LegalizeError, LegalizeOutcome, LegalizeStats, Legalizer};
use flow3d_db::{CellId, Design, LegalPlacement, Placement3d, RowId, RowLayout, SegmentId};
use flow3d_geom::Point;
use flow3d_obs::{keys, Obs, ObsExt};

/// The Abacus legalizer.
#[derive(Debug, Clone, Default)]
pub struct AbacusLegalizer {
    _private: (),
}

impl AbacusLegalizer {
    /// Creates an Abacus legalizer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// An Abacus cluster over a contiguous run of items.
#[derive(Debug, Clone, Copy)]
struct Cluster {
    x: f64,
    e: f64,
    q: f64,
    w: i64,
    first: usize,
}

/// Per-segment incremental state: committed items plus their cluster
/// stack, kept in ascending desired order.
#[derive(Debug, Clone, Default)]
struct SegState {
    items: Vec<(usize, i64, i64)>, // (cell, desired, width)
    clusters: Vec<Cluster>,
    used: i64,
}

impl SegState {
    /// Simulates adding `(desired, width)`; returns the x the new cell
    /// would land at without mutating the stack.
    fn trial(&self, lo: i64, hi: i64, desired: i64, width: i64) -> f64 {
        let weight = width as f64;
        let clamp = |x: f64, w: i64| x.clamp(lo as f64, (hi - w) as f64);
        let mut c = Cluster {
            x: clamp(desired as f64, width),
            e: weight,
            q: weight * desired as f64,
            w: width,
            first: 0,
        };
        let mut idx = self.clusters.len();
        while idx > 0 {
            let prev = self.clusters[idx - 1];
            if prev.x + prev.w as f64 <= c.x {
                break;
            }
            let e = prev.e + c.e;
            let q = prev.q + c.q - c.e * prev.w as f64;
            let w = prev.w + c.w;
            c = Cluster {
                x: clamp(q / e, w),
                e,
                q,
                w,
                first: prev.first,
            };
            idx -= 1;
        }
        // The new cell is the last `width` of the merged cluster.
        c.x + (c.w - width) as f64
    }

    /// Commits the cell to this segment.
    fn commit(&mut self, lo: i64, hi: i64, cell: usize, desired: i64, width: i64) {
        // Keep desired monotone so the cluster stack stays valid.
        let desired = self
            .items
            .last()
            .map(|&(_, d, _)| desired.max(d))
            .unwrap_or(desired);
        let weight = width as f64;
        let clamp = |x: f64, w: i64| x.clamp(lo as f64, (hi - w) as f64);
        let first = self.items.len();
        self.items.push((cell, desired, width));
        self.used += width;
        let mut c = Cluster {
            x: clamp(desired as f64, width),
            e: weight,
            q: weight * desired as f64,
            w: width,
            first,
        };
        while let Some(&prev) = self.clusters.last() {
            if prev.x + prev.w as f64 <= c.x {
                break;
            }
            self.clusters.pop();
            let e = prev.e + c.e;
            let q = prev.q + c.q - c.e * prev.w as f64;
            let w = prev.w + c.w;
            c = Cluster {
                x: clamp(q / e, w),
                e,
                q,
                w,
                first: prev.first,
            };
        }
        self.clusters.push(c);
    }
}

/// The incremental insertion loop: each cell, in ascending anchor-x
/// order, is trial-placed in candidate rows and committed where the
/// clustered position is cheapest.
fn insert_all(
    design: &Design,
    layout: &RowLayout,
    dies: &[flow3d_db::DieId],
    anchors: &[Point],
) -> Result<Vec<SegState>, LegalizeError> {
    let mut segs: Vec<SegState> = vec![SegState::default(); layout.num_segments()];

    let mut order: Vec<usize> = (0..design.num_cells()).collect();
    order.sort_by_key(|&i| (anchors[i].x, i));

    for i in order {
        let cell = CellId::new(i);
        let die_id = dies[i];
        let die = design.die(die_id);
        let w = design.cell_width(cell, die_id);
        let a = anchors[i];
        let num_rows = die.num_rows();
        if num_rows == 0 {
            return Err(LegalizeError::NoPosition { cell });
        }
        let center = die
            .nearest_row(a.y)
            .map(|r| r.id.index() as i64)
            .unwrap_or(0);

        let mut best: Option<(f64, SegmentId, i64)> = None; // (cost, seg, desired)
        for step in 0..2 * num_rows as i64 {
            let offset = if step % 2 == 0 {
                step / 2
            } else {
                -(step / 2 + 1)
            };
            let row_idx = center + offset;
            if row_idx < 0 || row_idx >= num_rows as i64 {
                continue;
            }
            let row_y = die.rows[row_idx as usize].y;
            let dy = (row_y - a.y).abs() as f64;
            if let Some((best_cost, _, _)) = best {
                if dy >= best_cost {
                    if offset > 0 {
                        continue;
                    }
                    break;
                }
            }
            for &sid in layout.segments_in_row(die_id, RowId::new(row_idx as usize)) {
                let seg = layout.segment(sid);
                let st = &segs[sid.index()];
                if st.used + w > seg.width() {
                    continue;
                }
                let desired = a.x.clamp(seg.span.lo, seg.span.hi - w);
                let x_trial = st.trial(seg.span.lo, seg.span.hi, desired, w);
                let cost = (x_trial - a.x as f64).abs() + dy;
                if best.is_none_or(|(c, _, _)| cost < c) {
                    best = Some((cost, sid, desired));
                }
            }
        }
        let Some((_, sid, desired)) = best else {
            return Err(LegalizeError::NoPosition { cell });
        };
        let seg = layout.segment(sid);
        segs[sid.index()].commit(seg.span.lo, seg.span.hi, i, desired, w);
    }
    Ok(segs)
}

/// Final site-aligned emission per segment. Bumps
/// [`keys::PLACEROW_CALLS`] once per non-empty segment when `obs` is
/// `Some`.
fn emit(
    design: &Design,
    layout: &RowLayout,
    segs: &[SegState],
    mut obs: Obs<'_>,
) -> Result<LegalPlacement, LegalizeError> {
    let mut placement = LegalPlacement::new(design.num_cells());
    for seg in layout.segments() {
        let st = &segs[seg.id.index()];
        if st.items.is_empty() {
            continue;
        }
        obs.bump(keys::PLACEROW_CALLS, 1);
        let items: Vec<RowItem> = st
            .items
            .iter()
            .map(|&(cell, desired, width)| RowItem {
                key: cell,
                desired,
                width,
                weight: width as f64,
            })
            .collect();
        let die = design.die(seg.die);
        let placed = place_row(&items, seg.span, die.outline.xlo, die.site_width).map_err(|e| {
            LegalizeError::SegmentOverflow {
                die: seg.die,
                excess: e.total_width - e.segment_width,
            }
        })?;
        for (key, x) in placed {
            placement.place(CellId::new(key), Point::new(x, seg.y), seg.die);
        }
    }
    Ok(placement)
}

/// The pipeline body, wrapped in the `"legalize"` phase by
/// [`AbacusLegalizer::legalize_observed`].
fn run(
    design: &Design,
    global: &Placement3d,
    mut obs: Obs<'_>,
) -> Result<LegalizeOutcome, LegalizeError> {
    obs.begin("partition");
    let layout = RowLayout::build(design);
    let dies = assign::partition_dies(design, global);
    obs.end("partition");
    let dies = dies?;
    let anchors = assign::anchors(design, global);

    obs.begin("insert");
    let inserted = insert_all(design, &layout, &dies, &anchors);
    obs.end("insert");
    let segs = inserted?;

    obs.begin("placerow");
    let emitted = emit(design, &layout, &segs, obs.reborrow());
    obs.end("placerow");
    let placement = emitted?;

    let stats = LegalizeStats {
        cross_die_moves: placement.cross_die_moves(global, design.num_dies()),
        ..Default::default()
    };
    Ok(LegalizeOutcome { placement, stats })
}

impl Legalizer for AbacusLegalizer {
    fn name(&self) -> &str {
        "abacus"
    }

    fn legalize(
        &self,
        design: &Design,
        global: &Placement3d,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        self.legalize_observed(design, global, None)
    }

    fn legalize_observed(
        &self,
        design: &Design,
        global: &Placement3d,
        mut obs: Obs<'_>,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        if global.num_cells() != design.num_cells() {
            return Err(LegalizeError::PlacementMismatch {
                design_cells: design.num_cells(),
                placement_cells: global.num_cells(),
            });
        }
        obs.begin("legalize");
        let result = run(design, global, obs.reborrow());
        obs.end("legalize");
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_baselines_test_util::*;
    use flow3d_metrics::{check_legal, displacement_stats};

    /// Shared fixtures for the baseline tests.
    mod flow3d_baselines_test_util {
        use flow3d_db::{Design, DesignBuilder, DieSpec, LibCellSpec, Placement3d, TechnologySpec};
        use flow3d_geom::FPoint;

        pub fn design(n: usize, width: i64) -> Design {
            let mut b = DesignBuilder::new("t")
                .technology(
                    TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", width, 10)),
                )
                .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
                .die(DieSpec::new("top", "T", (0, 0, 400, 40), 10, 1, 1.0));
            for i in 0..n {
                b = b.cell(format!("u{i}"), "C");
            }
            b.build().unwrap()
        }

        pub fn clump(n: usize, x: f64, y: f64) -> Placement3d {
            let mut gp = Placement3d::new(n);
            for i in 0..n {
                gp.set_pos(flow3d_db::CellId::new(i), FPoint::new(x, y));
            }
            gp
        }
    }

    #[test]
    fn spread_cells_stay_put() {
        let d = design(4, 20);
        let mut gp = Placement3d::new(4);
        for i in 0..4 {
            gp.set_pos(
                CellId::new(i),
                flow3d_geom::FPoint::new(i as f64 * 60.0, 10.0),
            );
        }
        let outcome = AbacusLegalizer::new().legalize(&d, &gp).unwrap();
        assert!(check_legal(&d, &outcome.placement).is_legal());
        assert_eq!(displacement_stats(&d, &gp, &outcome.placement).max_dbu, 0.0);
    }

    #[test]
    fn clump_is_legalized_with_less_displacement_than_tetris() {
        let d = design(14, 30);
        let gp = clump(14, 150.0, 10.0);
        let abacus = AbacusLegalizer::new().legalize(&d, &gp).unwrap();
        let tetris = crate::TetrisLegalizer::new().legalize(&d, &gp).unwrap();
        assert!(check_legal(&d, &abacus.placement).is_legal());
        let sa = displacement_stats(&d, &gp, &abacus.placement);
        let st = displacement_stats(&d, &gp, &tetris.placement);
        // On a perfectly symmetric clump the two greedies are close;
        // Abacus must stay in the same ballpark (its quality advantage
        // shows on asymmetric inputs, measured in the experiments).
        assert!(
            sa.avg_dbu <= st.avg_dbu * 1.15,
            "abacus {} vs tetris {}",
            sa.avg_dbu,
            st.avg_dbu
        );
    }

    #[test]
    fn trial_matches_commit_position() {
        let mut st = SegState::default();
        st.commit(0, 400, 0, 100, 30);
        st.commit(0, 400, 1, 110, 30);
        // The two committed cells clustered around 105; a third at 115
        // lands where the trial predicted.
        let predicted = st.trial(0, 400, 115, 30);
        st.commit(0, 400, 2, 115, 30);
        let c = st.clusters.last().unwrap();
        let actual = c.x + (c.w - 30) as f64;
        assert!((predicted - actual).abs() < 1e-9);
    }

    #[test]
    fn segment_capacity_respected() {
        let mut st = SegState::default();
        st.commit(0, 100, 0, 0, 60);
        assert_eq!(st.used, 60);
        // Caller checks capacity before commit; used tracks it.
        assert!(st.used + 60 > 100);
    }
}
