#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Reference legalizers the paper compares 3D-Flow against.
//!
//! All three are 2D legalizers: the die assignment is fixed up front by
//! the shared nearest-die partition
//! ([`flow3d_core::assign::partition_dies`]) and never changes — exactly
//! how the paper describes SOTA true-3D placers using 2D legalization
//! (§I). Each die is then legalized independently:
//!
//! * [`TetrisLegalizer`] — Hill's greedy: cells in ascending x order, each
//!   placed at the nearest free position scanning rows outward.
//! * [`AbacusLegalizer`] — Spindler et al.: like Tetris, but each trial
//!   row rearranges its already-placed cells with the quadratic-optimal
//!   `PlaceRow` clustering, and the cheapest row wins.
//! * [`BonnLegalizer`] — Brenner's iterative augmentation: the same
//!   flow formulation as 3D-Flow, but per-die (no D2D edges), with edge
//!   costs clamped non-negative and true Dijkstra searches (relaxation
//!   allowed, early exit at the first absorbing bin).
//!
//! # Examples
//!
//! ```
//! use flow3d_baselines::TetrisLegalizer;
//! use flow3d_core::Legalizer;
//! use flow3d_gen::GeneratorConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let case = GeneratorConfig::small_demo(3).generate()?;
//! let outcome = TetrisLegalizer::default().legalize(&case.design, &case.natural)?;
//! assert!(flow3d_metrics::check_legal(&case.design, &outcome.placement).is_legal());
//! # Ok(())
//! # }
//! ```

mod abacus;
mod bonn;
mod tetris;

pub use abacus::AbacusLegalizer;
pub use bonn::{BonnConfig, BonnLegalizer};
pub use tetris::TetrisLegalizer;

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_core::{Flow3dLegalizer, Legalizer};
    use flow3d_gen::GeneratorConfig;
    use flow3d_metrics::{check_legal, displacement_stats};

    /// All four legalizers produce legal placements on the same generated
    /// case, and the flow-based ones do not lose to Tetris on average
    /// displacement.
    #[test]
    fn all_legalizers_agree_on_legality() {
        let case = GeneratorConfig::small_demo(42).generate().unwrap();
        let legalizers: Vec<Box<dyn Legalizer>> = vec![
            Box::new(TetrisLegalizer::default()),
            Box::new(AbacusLegalizer::default()),
            Box::new(BonnLegalizer::default()),
            Box::new(Flow3dLegalizer::default()),
        ];
        let mut avg = Vec::new();
        for lg in &legalizers {
            let outcome = lg.legalize(&case.design, &case.natural).unwrap();
            let report = check_legal(&case.design, &outcome.placement);
            assert!(report.is_legal(), "{}: {report}", lg.name());
            let stats = displacement_stats(&case.design, &case.natural, &outcome.placement);
            avg.push((lg.name().to_string(), stats.avg));
        }
        let tetris = avg[0].1;
        let flow3d = avg[3].1;
        assert!(
            flow3d <= tetris * 1.05,
            "3d-flow ({flow3d:.3}) should not lose to tetris ({tetris:.3})"
        );
    }
}
