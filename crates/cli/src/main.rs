//! `flow3d` — command-line driver for the 3D-Flow legalizer reproduction.
//!
//! ```text
//! flow3d gen --suite 2022 --case case3 [--scale 0.25] --out case.txt [--gp gp.txt]
//! flow3d legalize --algo 3dflow|tetris|abacus|bonn --case case.txt --gp gp.txt \
//!        --out legal.txt [--no-d2d] [--no-congestion] [--no-post] [--no-memo] [--memo-slots N] [--no-soa] \
//!        [--alpha 0.1] [--bin-width 10] [--post-bin-width 5] [--post-passes 3] \
//!        [--row-algo abacus|isotonic] [--threads N] \
//!        [--profile out.json] [--trace out.trace.json] [--heatmaps out.heatmaps.json]
//! flow3d check --case case.txt --legal legal.txt [--gp gp.txt]
//! flow3d stats --case case.txt
//! flow3d report show report.json
//! flow3d report diff baseline.json current.json [--phase SUBSTR] [--rt-warn-pct P] ...
//! flow3d viz --case case.txt --gp gp.txt --legal legal.txt --die top --out plot.svg
//! flow3d viz --heatmaps run.heatmaps.json [--name flow_pass0/die0/overflow] --out grid.svg
//! flow3d eco --case case.txt --base legal.txt --moves moves.txt --out out.txt [--threads N]
//! flow3d serve [--listen HOST:PORT | --unix PATH] [--workers N] [--queue-depth N] [--threads N] \
//!        [--log events.jsonl] [--log-level L] [--flight dump.json] [--trace DIR] [--window-secs S]
//! flow3d request [ping|stats|metrics|shutdown] [--script reqs.jsonl] \
//!        [--connect HOST:PORT | --unix PATH] [--out resp.jsonl] [--text]
//! ```
//!
//! The serve-mode commands (`serve`, `request`, `eco`) are documented in
//! `SERVING.md`.

use flow3d_baselines::{AbacusLegalizer, BonnLegalizer, TetrisLegalizer};
use flow3d_core::{Flow3dConfig, Flow3dLegalizer, Legalizer};
use flow3d_db::DieId;
use flow3d_gen::GeneratorConfig;
use flow3d_gp::{GlobalPlacer, GpConfig};
use std::collections::BTreeMap;
use std::process::ExitCode;

mod serve_cmd;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

/// Minimal `--key value` / `--flag` argument map.
#[derive(Debug)]
struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument `{arg}`"))?;
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                values.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(Self { values, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: not a number: `{v}`")),
        }
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: not an integer: `{v}`")),
        }
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return Err(usage());
    };
    if cmd == "report" {
        return run_report(&argv[1..]);
    }
    if cmd == "request" {
        // `request` accepts a positional quick command (`metrics`,
        // `ping`, …), so it splits positionals from flags itself.
        return serve_cmd::cmd_request(&argv[1..]);
    }
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "gen" => cmd_gen(&args),
        "legalize" => cmd_legalize(&args),
        "check" => cmd_check(&args),
        "stats" => cmd_stats(&args),
        "viz" => cmd_viz(&args),
        "tidy" => cmd_tidy(&args),
        "eco" => serve_cmd::cmd_eco(&args),
        "serve" => serve_cmd::cmd_serve(&args),
        "--help" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// `report` takes positional file paths (unlike every `--key value`
/// command), so it splits positionals from flags itself.
fn run_report(argv: &[String]) -> Result<(), String> {
    let positional: Vec<&str> = argv
        .iter()
        .take_while(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let args = Args::parse(&argv[positional.len()..])?;
    match positional.as_slice() {
        ["show", path] => cmd_report_show(path),
        ["diff", baseline, current] => cmd_report_diff(baseline, current, &args),
        _ => Err(format!(
            "usage:\n  flow3d report show <report.json>\n  \
             flow3d report diff <baseline.json> <current.json> [tolerance flags]\n\
             got positionals: {positional:?}"
        )),
    }
}

fn usage() -> String {
    "usage:\n  \
     flow3d gen --suite 2022|2023|million|demo --case <name> [--scale S] [--seed N] --out case.txt [--gp gp.txt]\n  \
     flow3d legalize --algo 3dflow|tetris|abacus|bonn --case case.txt --gp gp.txt --out legal.txt [--no-d2d] [--no-congestion] [--no-post] [--no-memo] [--memo-slots N] [--no-soa] [--alpha A] [--bin-width F] [--post-bin-width F] [--post-passes N] [--row-algo abacus|isotonic] [--threads N] [--profile out.json] [--trace out.trace.json] [--heatmaps out.heatmaps.json]\n  \
     flow3d check --case case.txt --legal legal.txt [--gp gp.txt]\n  \
     flow3d stats --case case.txt\n  \
     flow3d report show <report.json>\n  \
     flow3d report diff <baseline.json> <current.json> [--phase SUBSTR] [--rt-warn-pct P] [--rt-fail-pct P] [--disp-warn-pct P] [--disp-fail-pct P] [--counter-warn-pct P] [--counter-fail-pct P] [--min-seconds S]\n  \
     flow3d viz --case case.txt --gp gp.txt --legal legal.txt [--die top|bottom] --out plot.svg\n  \
     flow3d viz --heatmaps sidecar.json [--name <heatmap>] --out grid.svg\n  \
     flow3d tidy [--json] [--fix] [--list] [--root DIR]\n  \
     flow3d eco --case case.txt --base legal.txt --moves moves.txt --out out.txt [--threads N] [--profile out.json]\n  \
     flow3d serve [--listen HOST:PORT | --unix PATH] [--workers N] [--queue-depth N] [--threads N] [--log events.jsonl] [--log-level debug|info|warn|error] [--flight dump.json] [--trace DIR] [--window-secs S]\n  \
     flow3d request [ping|stats|metrics|shutdown] [--script reqs.jsonl] [--connect HOST:PORT | --unix PATH] [--out resp.jsonl] [--allow-errors] [--text]"
        .to_string()
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn write(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("{path}: {e}"))
}

fn load_design(args: &Args) -> Result<flow3d_db::Design, String> {
    let path = args.require("case")?;
    // Stream straight off the file: a million-cell case never has to be
    // resident as one giant String alongside the Design being built.
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    flow3d_io::parse_case_reader(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let suite = args.require("suite")?;
    let case = args.require("case")?;
    let mut cfg: GeneratorConfig = match suite {
        "2022" => GeneratorConfig::iccad2022(case),
        "2023" => GeneratorConfig::iccad2023(case),
        "million" => GeneratorConfig::million(case),
        "demo" => Some(GeneratorConfig::small_demo(1)),
        other => {
            return Err(format!(
                "unknown suite `{other}` (2022, 2023, million, demo)"
            ))
        }
    }
    .ok_or_else(|| format!("unknown case `{case}` in suite {suite}"))?;
    cfg.scale = args.get_f64("scale", 1.0)?;
    if let Some(seed) = args.get("seed") {
        cfg.seed = seed.parse().map_err(|_| "--seed: not an integer")?;
    }
    let generated = cfg.generate().map_err(|e| e.to_string())?;

    let mut text = String::new();
    flow3d_io::write_case(&generated.design, &mut text).map_err(|e| e.to_string())?;
    let out = args.require("out")?;
    write(out, &text)?;
    println!(
        "wrote {out}: {} cells, {} macros, {} nets",
        generated.design.num_cells(),
        generated.design.num_macros(),
        generated.design.num_nets()
    );

    if let Some(gp_path) = args.get("gp") {
        let placed = GlobalPlacer::new(GpConfig::default())
            .place_from(&generated.design, &generated.natural);
        let mut text = String::new();
        flow3d_io::write_placement3d(&generated.design, &placed, &mut text)
            .map_err(|e| e.to_string())?;
        write(gp_path, &text)?;
        println!("wrote {gp_path}: global placement");
    }
    Ok(())
}

fn cmd_legalize(args: &Args) -> Result<(), String> {
    let design = load_design(args)?;
    let gp_path = args.require("gp")?;
    let global =
        flow3d_io::parse_placement3d(&design, &read(gp_path)?).map_err(|e| e.to_string())?;

    let algo = args.get("algo").unwrap_or("3dflow");
    let legalizer: Box<dyn Legalizer> = match algo {
        "tetris" => Box::new(TetrisLegalizer::default()),
        "abacus" => Box::new(AbacusLegalizer::default()),
        "bonn" => Box::new(BonnLegalizer::default()),
        "3dflow" => Box::new(Flow3dLegalizer::new(Flow3dConfig {
            alpha: args.get_f64("alpha", 0.1)?,
            bin_width_factor: args.get_f64("bin-width", 10.0)?,
            post_bin_width_factor: args.get_f64("post-bin-width", 5.0)?,
            allow_d2d: !args.flag("no-d2d"),
            d2d_congestion_cost: !args.flag("no-congestion"),
            post_opt: !args.flag("no-post"),
            post_passes: args.get_usize("post-passes", 3)?,
            row_algo: match args.get("row-algo").unwrap_or("abacus") {
                "abacus" => flow3d_core::RowAlgo::AbacusQuadratic,
                "isotonic" => flow3d_core::RowAlgo::IsotonicL1,
                other => return Err(format!("--row-algo: unknown algorithm `{other}`")),
            },
            // Memo off is an ablation knob: output is bit-identical
            // either way, only the search wall-clock changes.
            selection_memo: !args.flag("no-memo"),
            // 0 = auto-size the shared memo from the flow-source count;
            // a pure capacity knob, the output never changes.
            memo_slots: args.get_usize("memo-slots", 0)?,
            // 0 = auto: FLOW3D_THREADS, else available parallelism. The
            // result is bit-identical for every worker count.
            threads: args.get_usize("threads", 0)?,
            // SoA off is the differential-testing reference path; the
            // output is bit-identical either way.
            soa_view: !args.flag("no-soa"),
        })),
        other => return Err(format!("unknown algorithm `{other}`")),
    };

    let profile_path = args.get("profile");
    let trace_path = args.get("trace");
    let heatmaps_path = args.get("heatmaps");
    let mut profile = (profile_path.is_some() || trace_path.is_some() || heatmaps_path.is_some())
        .then(flow3d_obs::Profile::new);
    if trace_path.is_some() {
        profile
            .as_mut()
            .expect("trace implies a profile")
            .enable_tracing();
    }

    let start = std::time::Instant::now();
    let outcome = legalizer
        .legalize_observed(&design, &global, profile.as_mut())
        .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64();

    let stats = flow3d_metrics::displacement_stats(&design, &global, &outcome.placement);
    let dhpwl = flow3d_metrics::delta_hpwl_pct(&design, &global, &outcome.placement);
    println!(
        "{}: avg disp {:.3} rows, max disp {:.2} rows, dHPWL {:+.2}%, {} cross-die moves, {:.2}s",
        legalizer.name(),
        stats.avg,
        stats.max,
        dhpwl,
        outcome.stats.cross_die_moves,
        elapsed
    );

    if let (Some(path), Some(profile)) = (profile_path, &profile) {
        let mut report =
            flow3d_obs::RunReport::from_profile(design.name(), legalizer.name(), profile)
                .with_quality(flow3d_obs::Quality {
                    avg_disp: stats.avg_dbu,
                    max_disp: stats.max_dbu,
                    dhpwl_pct: dhpwl,
                });
        if let Some(rss) = flow3d_obs::peak_rss_bytes() {
            report = report.with_peak_rss(rss);
        }
        write(path, &report.to_json())?;
        print!("{}", report.to_pretty());
        println!("wrote {path}");
    }
    if let (Some(path), Some(profile)) = (trace_path, &profile) {
        let trace = profile
            .to_chrome_trace(&format!("flow3d {} {}", legalizer.name(), design.name()))
            .expect("tracing was enabled");
        write(path, &trace)?;
        println!(
            "wrote {path} ({} trace events)",
            profile.trace_events().len()
        );
    }
    if let (Some(path), Some(profile)) = (heatmaps_path, &profile) {
        write(path, &flow3d_obs::heatmaps_to_json(profile.heatmaps()))?;
        println!("wrote {path} ({} heatmaps)", profile.heatmaps().len());
    }

    let mut text = String::new();
    flow3d_io::write_legal(&design, &outcome.placement, &mut text).map_err(|e| e.to_string())?;
    let out = args.require("out")?;
    write(out, &text)?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_check(args: &Args) -> Result<(), String> {
    let design = load_design(args)?;
    let legal_path = args.require("legal")?;
    let legal = flow3d_io::parse_legal(&design, &read(legal_path)?).map_err(|e| e.to_string())?;
    let report = flow3d_metrics::check_legal(&design, &legal);
    println!("{report}");
    if let Some(gp_path) = args.get("gp") {
        let global =
            flow3d_io::parse_placement3d(&design, &read(gp_path)?).map_err(|e| e.to_string())?;
        let stats = flow3d_metrics::displacement_stats(&design, &global, &legal);
        println!(
            "avg disp {:.3} rows, max disp {:.2} rows (cell {})",
            stats.avg,
            stats.max,
            stats
                .max_cell
                .map(|c| design.cells()[c.index()].name.clone())
                .unwrap_or_default()
        );
    }
    if report.is_legal() {
        Ok(())
    } else {
        Err("placement is not legal".into())
    }
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let design = load_design(args)?;
    println!("design  : {}", design.name());
    println!("cells   : {}", design.num_cells());
    println!("macros  : {}", design.num_macros());
    println!("nets    : {}", design.num_nets());
    for (idx, die) in design.dies().iter().enumerate() {
        let die_id = DieId::new(idx);
        println!(
            "die {:<7}: outline {}, rows {} x {} DBU, site {}, max util {:.0}%, free area {}",
            die.name,
            die.outline,
            die.num_rows(),
            die.row_height,
            die.site_width,
            die.max_util * 100.0,
            design.free_area(die_id)
        );
    }
    Ok(())
}

fn load_report(path: &str) -> Result<flow3d_obs::RunReport, String> {
    flow3d_obs::RunReport::from_json(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

fn cmd_report_show(path: &str) -> Result<(), String> {
    print!("{}", load_report(path)?.to_pretty());
    Ok(())
}

/// Compares two run reports and exits non-zero when any metric regressed
/// beyond the failure tolerance — the CI perf gate.
fn cmd_report_diff(baseline_path: &str, current_path: &str, args: &Args) -> Result<(), String> {
    let baseline = load_report(baseline_path)?;
    let current = load_report(current_path)?;
    let defaults = flow3d_obs::DiffTolerances::default();
    let tol = flow3d_obs::DiffTolerances {
        rt_warn_pct: args.get_f64("rt-warn-pct", defaults.rt_warn_pct)?,
        rt_fail_pct: args.get_f64("rt-fail-pct", defaults.rt_fail_pct)?,
        disp_warn_pct: args.get_f64("disp-warn-pct", defaults.disp_warn_pct)?,
        disp_fail_pct: args.get_f64("disp-fail-pct", defaults.disp_fail_pct)?,
        counter_warn_pct: args.get_f64("counter-warn-pct", defaults.counter_warn_pct)?,
        counter_fail_pct: args.get_f64("counter-fail-pct", defaults.counter_fail_pct)?,
        min_seconds: args.get_f64("min-seconds", defaults.min_seconds)?,
    };
    let diff = flow3d_obs::diff_reports_phase(&baseline, &current, &tol, args.get("phase"));
    if let Some(phase) = args.get("phase") {
        println!("phase filter: {phase}");
    }
    print!("{}", diff.to_pretty());
    match diff.worst() {
        flow3d_obs::DiffStatus::Fail => Err(format!(
            "regression beyond tolerance vs {baseline_path} (see FAIL rows above)"
        )),
        _ => Ok(()),
    }
}

/// `viz --heatmaps` mode: render telemetry grids from a sidecar instead
/// of a placement plot.
fn cmd_viz_heatmaps(args: &Args, sidecar: &str) -> Result<(), String> {
    let maps =
        flow3d_obs::heatmaps_from_json(&read(sidecar)?).map_err(|e| format!("{sidecar}: {e}"))?;
    let map = match args.get("name") {
        Some(name) => maps
            .iter()
            .find(|m| m.name == name)
            .ok_or_else(|| format!("no heatmap `{name}` in {sidecar} ({} present)", maps.len()))?,
        None => maps
            .first()
            .ok_or_else(|| format!("{sidecar}: no heatmaps"))?,
    };
    let out = args.require("out")?;
    write(out, &flow3d_viz::heatmap_svg(map))?;
    println!("wrote {out} ({})", map.name);
    Ok(())
}

fn cmd_viz(args: &Args) -> Result<(), String> {
    if let Some(sidecar) = args.get("heatmaps") {
        return cmd_viz_heatmaps(args, sidecar);
    }
    let design = load_design(args)?;
    let global = flow3d_io::parse_placement3d(&design, &read(args.require("gp")?)?)
        .map_err(|e| e.to_string())?;
    let legal = flow3d_io::parse_legal(&design, &read(args.require("legal")?)?)
        .map_err(|e| e.to_string())?;
    let die = match args.get("die").unwrap_or("top") {
        "top" => DieId::TOP,
        "bottom" => DieId::BOTTOM,
        other => return Err(format!("unknown die `{other}`")),
    };
    let svg = flow3d_viz::DisplacementPlot::new(&design, &global, &legal, die).to_svg();
    let out = args.require("out")?;
    write(out, &svg)?;
    println!("wrote {out}");
    Ok(())
}

/// `flow3d tidy` — run the flow3d-tidy determinism & panic-safety lints
/// over the workspace (same engine as `cargo run -p flow3d-lint`).
fn cmd_tidy(args: &Args) -> Result<(), String> {
    if args.flag("list") {
        println!("{:<4} {:<24} rationale", "id", "name");
        for lint in flow3d_lint::ALL_LINTS {
            println!("{:<4} {:<24} {}", lint.id(), lint.name(), lint.rationale());
        }
        println!(
            "\nsuppression: // flow3d-tidy: allow(<name>) — <reason>   (reason required; \
             covers the same line and the next)"
        );
        return Ok(());
    }
    let root = match args.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            flow3d_lint::find_workspace_root(&cwd)
                .ok_or_else(|| "no workspace root found above the current directory".to_string())?
        }
    };
    let report = flow3d_lint::run(&root, args.flag("fix")).map_err(|e| format!("tidy: {e}"))?;
    if args.flag("json") {
        print!(
            "{}",
            flow3d_lint::render_json(
                &report.violations,
                report.files_checked,
                &report.fixed,
                (report.cache_hits, report.cache_total),
            )
        );
    } else {
        for fv in &report.violations {
            eprintln!("{}", flow3d_lint::render_human(fv));
        }
        for fixed in &report.fixed {
            eprintln!("fixed: {fixed}");
        }
        eprintln!(
            "flow3d-tidy: {} file(s) checked ({}/{} cache hits), {} violation(s)",
            report.files_checked,
            report.cache_hits,
            report.cache_total,
            report.violations.len()
        );
    }
    if report.clean() {
        Ok(())
    } else {
        Err(format!("{} tidy violation(s)", report.violations.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::Args;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_and_flags() {
        let a = Args::parse(&argv(&[
            "--case",
            "c.txt",
            "--no-d2d",
            "--alpha",
            "0.5",
            "--verbose",
        ]))
        .unwrap();
        assert_eq!(a.get("case"), Some("c.txt"));
        assert!(a.flag("no-d2d"));
        assert!(a.flag("verbose"));
        assert_eq!(a.get_f64("alpha", 0.1).unwrap(), 0.5);
        assert_eq!(a.get_f64("scale", 1.0).unwrap(), 1.0);
        assert_eq!(a.get_usize("threads", 0).unwrap(), 0);
    }

    #[test]
    fn rejects_positional_arguments() {
        let err = Args::parse(&argv(&["case.txt"])).unwrap_err();
        assert!(err.contains("unexpected argument"));
    }

    #[test]
    fn require_reports_missing_key() {
        let a = Args::parse(&argv(&["--out", "x"])).unwrap();
        assert!(a.require("out").is_ok());
        assert!(a.require("case").unwrap_err().contains("--case"));
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = Args::parse(&argv(&["--alpha", "abc"])).unwrap();
        assert!(a.get_f64("alpha", 0.1).is_err());
        assert!(a.get_usize("alpha", 1).is_err());
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // A quirk of `--key value` parsing: negative numbers do not start
        // with `--` so they parse as values.
        let a = Args::parse(&argv(&["--dx", "-5"])).unwrap();
        assert_eq!(a.get("dx"), Some("-5"));
    }
}
