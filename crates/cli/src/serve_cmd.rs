//! `flow3d serve`, `flow3d request`, and `flow3d eco` — the resident
//! legalization service, its scripted client, and the one-shot ECO
//! command the service is measured against. Protocol and operations are
//! documented in `SERVING.md`.

use crate::{read, write, Args};
use flow3d_core::{CellMove, Flow3dConfig, Flow3dLegalizer};
use flow3d_obs::LogLevel;
use flow3d_serve::{Client, Json, Server, ServerConfig};

/// `flow3d serve`: run the resident service until a client sends
/// `shutdown`.
pub(crate) fn cmd_serve(args: &Args) -> Result<(), String> {
    // `--log` wins over the FLOW3D_LOG environment variable; either
    // arms the structured JSONL event log.
    let log_path = args
        .get("log")
        .map(str::to_string)
        .or_else(|| std::env::var("FLOW3D_LOG").ok());
    let log_level = match args.get("log-level") {
        None => LogLevel::Info,
        Some(name) => LogLevel::parse(name)
            .ok_or_else(|| format!("--log-level {name}: expected debug|info|warn|error"))?,
    };
    let config = ServerConfig {
        workers: args.get_usize("workers", 2)?,
        queue_depth: args.get_usize("queue-depth", 64)?,
        default_threads: args.get_usize("threads", 1)?,
        log_path,
        log_level,
        flight_path: args.get("flight").map(str::to_string),
        trace_dir: args.get("trace").map(str::to_string),
        window_secs: args.get_usize("window-secs", 60)? as u64,
        ..ServerConfig::default()
    };
    let server = Server::new(config).map_err(|e| format!("starting server: {e}"))?;
    if let Some(path) = args.get("unix") {
        return serve_unix(&server, path);
    }
    let addr = args.get("listen").unwrap_or("127.0.0.1:7333");
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    // Printed before accepting so scripts binding port 0 can discover
    // the real port.
    println!("flow3d-serve listening on {local}");
    server
        .serve_listener(listener)
        .map_err(|e| format!("{local}: {e}"))
}

#[cfg(unix)]
fn serve_unix(server: &Server, path: &str) -> Result<(), String> {
    println!("flow3d-serve listening on unix:{path}");
    server
        .serve_unix(std::path::Path::new(path))
        .map_err(|e| format!("unix:{path}: {e}"))
}

#[cfg(not(unix))]
fn serve_unix(_server: &Server, path: &str) -> Result<(), String> {
    Err(format!(
        "--unix {path}: unix sockets are unavailable on this platform"
    ))
}

/// `flow3d request`: fire requests at a running server and print each
/// response as a JSON line. Requests come from a `--script` JSONL file
/// (one frame per line), or from a single positional quick command —
/// `flow3d request metrics` sends `{"cmd": "metrics"}` without a
/// script file (also `ping`, `stats`, `shutdown`).
pub(crate) fn cmd_request(argv: &[String]) -> Result<(), String> {
    let positional: Vec<&str> = argv
        .iter()
        .take_while(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let args = Args::parse(&argv[positional.len()..])?;
    let requests = match positional.as_slice() {
        [] => {
            let script = read(args.require("script")?)?;
            let mut requests = Vec::new();
            for (lineno, line) in script.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let json =
                    Json::parse(line).map_err(|e| format!("script line {}: {e}", lineno + 1))?;
                requests.push(
                    inline_files(json).map_err(|e| format!("script line {}: {e}", lineno + 1))?,
                );
            }
            requests
        }
        [cmd @ ("ping" | "stats" | "metrics" | "shutdown")] => vec![Json::Obj(vec![(
            "cmd".to_string(),
            Json::Str(cmd.to_string()),
        )])],
        other => {
            return Err(format!(
                "unknown quick command {other:?} (ping, stats, metrics, shutdown — \
                 or --script reqs.jsonl)"
            ))
        }
    };

    let responses = match args.get("unix") {
        Some(path) => request_unix(path, &requests)?,
        None => {
            let addr = args.require("connect")?;
            let client = Client::connect_tcp(addr).map_err(|e| format!("{addr}: {e}"))?;
            run_script(client, &requests)?
        }
    };

    let mut out = String::new();
    let mut failures = 0usize;
    for response in &responses {
        if response.get("ok") != Some(&Json::Bool(true)) {
            failures += 1;
        }
        // `--text` renders the Prometheus exposition of a metrics
        // response instead of the JSON envelope, for scrape scripts.
        let prometheus = args.flag("text").then(|| {
            response
                .get("result")
                .and_then(|r| r.get("prometheus"))
                .and_then(Json::as_str)
        });
        match prometheus.flatten() {
            Some(text) => out.push_str(text),
            None => {
                out.push_str(&response.to_string());
                out.push('\n');
            }
        }
    }
    match args.get("out") {
        Some(path) => write(path, &out)?,
        None => print!("{out}"),
    }
    if failures > 0 && !args.flag("allow-errors") {
        return Err(format!(
            "{failures} of {} requests failed (pass --allow-errors to tolerate)",
            responses.len()
        ));
    }
    Ok(())
}

#[cfg(unix)]
fn request_unix(path: &str, requests: &[Json]) -> Result<Vec<Json>, String> {
    let client = Client::connect_unix(std::path::Path::new(path))
        .map_err(|e| format!("unix:{path}: {e}"))?;
    run_script(client, requests)
}

#[cfg(not(unix))]
fn request_unix(path: &str, _requests: &[Json]) -> Result<Vec<Json>, String> {
    Err(format!(
        "--unix {path}: unix sockets are unavailable on this platform"
    ))
}

fn run_script(
    mut client: Client<impl std::io::Read + std::io::Write>,
    requests: &[Json],
) -> Result<Vec<Json>, String> {
    let mut responses = Vec::with_capacity(requests.len());
    for request in requests {
        responses.push(client.request(request).map_err(|e| e.to_string())?);
    }
    Ok(responses)
}

/// Script convenience: a string field `foo_file` is replaced by `foo`
/// holding the named file's contents, so scripts reference case and
/// placement files instead of embedding them. `moves_file` additionally
/// converts the `flow3d_io` move-list format into the wire's JSON move
/// array (textually — names resolve server-side).
fn inline_files(json: Json) -> Result<Json, String> {
    let Json::Obj(pairs) = json else {
        return Ok(json);
    };
    let mut out = Vec::with_capacity(pairs.len());
    for (key, value) in pairs {
        match (key.strip_suffix("_file"), &value) {
            (Some(target), Json::Str(path)) => {
                let contents = read(path)?;
                if target == "moves" {
                    out.push(("moves".to_string(), moves_text_to_json(&contents)?));
                } else {
                    out.push((target.to_string(), Json::Str(contents)));
                }
            }
            _ => out.push((key, value)),
        }
    }
    Ok(Json::Obj(out))
}

/// Parses the `NumMoves`/`Move` grammar of [`flow3d_io::parse_moves`]
/// into the wire's move array, without needing the design (the server
/// resolves instance names).
fn moves_text_to_json(text: &str) -> Result<Json, String> {
    let mut moves = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("NumMoves") {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks[0] != "Move" || (toks.len() != 4 && toks.len() != 5) {
            return Err(format!("moves file: bad line `{line}`"));
        }
        let num = |s: &str| -> Result<f64, String> {
            s.parse::<i64>()
                .map(|v| v as f64)
                .map_err(|_| format!("moves file: bad number `{s}`"))
        };
        let mut pairs = vec![
            ("cell".to_string(), Json::Str(toks[1].to_string())),
            ("x".to_string(), Json::num(num(toks[2])?)),
            ("y".to_string(), Json::num(num(toks[3])?)),
        ];
        if toks.len() == 5 {
            pairs.push(("die".to_string(), Json::num(num(toks[4])?)));
        }
        moves.push(Json::Obj(pairs));
    }
    Ok(Json::Arr(moves))
}

/// `flow3d eco`: one-shot incremental legalization — the golden
/// reference the serve-mode smoke test diffs against.
pub(crate) fn cmd_eco(args: &Args) -> Result<(), String> {
    let design = crate::load_design(args)?;
    let base_path = args.require("base")?;
    let base = flow3d_io::parse_legal(&design, &read(base_path)?)
        .map_err(|e| format!("{base_path}: {e}"))?;
    let moves_path = args.require("moves")?;
    let records = flow3d_io::parse_moves(&design, &read(moves_path)?)
        .map_err(|e| format!("{moves_path}: {e}"))?;
    let moves: Vec<CellMove> = records
        .iter()
        .map(|r| CellMove {
            cell: r.cell,
            target: r.target,
            die: r.die,
        })
        .collect();

    let legalizer = Flow3dLegalizer::new(Flow3dConfig {
        threads: args.get_usize("threads", 1)?,
        ..Default::default()
    });
    let profile_path = args.get("profile");
    let mut profile = profile_path.is_some().then(flow3d_obs::Profile::new);
    let outcome = legalizer
        .legalize_incremental_observed(&design, &base, &moves, profile.as_mut())
        .map_err(|e| e.to_string())?;
    println!(
        "eco: {} moves requested, {} cells moved, {} cross-die, {} augmentations",
        moves.len(),
        outcome.stats.cells_moved,
        outcome.stats.cross_die_moves,
        outcome.stats.augmentations
    );
    if let (Some(path), Some(profile)) = (profile_path, &profile) {
        let mut report = flow3d_obs::RunReport::from_profile(design.name(), "flow3d-eco", profile);
        if let Some(rss) = flow3d_obs::peak_rss_bytes() {
            report = report.with_peak_rss(rss);
        }
        write(path, &report.to_json())?;
        println!("wrote {path}");
    }
    let mut text = String::new();
    flow3d_io::write_legal(&design, &outcome.placement, &mut text).map_err(|e| e.to_string())?;
    let out = args.require("out")?;
    write(out, &text)?;
    println!("wrote {out}");
    Ok(())
}
