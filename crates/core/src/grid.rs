//! The 3D grid graph of bins (paper §II-B, Fig. 3).
//!
//! Every macro-free row segment of every die is divided into near-uniform,
//! site-aligned bins. Bins are the flow-network vertices; edges connect
//! horizontally adjacent bins of a segment, vertically adjacent bins of
//! neighbouring rows on the same die (planar edges), and bins with
//! plan-view overlap on adjacent dies (die-to-die edges).

use flow3d_db::{Design, DieId, RowId, RowLayout, SegmentId};
use flow3d_geom::Interval;
use std::fmt;

/// Identifies a bin within a [`BinGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BinId(pub u32);

impl BinId {
    /// Creates an id from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        // flow3d-tidy: allow(panic-unwrap) — id overflow is a capacity bug worth a loud stop, not a recoverable error
        Self(u32::try_from(index).expect("bin id overflow"))
    }

    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Kind of a grid edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Adjacent bins of the same segment: fractional cell movement allowed.
    Horizontal,
    /// Bins of vertically neighbouring rows on the same die: whole-cell
    /// movement only.
    Vertical,
    /// Bins on different dies with plan-view overlap: whole-cell movement
    /// with width change under heterogeneous technologies.
    DieToDie,
}

/// One bin: a slice of a row segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub struct Bin {
    /// Segment the bin belongs to.
    pub segment: SegmentId,
    /// Die of the bin.
    pub die: DieId,
    /// Row of the bin within the die.
    pub row: RowId,
    /// y of the row's bottom edge.
    pub y: i64,
    /// Horizontal extent; the bin capacity is `span.len()`.
    pub span: Interval,
}

impl Bin {
    /// Free capacity usable by standard cells (the paper's `cap(v) = w_v`).
    #[inline]
    pub fn cap(&self) -> i64 {
        self.span.len()
    }
}

/// The 3D grid graph.
///
/// Adjacency is stored in CSR (compressed sparse row) form: the
/// neighbours of bin `i` are `adj_edges[adj_off[i] .. adj_off[i + 1]]`.
/// One flat edge array plus an offset array replaces the per-bin
/// `Vec<Vec<_>>` of earlier revisions, so the search kernel's inner loop
/// touches two contiguous allocations instead of one heap object per
/// bin. Per-bin neighbour *order* is part of the determinism contract
/// (it drives tie-breaking in the search), so the builder preserves the
/// exact append order of the edge-discovery passes.
#[derive(Debug, Clone)]
pub struct BinGrid {
    bins: Vec<Bin>,
    /// CSR offsets: `bins.len() + 1` entries, monotone non-decreasing.
    adj_off: Vec<u32>,
    /// Packed directed edges, grouped by source bin.
    adj_edges: Vec<(BinId, EdgeKind)>,
    /// Bins of each segment, sorted by x.
    seg_bins: Vec<Vec<BinId>>,
}

impl BinGrid {
    /// Builds the grid over `layout` with per-die nominal bin widths
    /// (`bin_widths[die]`, typically `10·w̄_c` — paper §III-F). Bin
    /// boundaries are site-aligned; each segment gets at least one bin.
    /// `connect_d2d = false` omits the die-to-die edges (Table V
    /// ablation).
    pub fn build(
        design: &Design,
        layout: &RowLayout,
        bin_widths: &[i64],
        connect_d2d: bool,
    ) -> Self {
        assert_eq!(bin_widths.len(), design.num_dies(), "one bin width per die");
        let mut bins = Vec::new();
        let mut seg_bins = vec![Vec::new(); layout.num_segments()];

        for seg in layout.segments() {
            let die = design.die(seg.die);
            let site = die.site_width;
            let len = seg.width();
            let nominal = bin_widths[seg.die.index()].max(site);
            let max_bins = (len / site).max(1);
            let n = ((len as f64 / nominal as f64).round() as i64).clamp(1, max_bins);
            let mut prev = seg.span.lo;
            for i in 1..=n {
                let raw = seg.span.lo + (len * i) / n;
                let hi = if i == n {
                    seg.span.hi
                } else {
                    flow3d_geom::snap_nearest(raw, seg.span.lo, site)
                        .clamp(prev + site, seg.span.hi)
                };
                if hi <= prev {
                    continue;
                }
                let id = BinId::new(bins.len());
                bins.push(Bin {
                    segment: seg.id,
                    die: seg.die,
                    row: seg.row,
                    y: seg.y,
                    span: Interval::new(prev, hi),
                });
                seg_bins[seg.id.index()].push(id);
                prev = hi;
            }
        }

        // Directed edges in discovery order; the stable counting sort
        // below groups them by source bin without reordering any bin's
        // neighbour list.
        let mut edges: Vec<(u32, BinId, EdgeKind)> = Vec::new();
        let push_edge = |a: BinId, b: BinId, kind: EdgeKind, edges: &mut Vec<_>| {
            edges.push((a.0, b, kind));
            edges.push((b.0, a, kind));
        };

        // Horizontal edges: consecutive bins within a segment.
        for ids in &seg_bins {
            for pair in ids.windows(2) {
                push_edge(pair[0], pair[1], EdgeKind::Horizontal, &mut edges);
            }
        }

        // Per (die, row): bins sorted by x (segments are already ordered).
        let mut row_bins: Vec<Vec<Vec<BinId>>> = design
            .dies()
            .iter()
            .map(|d| vec![Vec::new(); d.num_rows()])
            .collect();
        for seg in layout.segments() {
            row_bins[seg.die.index()][seg.row.index()].extend(&seg_bins[seg.id.index()]);
        }

        // Vertical edges: x-overlapping bins of adjacent rows, same die.
        for die_rows in &row_bins {
            for w in die_rows.windows(2) {
                sweep_overlaps(&bins, &w[0], &w[1], EdgeKind::Vertical, &mut edges);
            }
        }

        // Die-to-die edges between adjacent dies of the stack: bins whose
        // plan-view rectangles overlap (x ranges overlap and row y-ranges
        // overlap).
        if connect_d2d {
            for lower in 0..design.num_dies().saturating_sub(1) {
                let upper = lower + 1;
                let h_lo = design.die(DieId::new(lower)).row_height;
                let h_up = design.die(DieId::new(upper)).row_height;
                for (r_lo, bins_lo) in row_bins[lower].iter().enumerate() {
                    if bins_lo.is_empty() {
                        continue;
                    }
                    let y_lo = bins_lo
                        .first()
                        .map(|b| bins[b.index()].y)
                        .unwrap_or_default();
                    let lo_span = Interval::with_len(y_lo, h_lo);
                    for bins_up in row_bins[upper].iter().filter(|r| !r.is_empty()) {
                        let y_up = bins[bins_up[0].index()].y;
                        if !lo_span.overlaps(&Interval::with_len(y_up, h_up)) {
                            continue;
                        }
                        sweep_overlaps(&bins, bins_lo, bins_up, EdgeKind::DieToDie, &mut edges);
                    }
                    let _ = r_lo;
                }
            }
        }

        // Stable counting sort by source bin into the CSR arrays. Edges
        // of one source keep their discovery order, so `neighbors()`
        // returns byte-for-byte the same slices as the old nested-Vec
        // layout did.
        let mut adj_off = vec![0u32; bins.len() + 1];
        for &(src, _, _) in &edges {
            adj_off[src as usize + 1] += 1;
        }
        for i in 0..bins.len() {
            adj_off[i + 1] += adj_off[i];
        }
        let mut cursor: Vec<u32> = adj_off[..bins.len()].to_vec();
        let mut adj_edges = vec![(BinId(0), EdgeKind::Horizontal); edges.len()];
        for &(src, dst, kind) in &edges {
            let pos = cursor[src as usize] as usize;
            adj_edges[pos] = (dst, kind);
            cursor[src as usize] += 1;
        }

        Self {
            bins,
            adj_off,
            adj_edges,
            seg_bins,
        }
    }

    /// All bins, indexed by [`BinId`].
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// The bin with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn bin(&self, id: BinId) -> &Bin {
        &self.bins[id.index()]
    }

    /// Neighbours of `id` with the connecting edge kind (a CSR slice of
    /// the packed edge array).
    #[inline]
    pub fn neighbors(&self, id: BinId) -> &[(BinId, EdgeKind)] {
        let lo = self.adj_off[id.index()] as usize;
        let hi = self.adj_off[id.index() + 1] as usize;
        &self.adj_edges[lo..hi]
    }

    /// Bins of `segment`, sorted by x.
    pub fn bins_in_segment(&self, segment: SegmentId) -> &[BinId] {
        &self.seg_bins[segment.index()]
    }

    /// The bin of `segment` containing `x` (clamped to the segment's
    /// extent).
    ///
    /// # Panics
    ///
    /// Panics if the segment has no bins (cannot happen for grids built by
    /// [`build`](Self::build)).
    pub fn bin_at(&self, segment: SegmentId, x: i64) -> BinId {
        let ids = &self.seg_bins[segment.index()];
        assert!(!ids.is_empty(), "segment without bins");
        let pos = ids.partition_point(|&b| self.bins[b.index()].span.hi <= x);
        ids[pos.min(ids.len() - 1)]
    }

    /// Number of edges of each kind `(horizontal, vertical, d2d)`; each
    /// undirected edge is counted once.
    pub fn edge_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for i in 0..self.bins.len() {
            for &(to, kind) in self.neighbors(BinId::new(i)) {
                if to.index() > i {
                    match kind {
                        EdgeKind::Horizontal => counts.0 += 1,
                        EdgeKind::Vertical => counts.1 += 1,
                        EdgeKind::DieToDie => counts.2 += 1,
                    }
                }
            }
        }
        counts
    }
}

/// Adds `kind` edges between every x-overlapping pair from two x-sorted
/// bin lists (two-pointer sweep). Both directions of each edge are
/// appended as the overlap is discovered — the append order is the
/// per-bin neighbour order after the CSR counting sort.
fn sweep_overlaps(
    bins: &[Bin],
    a: &[BinId],
    b: &[BinId],
    kind: EdgeKind,
    edges: &mut Vec<(u32, BinId, EdgeKind)>,
) {
    let mut j = 0;
    for &ba in a {
        let sa = bins[ba.index()].span;
        while j < b.len() && bins[b[j].index()].span.hi <= sa.lo {
            j += 1;
        }
        let mut k = j;
        while k < b.len() && bins[b[k].index()].span.lo < sa.hi {
            let bb = b[k];
            if sa.overlaps(&bins[bb.index()].span) {
                edges.push((ba.0, bb, kind));
                edges.push((bb.0, ba, kind));
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_db::{DesignBuilder, DieSpec, LibCellSpec, TechnologySpec};

    fn design(with_macro: bool) -> Design {
        let mut b = DesignBuilder::new("t")
            .technology(
                TechnologySpec::new("T")
                    .lib_cell(LibCellSpec::std_cell("INV", 10, 12))
                    .lib_cell(LibCellSpec::macro_cell("RAM", 200, 24)),
            )
            .die(DieSpec::new("bottom", "T", (0, 0, 1000, 48), 12, 2, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 1000, 48), 16, 2, 1.0));
        if with_macro {
            b = b.macro_inst("ram0", "RAM", "bottom", 400, 0);
        }
        b.build().unwrap()
    }

    fn grid(with_macro: bool, bw: i64, d2d: bool) -> (Design, RowLayout, BinGrid) {
        let d = design(with_macro);
        let layout = RowLayout::build(&d);
        let g = BinGrid::build(&d, &layout, &[bw, bw], d2d);
        (d, layout, g)
    }

    #[test]
    fn bins_tile_each_segment_exactly() {
        let (_, layout, g) = grid(true, 100, true);
        for seg in layout.segments() {
            let ids = g.bins_in_segment(seg.id);
            assert!(!ids.is_empty());
            assert_eq!(g.bin(ids[0]).span.lo, seg.span.lo);
            assert_eq!(g.bin(*ids.last().unwrap()).span.hi, seg.span.hi);
            for pair in ids.windows(2) {
                assert_eq!(g.bin(pair[0]).span.hi, g.bin(pair[1]).span.lo);
            }
            let total: i64 = ids.iter().map(|&b| g.bin(b).cap()).sum();
            assert_eq!(total, seg.width());
        }
    }

    #[test]
    fn bin_boundaries_are_site_aligned() {
        let (d, _, g) = grid(true, 100, true);
        for bin in g.bins() {
            let die = d.die(bin.die);
            assert_eq!((bin.span.lo - die.outline.xlo) % die.site_width, 0);
        }
    }

    #[test]
    fn nominal_width_respected_approximately() {
        let (_, _, g) = grid(false, 100, false);
        for bin in g.bins() {
            assert!(bin.cap() >= 50 && bin.cap() <= 200, "bin cap {}", bin.cap());
        }
    }

    #[test]
    fn tiny_bin_width_clamps_to_site_granularity() {
        let (_, layout, g) = grid(false, 1, false);
        // Site width 2: bins can be as narrow as one site but never zero.
        for bin in g.bins() {
            assert!(bin.cap() >= 2);
        }
        for seg in layout.segments() {
            let total: i64 = g
                .bins_in_segment(seg.id)
                .iter()
                .map(|&b| g.bin(b).cap())
                .sum();
            assert_eq!(total, seg.width());
        }
    }

    #[test]
    fn horizontal_edges_stay_within_segments() {
        let (_, _, g) = grid(true, 100, true);
        for (i, nbrs) in (0..g.num_bins()).map(|i| (i, g.neighbors(BinId::new(i)))) {
            for &(to, kind) in nbrs {
                let a = g.bin(BinId::new(i));
                let b = g.bin(to);
                match kind {
                    EdgeKind::Horizontal => {
                        assert_eq!(a.segment, b.segment);
                        assert!(a.span.hi == b.span.lo || b.span.hi == a.span.lo);
                    }
                    EdgeKind::Vertical => {
                        assert_eq!(a.die, b.die);
                        assert_eq!((a.row.index() as i64 - b.row.index() as i64).abs(), 1);
                        assert!(a.span.overlaps(&b.span));
                    }
                    EdgeKind::DieToDie => {
                        assert_ne!(a.die, b.die);
                        assert!(a.span.overlaps(&b.span));
                    }
                }
            }
        }
    }

    #[test]
    fn macro_blocks_vertical_adjacency_but_not_around() {
        let (_, _, g) = grid(true, 100, true);
        let (h, v, d2d) = g.edge_counts();
        assert!(h > 0);
        assert!(v > 0);
        assert!(d2d > 0);
    }

    #[test]
    fn d2d_edges_absent_when_disabled() {
        let (_, _, g) = grid(true, 100, false);
        let (_, _, d2d) = g.edge_counts();
        assert_eq!(d2d, 0);
    }

    #[test]
    fn d2d_edges_respect_row_y_overlap() {
        // Bottom rows (h=12) at y 0,12,24,36; top rows (h=16) at y 0,16,32.
        // Bottom row 0 [0,12) overlaps top row 0 [0,16) only.
        let (_, _, g) = grid(false, 100, true);
        for (i, nbrs) in (0..g.num_bins()).map(|i| (i, g.neighbors(BinId::new(i)))) {
            let a = g.bin(BinId::new(i));
            for &(to, kind) in nbrs {
                if kind == EdgeKind::DieToDie {
                    let b = g.bin(to);
                    let (lo, up) = if a.die.index() == 0 { (a, b) } else { (b, a) };
                    let lo_span = Interval::with_len(lo.y, 12);
                    let up_span = Interval::with_len(up.y, 16);
                    assert!(lo_span.overlaps(&up_span), "{lo:?} vs {up:?}");
                }
            }
        }
    }

    #[test]
    fn bin_at_locates_and_clamps() {
        let (_, layout, g) = grid(false, 100, false);
        let seg = layout.segments()[0].id;
        let first = g.bins_in_segment(seg)[0];
        let last = *g.bins_in_segment(seg).last().unwrap();
        assert_eq!(g.bin_at(seg, -50), first);
        assert_eq!(g.bin_at(seg, 5000), last);
        let mid = g.bin_at(seg, 150);
        assert!(g.bin(mid).span.contains_point(150));
    }

    #[test]
    fn csr_neighbour_order_groups_kinds_by_discovery_pass() {
        // The builder discovers horizontal edges first, then vertical,
        // then die-to-die, and the CSR counting sort is stable — so every
        // bin's neighbour list must be grouped in that kind order. The
        // search kernel's tie-breaking depends on this order staying put.
        let (_, _, g) = grid(true, 100, true);
        let rank = |k: EdgeKind| match k {
            EdgeKind::Horizontal => 0,
            EdgeKind::Vertical => 1,
            EdgeKind::DieToDie => 2,
        };
        let mut total = 0usize;
        for i in 0..g.num_bins() {
            let nbrs = g.neighbors(BinId::new(i));
            total += nbrs.len();
            for pair in nbrs.windows(2) {
                assert!(
                    rank(pair[0].1) <= rank(pair[1].1),
                    "bin {i}: neighbour kinds out of discovery order: {nbrs:?}"
                );
            }
        }
        let (h, v, d2d) = g.edge_counts();
        assert_eq!(
            total,
            2 * (h + v + d2d),
            "CSR slices must cover every directed edge once"
        );
    }

    #[test]
    fn adjacency_is_symmetric() {
        let (_, _, g) = grid(true, 100, true);
        for i in 0..g.num_bins() {
            for &(to, kind) in g.neighbors(BinId::new(i)) {
                assert!(
                    g.neighbors(to)
                        .iter()
                        .any(|&(back, k)| back == BinId::new(i) && k == kind),
                    "edge {i} -> {to} not mirrored"
                );
            }
        }
    }
}
