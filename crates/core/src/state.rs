//! Mutable flow state: fractional cell-to-bin assignment Γ(v), bin usage,
//! supply/demand (Eqs. 1–2), displacement costs (Eqs. 4–5), and per-die
//! area accounting for the utilization constraint (§III-F).

use crate::grid::{Bin, BinGrid, BinId};
use flow3d_db::{CellId, Design, DieId, RowLayout, SoaView};
use flow3d_geom::Point;

/// A fragment: part (or all) of a cell's width assigned to one bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub struct Frag {
    /// The cell.
    pub cell: CellId,
    /// Width of this fragment in DBU (the paper's `ρ_γ · w_c`).
    pub width: i64,
}

/// Where the legalization hot path reads cell geometry (widths and row
/// heights) from.
///
/// The values are identical across variants by construction —
/// [`SoaView`] copies them out of the [`Design`] — so switching the
/// source never changes results, only the memory-access pattern. The
/// id-map variant is kept as the differential-testing comparand (see
/// `Flow3dConfig::soa_view`).
#[derive(Debug, Clone)]
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub enum GeomSource<'a> {
    /// Borrow a prebuilt view (the driver and the resident ECO engine
    /// build one per design and share it across passes).
    Soa(&'a SoaView),
    /// Own a geometry-only view built at state construction.
    Owned(SoaView),
    /// Reference path: chase the `Design` id maps on every lookup.
    IdMap,
}

impl GeomSource<'_> {
    /// Width of `cell` on `die`.
    #[inline]
    pub fn cell_width(&self, design: &Design, cell: CellId, die: DieId) -> i64 {
        match self {
            GeomSource::Soa(v) => v.cell_width(cell, die),
            GeomSource::Owned(v) => v.cell_width(cell, die),
            GeomSource::IdMap => design.cell_width(cell, die),
        }
    }

    /// Row height of `die`.
    #[inline]
    pub fn cell_height(&self, design: &Design, die: DieId) -> i64 {
        match self {
            GeomSource::Soa(v) => v.cell_height(die),
            GeomSource::Owned(v) => v.cell_height(die),
            GeomSource::IdMap => design.cell_height(die),
        }
    }
}

/// The mutable state of a flow-based legalization pass.
#[derive(Debug, Clone)]
pub struct FlowState<'a> {
    /// The immutable design.
    pub design: &'a Design,
    /// Macro-aware row structure.
    pub layout: &'a RowLayout,
    /// The 3D grid graph.
    pub grid: &'a BinGrid,
    /// Γ(v): fragments per bin.
    frags: Vec<Vec<Frag>>,
    /// Fragments per cell, ordered left-to-right (all in one segment).
    cell_frags: Vec<Vec<(BinId, i64)>>,
    /// Total fragment width per bin.
    usage: Vec<i64>,
    /// Rounded global-placement position per cell (the displacement
    /// anchor `(x'_c, y'_c)` of Eq. 4).
    anchor: Vec<Point>,
    /// Standard-cell area currently on each die.
    used_area: Vec<i64>,
    /// Utilization cap per die (`max_util · free_area`).
    allowed_area: Vec<i64>,
    /// Geometry source for the hot path (SoA columns or id maps).
    geom: GeomSource<'a>,
    /// Mutation counter: bumped by every public mutator. Two reads with
    /// the same generation observe identical assignment state.
    generation: u64,
    /// Content signature per cell: a hash of the cell's id, anchor, and
    /// canonical fragment list. Recomputed by every mutator that touches
    /// the cell.
    cell_sig: Vec<u64>,
    /// Content signature per bin: the commutative (wrapping) sum of the
    /// [`cell_sig`](Self::cell_sig) of every cell with a fragment in the
    /// bin. Because per-bin fragment lists are unordered (`swap_remove`),
    /// the sum — not a sequence hash — is what makes two states with the
    /// same *contents* produce the same signature regardless of the
    /// mutation history that built them. This is what content-addressed
    /// selection-memo keys validate against.
    bin_sig: Vec<u64>,
}

/// The 64-bit finalizer of splitmix64: a cheap, high-quality mixing
/// step for building content signatures.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl<'a> FlowState<'a> {
    /// Creates an empty state (no cells assigned) reading geometry from
    /// an owned SoA view built here.
    pub fn new(
        design: &'a Design,
        layout: &'a RowLayout,
        grid: &'a BinGrid,
        anchor: Vec<Point>,
    ) -> Self {
        Self::with_geom(
            design,
            layout,
            grid,
            anchor,
            GeomSource::Owned(SoaView::geometry(design)),
        )
    }

    /// Creates an empty state reading geometry from `geom`.
    pub fn with_geom(
        design: &'a Design,
        layout: &'a RowLayout,
        grid: &'a BinGrid,
        anchor: Vec<Point>,
        geom: GeomSource<'a>,
    ) -> Self {
        assert_eq!(anchor.len(), design.num_cells());
        let allowed_area = (0..design.num_dies())
            .map(|d| {
                let die = DieId::new(d);
                (design.die(die).max_util * design.free_area(die) as f64).floor() as i64
            })
            .collect();
        Self {
            design,
            layout,
            grid,
            frags: vec![Vec::new(); grid.num_bins()],
            cell_frags: vec![Vec::new(); design.num_cells()],
            usage: vec![0; grid.num_bins()],
            anchor,
            used_area: vec![0; design.num_dies()],
            allowed_area,
            geom,
            generation: 0,
            cell_sig: vec![0; design.num_cells()],
            bin_sig: vec![0; grid.num_bins()],
        }
    }

    /// Width of `cell` on `die`, read through the configured geometry
    /// source. Hot-path replacement for `Design::cell_width`.
    #[inline]
    pub fn cell_width(&self, cell: CellId, die: DieId) -> i64 {
        self.geom.cell_width(self.design, cell, die)
    }

    /// Row height of `die`, read through the configured geometry source.
    #[inline]
    pub fn cell_height(&self, die: DieId) -> i64 {
        self.geom.cell_height(self.design, die)
    }

    /// The mutation generation: incremented by every call to
    /// [`insert_cell`](Self::insert_cell),
    /// [`insert_cell_whole`](Self::insert_cell_whole),
    /// [`remove_cell`](Self::remove_cell), and
    /// [`move_fraction`](Self::move_fraction). Two reads with the same
    /// generation observe identical assignment state, so derived caches
    /// may key on it.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The displacement anchor of `cell`.
    #[inline]
    pub fn anchor(&self, cell: CellId) -> Point {
        self.anchor[cell.index()]
    }

    /// Supply of `bin` (Eq. 1): overflow beyond capacity.
    #[inline]
    pub fn sup(&self, bin: BinId) -> i64 {
        (self.usage[bin.index()] - self.grid.bin(bin).cap()).max(0)
    }

    /// Demand of `bin` (Eq. 2): remaining free capacity.
    #[inline]
    pub fn dem(&self, bin: BinId) -> i64 {
        (self.grid.bin(bin).cap() - self.usage[bin.index()]).max(0)
    }

    /// Total fragment width currently in `bin`.
    #[inline]
    pub fn usage(&self, bin: BinId) -> i64 {
        self.usage[bin.index()]
    }

    /// Fragments currently assigned to `bin`.
    #[inline]
    pub fn frags_in(&self, bin: BinId) -> &[Frag] {
        &self.frags[bin.index()]
    }

    /// Fragments of `cell`, ordered left-to-right.
    #[inline]
    pub fn cell_frags(&self, cell: CellId) -> &[(BinId, i64)] {
        &self.cell_frags[cell.index()]
    }

    /// Die the cell currently sits on.
    ///
    /// # Panics
    ///
    /// Panics if the cell has no fragments.
    pub fn cell_die(&self, cell: CellId) -> DieId {
        let (bin, _) = self.cell_frags[cell.index()]
            .first()
            // flow3d-tidy: allow(panic-unwrap) — documented # Panics: every placed cell keeps at least one fragment
            .expect("cell has no fragments");
        self.grid.bin(*bin).die
    }

    /// Area headroom of `die` in DBU² under its utilization cap.
    #[inline]
    pub fn area_headroom(&self, die: DieId) -> i64 {
        self.allowed_area[die.index()] - self.used_area[die.index()]
    }

    /// Standard-cell area currently on `die`.
    #[inline]
    pub fn used_area(&self, die: DieId) -> i64 {
        self.used_area[die.index()]
    }

    /// Content signature of `bin`: changes whenever any member cell's
    /// fragment list (in *any* bin) or anchor changes, and is equal for
    /// two states whose contents match regardless of mutation history.
    #[inline]
    pub fn bin_signature(&self, bin: BinId) -> u64 {
        self.bin_sig[bin.index()]
    }

    /// Content signature of everything a `select_moves` call on the edge
    /// `(u, v)` reads: the source-bin occupancy (member cells' ids,
    /// anchors, and full fragment lists — which covers contiguity checks
    /// against `v`), and, for cross-die edges only, the candidate bin's
    /// usage (the Eq. 7 congestion term reads `sup(v) − dem(v)`, a pure
    /// function of `usage(v)`) and the target die's used area (the
    /// utilization-headroom check). Everything else a selection touches
    /// — bin spans, segment widths, cell geometry — is immutable for the
    /// lifetime of the grid, and `(u, v, needed)` itself is part of the
    /// memo key, not the signature.
    pub fn selection_signature(&self, u: BinId, v: BinId, cross_die: bool) -> u64 {
        let mut h = mix64(self.bin_sig[u.index()]);
        if cross_die {
            let die_v = self.grid.bin(v).die;
            h = mix64(h ^ self.usage[v.index()] as u64);
            h = mix64(h ^ self.used_area[die_v.index()] as u64);
        }
        h
    }

    /// Recomputes `cell`'s content signature from its id, anchor, and
    /// canonical (left-to-right sorted) fragment list.
    fn compute_cell_sig(&self, cell: CellId) -> u64 {
        let a = self.anchor[cell.index()];
        let mut h = mix64(cell.index() as u64 ^ 0xA076_1D64_78BD_642F);
        h = mix64(h ^ a.x as u64);
        h = mix64(h ^ a.y as u64);
        for &(bin, w) in &self.cell_frags[cell.index()] {
            h = mix64(h ^ bin.index() as u64);
            h = mix64(h ^ w as u64);
        }
        h
    }

    /// Subtracts `cell`'s current signature from every bin it occupies.
    /// Must be called *before* mutating the cell's fragments or sig.
    fn unhook_sig(&mut self, cell: CellId) {
        let s = self.cell_sig[cell.index()];
        for &(bin, _) in &self.cell_frags[cell.index()] {
            self.bin_sig[bin.index()] = self.bin_sig[bin.index()].wrapping_sub(s);
        }
    }

    /// Recomputes `cell`'s signature and adds it to every bin it now
    /// occupies. Must be called *after* the mutation completes.
    fn rehook_sig(&mut self, cell: CellId) {
        let s = self.compute_cell_sig(cell);
        self.cell_sig[cell.index()] = s;
        for &(bin, _) in &self.cell_frags[cell.index()] {
            self.bin_sig[bin.index()] = self.bin_sig[bin.index()].wrapping_add(s);
        }
    }

    /// Estimated displacement of `cell` if assigned to `bin` (Eq. 4 with
    /// the bin-local snap of §III-A): the anchor's x clamped into the bin,
    /// y at the bin's row.
    pub fn disp_to(&self, cell: CellId, bin: &Bin) -> i64 {
        let a = self.anchor[cell.index()];
        (bin.span.clamp_point(a.x) - a.x).abs() + (bin.y - a.y).abs()
    }

    /// Current estimated displacement of `cell`: fragment-width-weighted
    /// average of [`disp_to`](Self::disp_to) over its bins.
    pub fn disp_current(&self, cell: CellId) -> f64 {
        let frags = &self.cell_frags[cell.index()];
        let total: i64 = frags.iter().map(|&(_, w)| w).sum();
        if total == 0 {
            return 0.0;
        }
        frags
            .iter()
            .map(|&(bin, w)| self.disp_to(cell, self.grid.bin(bin)) as f64 * w as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Inserts `cell` into the segment containing `bin_hint`'s bins, with
    /// its interval `[x, x + w)` clamped into the segment and split across
    /// the bins it straddles. Returns the fragments created.
    ///
    /// # Panics
    ///
    /// Panics if the cell already has fragments or is wider than the
    /// segment.
    pub fn insert_cell(&mut self, cell: CellId, bin_hint: BinId, desired_x: i64) {
        self.generation = self.generation.wrapping_add(1);
        assert!(
            self.cell_frags[cell.index()].is_empty(),
            "cell {cell} already assigned"
        );
        let seg_id = self.grid.bin(bin_hint).segment;
        let seg = self.layout.segment(seg_id);
        let die = seg.die;
        let w = self.cell_width(cell, die);
        let x = seg
            .span
            .nearest_fit(desired_x, w)
            // flow3d-tidy: allow(panic-unwrap) — invariant: callers only target segments at least as wide as the cell
            .unwrap_or_else(|| panic!("cell {cell} wider than segment {seg_id}"));
        let span = flow3d_geom::Interval::with_len(x, w);
        for &bid in self.grid.bins_in_segment(seg_id) {
            let overlap = self.grid.bin(bid).span.overlap_len(&span);
            if overlap > 0 {
                self.add_frag(cell, bid, overlap);
            }
        }
        self.used_area[die.index()] += w * self.cell_height(die);
        self.rehook_sig(cell);
    }

    /// Inserts the whole cell into one bin (whole-cell moves across rows
    /// or dies). The cell's width on the bin's die is used.
    ///
    /// # Panics
    ///
    /// Panics if the cell already has fragments.
    pub fn insert_cell_whole(&mut self, cell: CellId, bin: BinId) {
        self.generation = self.generation.wrapping_add(1);
        assert!(
            self.cell_frags[cell.index()].is_empty(),
            "cell {cell} already assigned"
        );
        let die = self.grid.bin(bin).die;
        let w = self.cell_width(cell, die);
        self.add_frag(cell, bin, w);
        self.used_area[die.index()] += w * self.cell_height(die);
        self.rehook_sig(cell);
    }

    /// Removes every fragment of `cell`, returning its former die.
    ///
    /// # Panics
    ///
    /// Panics if the cell has no fragments.
    pub fn remove_cell(&mut self, cell: CellId) -> DieId {
        self.generation = self.generation.wrapping_add(1);
        self.unhook_sig(cell);
        let die = self.cell_die(cell);
        let frags = std::mem::take(&mut self.cell_frags[cell.index()]);
        for (bin, width) in frags {
            self.usage[bin.index()] -= width;
            let list = &mut self.frags[bin.index()];
            let pos = list
                .iter()
                .position(|f| f.cell == cell)
                // flow3d-tidy: allow(panic-unwrap) — invariant: per-bin lists mirror cell_frags; desync is a state bug
                .expect("fragment list out of sync");
            list.swap_remove(pos);
        }
        let w = self.cell_width(cell, die);
        self.used_area[die.index()] -= w * self.cell_height(die);
        self.rehook_sig(cell);
        die
    }

    /// Moves `width` DBU of `cell` from `from` to the horizontally
    /// adjacent bin `to` (same segment). Creates/extends the fragment in
    /// `to` and shrinks/removes the one in `from`.
    ///
    /// # Panics
    ///
    /// Panics if the cell has no fragment of at least `width` in `from`.
    pub fn move_fraction(&mut self, cell: CellId, from: BinId, to: BinId, width: i64) {
        self.generation = self.generation.wrapping_add(1);
        self.unhook_sig(cell);
        debug_assert!(width > 0);
        debug_assert_eq!(
            self.grid.bin(from).segment,
            self.grid.bin(to).segment,
            "fractional moves stay within a segment"
        );
        // Shrink in `from`.
        let cf = &mut self.cell_frags[cell.index()];
        let idx = cf
            .iter()
            .position(|&(b, _)| b == from)
            // flow3d-tidy: allow(panic-unwrap) — documented # Panics: caller moves only fragments it just looked up
            .expect("no fragment in source bin");
        assert!(cf[idx].1 >= width, "fragment smaller than move width");
        cf[idx].1 -= width;
        let emptied = cf[idx].1 == 0;
        if emptied {
            cf.remove(idx);
        }
        let list = &mut self.frags[from.index()];
        let pos = list
            .iter()
            .position(|f| f.cell == cell)
            // flow3d-tidy: allow(panic-unwrap) — invariant: per-bin lists mirror cell_frags; presence checked above
            .expect("fragment list out of sync");
        if emptied {
            list.swap_remove(pos);
        } else {
            list[pos].width -= width;
        }
        self.usage[from.index()] -= width;
        // Grow in `to`.
        self.add_frag(cell, to, width);
        self.keep_frags_sorted(cell);
        self.rehook_sig(cell);
    }

    fn add_frag(&mut self, cell: CellId, bin: BinId, width: i64) {
        debug_assert!(width > 0);
        let list = &mut self.frags[bin.index()];
        if let Some(f) = list.iter_mut().find(|f| f.cell == cell) {
            f.width += width;
        } else {
            list.push(Frag { cell, width });
        }
        let cf = &mut self.cell_frags[cell.index()];
        if let Some(e) = cf.iter_mut().find(|(b, _)| *b == bin) {
            e.1 += width;
        } else {
            cf.push((bin, width));
        }
        self.usage[bin.index()] += width;
        self.keep_frags_sorted(cell);
    }

    fn keep_frags_sorted(&mut self, cell: CellId) {
        let grid = self.grid;
        self.cell_frags[cell.index()].sort_by_key(|&(b, _)| grid.bin(b).span.lo);
    }

    /// Total overflow across all bins (0 when the flow phase is done).
    pub fn total_overflow(&self) -> i64 {
        (0..self.grid.num_bins())
            .map(|i| self.sup(BinId::new(i)))
            .sum()
    }

    /// Ids of all overflowed bins.
    pub fn overflowed_bins(&self) -> Vec<BinId> {
        (0..self.grid.num_bins())
            .map(BinId::new)
            .filter(|&b| self.sup(b) > 0)
            .collect()
    }

    /// Debug invariant: per-bin usage equals the fragment sums, and every
    /// cell's fragments are contiguous bins of one segment summing to the
    /// cell's width on its die.
    pub fn check_invariants(&self) -> Result<(), String> {
        for i in 0..self.grid.num_bins() {
            let sum: i64 = self.frags[i].iter().map(|f| f.width).sum();
            if sum != self.usage[i] {
                return Err(format!(
                    "bin {i}: usage {} != fragment sum {sum}",
                    self.usage[i]
                ));
            }
        }
        for c in 0..self.design.num_cells() {
            let cell = CellId::new(c);
            let frags = &self.cell_frags[c];
            if frags.is_empty() {
                continue;
            }
            let seg = self.grid.bin(frags[0].0).segment;
            let die = self.grid.bin(frags[0].0).die;
            let total: i64 = frags.iter().map(|&(_, w)| w).sum();
            if total != self.design.cell_width(cell, die) {
                return Err(format!(
                    "cell {cell}: fragment widths {total} != cell width {}",
                    self.design.cell_width(cell, die)
                ));
            }
            let seg_bins = self.grid.bins_in_segment(seg);
            let mut indices: Vec<usize> = frags
                .iter()
                .map(|&(b, _)| {
                    seg_bins
                        .iter()
                        .position(|&sb| sb == b)
                        .ok_or_else(|| format!("cell {cell}: fragments span segments"))
                })
                .collect::<Result<_, _>>()?;
            indices.sort_unstable();
            if indices.windows(2).any(|w| w[1] != w[0] + 1) {
                return Err(format!("cell {cell}: fragments not contiguous"));
            }
        }
        // Incrementally maintained content signatures must match a full
        // recomputation — the soundness condition of the content-addressed
        // selection memo.
        for c in 0..self.design.num_cells() {
            let cell = CellId::new(c);
            if !self.cell_frags[c].is_empty() && self.cell_sig[c] != self.compute_cell_sig(cell) {
                return Err(format!("cell {cell}: stale content signature"));
            }
        }
        for i in 0..self.grid.num_bins() {
            let sum = self.frags[i].iter().fold(0u64, |acc, f| {
                acc.wrapping_add(self.cell_sig[f.cell.index()])
            });
            if sum != self.bin_sig[i] {
                return Err(format!("bin {i}: stale bin signature"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::BinGrid;
    use flow3d_db::{DesignBuilder, DieSpec, LibCellSpec, TechnologySpec};

    fn fixture() -> (Design,) {
        (DesignBuilder::new("t")
            .technology(
                TechnologySpec::new("TA")
                    .lib_cell(LibCellSpec::std_cell("W40", 40, 12))
                    .lib_cell(LibCellSpec::std_cell("W100", 100, 12)),
            )
            .technology(
                TechnologySpec::new("TB")
                    .lib_cell(LibCellSpec::std_cell("W40", 30, 16))
                    .lib_cell(LibCellSpec::std_cell("W100", 80, 16)),
            )
            .die(DieSpec::new("bottom", "TA", (0, 0, 1000, 48), 12, 1, 1.0))
            .die(DieSpec::new("top", "TB", (0, 0, 1000, 48), 16, 1, 1.0))
            .cell("u0", "W40")
            .cell("u1", "W100")
            .cell("u2", "W40")
            .build()
            .unwrap(),)
    }

    fn state_of(design: &Design) -> (RowLayout, BinGrid) {
        let layout = RowLayout::build(design);
        let grid = BinGrid::build(design, &layout, &[100, 100], true);
        (layout, grid)
    }

    #[test]
    fn insert_splits_across_straddled_bins() {
        let (design,) = fixture();
        let (layout, grid) = state_of(&design);
        let anchors = vec![Point::new(80, 0); 3];
        let mut st = FlowState::new(&design, &layout, &grid, anchors);
        let u1 = CellId::new(1); // width 100 on bottom
        let hint = grid.bin_at(layout.segments()[0].id, 80);
        st.insert_cell(u1, hint, 80); // interval [80, 180) straddles 100
        let frags = st.cell_frags(u1);
        assert_eq!(frags.len(), 2);
        assert_eq!(frags.iter().map(|&(_, w)| w).sum::<i64>(), 100);
        assert_eq!(frags[0].1, 20); // [80, 100)
        assert_eq!(frags[1].1, 80); // [100, 180)
        st.check_invariants().unwrap();
        assert_eq!(st.used_area(DieId::BOTTOM), 100 * 12);
    }

    #[test]
    fn insert_clamps_to_segment_edges() {
        let (design,) = fixture();
        let (layout, grid) = state_of(&design);
        let anchors = vec![Point::new(-50, 0); 3];
        let mut st = FlowState::new(&design, &layout, &grid, anchors);
        let u0 = CellId::new(0);
        let hint = grid.bin_at(layout.segments()[0].id, -50);
        st.insert_cell(u0, hint, -50);
        let frags = st.cell_frags(u0);
        assert_eq!(frags.len(), 1);
        assert_eq!(grid.bin(frags[0].0).span.lo, 0);
        st.check_invariants().unwrap();
    }

    #[test]
    fn supply_and_demand_respond_to_usage() {
        let (design,) = fixture();
        let (layout, grid) = state_of(&design);
        let mut st = FlowState::new(&design, &layout, &grid, vec![Point::ORIGIN; 3]);
        let seg = layout.segments()[0].id;
        let b0 = grid.bins_in_segment(seg)[0];
        assert_eq!(st.dem(b0), grid.bin(b0).cap());
        assert_eq!(st.sup(b0), 0);
        // Fill the first bin beyond capacity with two cells at x=0.
        st.insert_cell(CellId::new(1), b0, 0); // width 100 = cap
        st.insert_cell(CellId::new(0), b0, 0); // width 40 overflow
        assert_eq!(st.sup(b0), 40);
        assert_eq!(st.dem(b0), 0);
        assert_eq!(st.total_overflow(), 40);
        assert_eq!(st.overflowed_bins(), vec![b0]);
    }

    #[test]
    fn whole_move_changes_width_across_dies() {
        let (design,) = fixture();
        let (layout, grid) = state_of(&design);
        let mut st = FlowState::new(&design, &layout, &grid, vec![Point::ORIGIN; 3]);
        let u1 = CellId::new(1);
        let bottom_seg = layout
            .segments()
            .iter()
            .find(|s| s.die == DieId::BOTTOM)
            .unwrap()
            .id;
        let top_seg = layout
            .segments()
            .iter()
            .find(|s| s.die == DieId::TOP)
            .unwrap()
            .id;
        st.insert_cell(u1, grid.bins_in_segment(bottom_seg)[0], 0);
        assert_eq!(st.used_area(DieId::BOTTOM), 100 * 12);
        let die = st.remove_cell(u1);
        assert_eq!(die, DieId::BOTTOM);
        assert_eq!(st.used_area(DieId::BOTTOM), 0);
        st.insert_cell_whole(u1, grid.bins_in_segment(top_seg)[0]);
        assert_eq!(st.cell_die(u1), DieId::TOP);
        // Hetero width: 80 on top.
        assert_eq!(st.cell_frags(u1)[0].1, 80);
        assert_eq!(st.used_area(DieId::TOP), 80 * 16);
        st.check_invariants().unwrap();
    }

    #[test]
    fn move_fraction_shifts_width_between_adjacent_bins() {
        let (design,) = fixture();
        let (layout, grid) = state_of(&design);
        let mut st = FlowState::new(&design, &layout, &grid, vec![Point::ORIGIN; 3]);
        let seg = layout.segments()[0].id;
        let bins = grid.bins_in_segment(seg);
        let u1 = CellId::new(1);
        st.insert_cell(u1, bins[0], 80); // 20 in bins[0]... wait anchors 0
                                         // interval [80,180): 20 in b0, 80 in b1.
        st.move_fraction(u1, bins[0], bins[1], 20);
        let frags = st.cell_frags(u1);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], (bins[1], 100));
        st.check_invariants().unwrap();
        // Move part back.
        st.move_fraction(u1, bins[1], bins[0], 30);
        assert_eq!(st.cell_frags(u1).len(), 2);
        assert_eq!(st.cell_frags(u1)[0], (bins[0], 30));
        st.check_invariants().unwrap();
    }

    #[test]
    fn disp_to_uses_bin_local_snap() {
        let (design,) = fixture();
        let (layout, grid) = state_of(&design);
        let st = FlowState::new(&design, &layout, &grid, vec![Point::new(150, 5); 3]);
        let seg = layout.segments()[0].id;
        let b0 = grid.bins_in_segment(seg)[0]; // [0, 100) on row y=0
        let b1 = grid.bins_in_segment(seg)[1]; // [100, 200)
        let u0 = CellId::new(0);
        // Anchor x=150 is inside b1: zero x-cost, y-cost 5.
        assert_eq!(st.disp_to(u0, grid.bin(b1)), 5);
        // b0: clamp to 100 -> x-cost 50, y-cost 5.
        assert_eq!(st.disp_to(u0, grid.bin(b0)), 55);
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let (design,) = fixture();
        let (layout, grid) = state_of(&design);
        let mut st = FlowState::new(&design, &layout, &grid, vec![Point::ORIGIN; 3]);
        assert_eq!(st.generation(), 0);
        let seg = layout.segments()[0].id;
        let bins = grid.bins_in_segment(seg);
        let u1 = CellId::new(1);
        st.insert_cell(u1, bins[0], 80); // straddles bins[0]/bins[1]
        assert_eq!(st.generation(), 1);
        st.move_fraction(u1, bins[0], bins[1], 20);
        assert_eq!(st.generation(), 2);
        st.remove_cell(u1);
        assert_eq!(st.generation(), 3);
        st.insert_cell_whole(u1, bins[0]);
        assert_eq!(st.generation(), 4);
        // Reads leave the generation alone.
        let _ = (st.sup(bins[0]), st.dem(bins[0]), st.disp_current(u1));
        assert_eq!(st.generation(), 4);
    }

    #[test]
    fn area_headroom_tracks_utilization_cap() {
        let (design,) = fixture();
        let (layout, grid) = state_of(&design);
        let mut st = FlowState::new(&design, &layout, &grid, vec![Point::ORIGIN; 3]);
        let free = design.free_area(DieId::BOTTOM);
        assert_eq!(st.area_headroom(DieId::BOTTOM), free);
        st.insert_cell(CellId::new(0), grid.bin_at(layout.segments()[0].id, 0), 0);
        assert_eq!(st.area_headroom(DieId::BOTTOM), free - 40 * 12);
    }

    /// Two states with identical *contents* must report identical bin
    /// signatures, regardless of the mutation history that built them —
    /// the property that lets content-addressed memo entries survive
    /// across rebuilt `FlowState`s (fresh ECO requests) and commits.
    #[test]
    fn bin_signatures_are_history_independent() {
        let (design,) = fixture();
        let (layout, grid) = state_of(&design);
        let anchors = vec![Point::new(80, 0); 3];
        let seg = layout.segments()[0].id;
        let b0 = grid.bin_at(seg, 0);

        // Path A: insert all three directly at their final spots.
        let mut a = FlowState::new(&design, &layout, &grid, anchors.clone());
        a.insert_cell(CellId::new(0), b0, 0);
        a.insert_cell(CellId::new(1), b0, 200);
        a.insert_cell(CellId::new(2), b0, 500);

        // Path B: different insertion order plus a detour (insert,
        // remove, re-insert) converging on the same assignment.
        let mut b = FlowState::new(&design, &layout, &grid, anchors);
        b.insert_cell(CellId::new(2), b0, 500);
        b.insert_cell(CellId::new(1), b0, 700);
        b.remove_cell(CellId::new(1));
        b.insert_cell(CellId::new(0), b0, 0);
        b.insert_cell(CellId::new(1), b0, 200);

        a.check_invariants().unwrap();
        b.check_invariants().unwrap();
        for i in 0..grid.num_bins() {
            let bin = BinId::new(i);
            assert_eq!(
                a.bin_signature(bin),
                b.bin_signature(bin),
                "bin {i} signature depends on history"
            );
        }
        // And a genuinely different assignment is visible in the sig.
        b.remove_cell(CellId::new(0));
        b.insert_cell(CellId::new(0), grid.bin_at(seg, 120), 120);
        assert_ne!(a.bin_signature(b0), b.bin_signature(b0));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::grid::BinGrid;
    use flow3d_db::{DesignBuilder, DieId, DieSpec, LibCellSpec, RowLayout, TechnologySpec};
    use proptest::prelude::*;

    /// Random sequences of state operations preserve every invariant:
    /// usage equals fragment sums, cell fragments are contiguous within
    /// one segment, and widths always total the cell's die width.
    #[test]
    fn random_operation_sequences_preserve_invariants() {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("TA").lib_cell(LibCellSpec::std_cell("C", 30, 10)))
            .technology(TechnologySpec::new("TB").lib_cell(LibCellSpec::std_cell("C", 24, 8)))
            .die(DieSpec::new("bottom", "TA", (0, 0, 300, 30), 10, 1, 1.0))
            .die(DieSpec::new("top", "TB", (0, 0, 300, 24), 8, 1, 1.0));
        for i in 0..8 {
            b = b.cell(format!("u{i}"), "C");
        }
        let design = b.build().unwrap();
        let layout = RowLayout::build(&design);
        let grid = BinGrid::build(&design, &layout, &[60, 60], true);

        proptest!(ProptestConfig::with_cases(64), |(
            ops in proptest::collection::vec((0usize..8, 0u8..4, 0i64..300, 0usize..64), 1..40)
        )| {
            let mut st = FlowState::new(
                &design,
                &layout,
                &grid,
                vec![flow3d_geom::Point::ORIGIN; 8],
            );
            for (cell_idx, op, x, bin_sel) in ops {
                let cell = CellId::new(cell_idx);
                let placed = !st.cell_frags(cell).is_empty();
                match op {
                    // Insert by interval into a pseudo-random segment.
                    0 if !placed => {
                        let seg = &layout.segments()[bin_sel % layout.num_segments()];
                        if seg.width() >= design.cell_width(cell, seg.die) {
                            let hint = grid.bins_in_segment(seg.id)[0];
                            st.insert_cell(cell, hint, x);
                        }
                    }
                    // Whole insert into a pseudo-random bin.
                    1 if !placed => {
                        let bin = crate::grid::BinId::new(bin_sel % grid.num_bins());
                        let b = grid.bin(bin);
                        if layout.segment(b.segment).width()
                            >= design.cell_width(cell, b.die)
                        {
                            st.insert_cell_whole(cell, bin);
                        }
                    }
                    // Remove.
                    2 if placed => {
                        st.remove_cell(cell);
                    }
                    // Fractional shift toward a horizontal neighbour.
                    3 if placed => {
                        let frags: Vec<(crate::grid::BinId, i64)> =
                            st.cell_frags(cell).to_vec();
                        let (from, fw) = frags[bin_sel % frags.len()];
                        let nbr = grid
                            .neighbors(from)
                            .iter()
                            .find(|&&(_, k)| k == crate::grid::EdgeKind::Horizontal)
                            .map(|&(b, _)| b);
                        if let Some(to) = nbr {
                            let movable =
                                crate::selection::test_support::max_fractional_for_tests(
                                    &st, cell, from, to,
                                );
                            if movable > 0 {
                                st.move_fraction(cell, from, to, movable.min(fw).max(1).min(movable));
                            }
                        }
                    }
                    _ => {}
                }
                st.check_invariants().unwrap();
            }
            // Die areas consistent with fragments.
            for die_idx in 0..2 {
                let die = DieId::new(die_idx);
                let expected: i64 = (0..8)
                    .map(CellId::new)
                    .filter(|&c| {
                        !st.cell_frags(c).is_empty() && st.cell_die(c) == die
                    })
                    .map(|c| design.cell_width(c, die) * design.cell_height(die))
                    .sum();
                prop_assert_eq!(st.used_area(die), expected);
            }
        });
    }

}
