//! Augmenting-path search with branch-and-bound (paper Algorithm 1).
//!
//! A best-first search over the 3D grid graph rooted at an overflowed
//! source bin. Each tree node carries the flow that must enter its bin and
//! the accumulated displacement cost; expanding a node selects the cheapest
//! cell set that would push the surplus to a neighbour (see
//! [`selection`](crate::selection)). Bins are visited at most once per
//! search. Branches costlier than `(1 + α)·cost(p_best)` are pruned; for a
//! negative best cost the bound degrades gracefully to
//! `cost(p_best) + α·|cost(p_best)|` (see `DESIGN.md`).
//!
//! The kernel is engineered for the thousands of searches one
//! legalization performs:
//!
//! * the node arena and the priority queue live in [`SearchScratch`] and
//!   are cleared — not reallocated — per search;
//! * the bound is also applied at **pop time**, so entries queued before
//!   `best` tightened are dropped for the cost of one comparison instead
//!   of a full expansion (and no longer inflate the `expanded` counter);
//! * `select_moves` outcomes are memoized in a content-addressed
//!   [`SelectionMemo`], keyed on `(u, v, needed)` and validated by the
//!   [`FlowState::selection_signature`] of the neighborhood the
//!   selection read. Each search consults two layers: a ladder-local
//!   scratch memo (cleared per source retry ladder) and an optional
//!   shared round-start snapshot ([`SearchShared::memo`]) whose entries
//!   survive across sources, rounds, requests, and commits for as long
//!   as their neighborhood contents do. Misses are recorded as
//!   [`MemoWrite`]s for the flow-pass coordinator to merge back in
//!   deterministic source order, which keeps hit/miss telemetry
//!   invariant under the worker count.
//!
//! The same routine runs in **Dijkstra mode** (for the BonnPlaceLegal
//! baseline): costs are clamped non-negative by the selection layer, every
//! node is pushed, nothing is pruned (at generation or pop), and the first
//! *candidate* popped is provably the cheapest — the classic early exit.

use crate::grid::{BinId, EdgeKind};
use crate::selection::{select_moves, MemoWrite, SelectionMemo, SelectionParams};
use crate::state::FlowState;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchParams {
    /// Branch-and-bound slack `α`; `f64::INFINITY` disables pruning.
    pub alpha: f64,
    /// Absolute pruning slack used when the best cost is ~0 (typically
    /// the row height).
    pub slack: f64,
    /// Dijkstra mode: no pruning, first candidate popped wins. Requires
    /// non-negative costs ([`SelectionParams::clamp_negative`]).
    pub dijkstra: bool,
    /// Memoize `select_moves` outcomes (ladder-local scratch layer plus
    /// the shared [`SearchShared::memo`] snapshot when one is passed).
    /// Results are bit-identical either way; off is kept for ablation
    /// ([`Flow3dConfig::selection_memo`]).
    ///
    /// [`Flow3dConfig::selection_memo`]: crate::Flow3dConfig::selection_memo
    pub use_memo: bool,
    /// Slot capacity of the selection memos; `0` (the default) sizes
    /// the shared table from the flow pass's source count via
    /// [`SelectionMemo::auto_slots`]. Bound to
    /// [`Flow3dConfig::memo_slots`].
    ///
    /// [`Flow3dConfig::memo_slots`]: crate::Flow3dConfig::memo_slots
    pub memo_slots: usize,
    /// Cost model shared with realization.
    pub selection: SelectionParams,
}

impl Default for SearchParams {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            slack: 1.0,
            dijkstra: false,
            use_memo: true,
            memo_slots: 0,
            selection: SelectionParams::default(),
        }
    }
}

/// A sorted set of tabooed directed edges: the flow-pass coordinator
/// lists `(from, to)` bin pairs a search must not traverse for a
/// bounded window after detecting A↔B ping-ponging (a path moving cells
/// right back where the previous round moved them from). Frozen per
/// round and derived only from the deterministic serial apply order, so
/// its effect — like everything else in the search — is invariant under
/// the worker count.
#[derive(Debug, Clone, Default)]
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub struct TabuList {
    edges: Vec<(u32, u32)>,
}

impl TabuList {
    /// Builds the list from directed edges (deduplicated, sorted).
    pub fn from_edges(edges: Vec<(BinId, BinId)>) -> Self {
        let mut edges: Vec<(u32, u32)> = edges.into_iter().map(|(u, v)| (u.0, v.0)).collect();
        edges.sort_unstable();
        edges.dedup();
        Self { edges }
    }

    /// Whether no edge is tabooed.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether traversing `u -> v` is currently tabooed.
    #[inline]
    pub fn contains(&self, u: BinId, v: BinId) -> bool {
        self.edges.binary_search(&(u.0, v.0)).is_ok()
    }
}

/// Read-only, round-frozen context shared by every search of one
/// flow-pass round: the shared memo snapshot and the tabu list. Both
/// are optional so standalone searches (tests, embedders) can pass
/// [`SearchShared::default`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchShared<'a> {
    /// Round-start snapshot of the shared selection memo. Lookups hit
    /// it read-only; new outcomes are buffered as [`MemoWrite`]s in the
    /// scratch and merged by the coordinator at round end.
    pub memo: Option<&'a SelectionMemo>,
    /// Directed edges the ping-pong detector has tabooed this round.
    pub tabu: Option<&'a TabuList>,
}

/// One step of the returned path (root source first).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStep {
    /// The bin.
    pub bin: BinId,
    /// Flow entering this bin, in the bin's die units (for the root this
    /// is its supply).
    pub inflow: i64,
    /// Edge kind used to *enter* this bin (meaningless for the root).
    pub edge: EdgeKind,
}

/// A found augmenting path.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentingPath {
    /// Bins from the source to the absorbing sink.
    pub steps: Vec<PathStep>,
    /// Total displacement cost of the path.
    pub cost: f64,
}

impl AugmentingPath {
    /// Path depth: edges traversed from the source to the sink (one less
    /// than the number of bins on the path). This is the sample recorded
    /// into the `search_path_depth` telemetry histogram.
    pub fn depth(&self) -> usize {
        self.steps.len().saturating_sub(1)
    }
}

/// Counters for one search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchCounters {
    /// Nodes popped from the priority queue and expanded (pop-time-pruned
    /// entries are *not* counted here).
    pub expanded: usize,
    /// Nodes created (edges traversed with a feasible selection).
    pub created: usize,
    /// Branches cut by the `(1 + α)·cost(p_best)` bound at child
    /// generation (Algorithm 1 line 13). Always 0 in Dijkstra mode, which
    /// never prunes.
    pub pruned: usize,
    /// Queued entries caught by the same bound at pop time because
    /// `best` tightened after they were pushed. Under clamped
    /// (non-negative) selection costs they are dropped outright; under
    /// the default signed costs they are still expanded (their subtrees
    /// can chain negative-cost moves into a better candidate) but kept
    /// out of `expanded`. Each such entry was a created node, so
    /// `pruned_stale ≤ created` always holds. Always 0 in Dijkstra
    /// mode.
    pub pruned_stale: usize,
    /// `select_moves` calls answered by the [`SelectionMemo`]. 0 when
    /// [`SearchParams::use_memo`] is off.
    pub memo_hits: usize,
    /// `select_moves` calls that missed the memo and ran the selection.
    /// 0 when [`SearchParams::use_memo`] is off.
    pub memo_misses: usize,
}

/// Reusable scratch buffers: allocate once per legalization, reuse across
/// the thousands of searches. Holds the visited-epoch set, the node
/// arena, the priority queue, and the selection memo; all are cleared (or
/// epoch-invalidated), never reallocated, between searches, so their
/// contents can never leak into a later search's result.
#[derive(Debug, Default)]
pub struct SearchScratch {
    visited_epoch: Vec<u32>,
    epoch: u32,
    nodes: Vec<Node>,
    heap: BinaryHeap<Reverse<(OrdF64, u32)>>,
    memo: SelectionMemo,
    writes: Vec<MemoWrite>,
}

impl SearchScratch {
    /// Creates scratch buffers for a grid with `num_bins` bins.
    pub fn new(num_bins: usize) -> Self {
        Self {
            visited_epoch: vec![0; num_bins],
            epoch: 0,
            nodes: Vec::new(),
            heap: BinaryHeap::new(),
            memo: SelectionMemo::new(),
            writes: Vec::new(),
        }
    }

    /// Opens a new ladder-local memo scope: call once per source retry
    /// ladder, before the ladder's first search. Repeat searches within
    /// the ladder (halved limits, the relaxed retry) then share memo
    /// entries without consulting what this scratch served before, so
    /// the ladder-local layer's hits stay a pure function of
    /// `(state, source)`.
    pub fn begin_source(&mut self) {
        self.memo.clear();
    }

    /// Drains the memo writes buffered since the last call: every
    /// `select_moves` outcome this scratch computed (missed in both
    /// layers). The flow-pass coordinator merges them into the shared
    /// memo in source order.
    pub fn take_memo_writes(&mut self) -> Vec<MemoWrite> {
        std::mem::take(&mut self.writes)
    }

    fn begin(&mut self, num_bins: usize) {
        if self.visited_epoch.len() < num_bins {
            self.visited_epoch.resize(num_bins, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visited_epoch.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn visited(&self, bin: BinId) -> bool {
        self.visited_epoch[bin.index()] == self.epoch
    }

    #[inline]
    fn mark(&mut self, bin: BinId) {
        self.visited_epoch[bin.index()] = self.epoch;
    }
}

/// Reusable search state for a whole flow pass (or a resident engine's
/// lifetime): the per-worker [`SearchScratch`]es and the **shared
/// content-addressed selection memo**.
///
/// The shared memo is coordinator-owned. During a round the workers see
/// it as a frozen read-only snapshot ([`SearchShared::memo`]); the
/// outcomes they compute come back as [`MemoWrite`]s and are merged in
/// deterministic source order between rounds. Because entries are
/// validated by content signature — not by generation stamp — they stay
/// servable across rounds, passes, ECO requests, and commits for as long
/// as the neighborhood they describe is unchanged, which is what makes a
/// pool worth keeping resident (see `crate::EcoEngine`).
#[derive(Debug)]
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub struct SearchPool {
    /// Per-worker scratch, grown to the worker count on demand by
    /// `flow_pass_threaded_pooled`.
    pub(crate) scratches: Vec<SearchScratch>,
    /// The shared selection memo; sized on first use from
    /// [`SearchParams::memo_slots`] or the round's source count.
    pub(crate) memo: SelectionMemo,
}

impl SearchPool {
    /// Creates an empty pool; buffers and the memo grow on first use.
    pub fn new() -> Self {
        Self {
            scratches: Vec::new(),
            memo: SelectionMemo::with_slots(0),
        }
    }

    /// Slot capacity of the shared selection memo (minimal until the
    /// first flow pass sizes it from the source count).
    pub fn memo_slots(&self) -> usize {
        self.memo.slots()
    }
}

impl Default for SearchPool {
    fn default() -> Self {
        Self::new()
    }
}

/// Total order on f64 path costs for the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    bin: BinId,
    parent: u32,
    inflow: i64,
    cost: f64,
    edge: EdgeKind,
}

/// The pruning bound of Algorithm 1 line 13, extended to negative costs.
fn bound(best: f64, alpha: f64, slack: f64) -> f64 {
    if best.is_infinite() || alpha.is_infinite() {
        f64::INFINITY
    } else {
        best + alpha * best.abs().max(slack)
    }
}

/// Finds the cheapest augmenting path draining `source`'s supply, or
/// `None` when no reachable bin set can absorb it.
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub fn find_path(
    state: &FlowState<'_>,
    source: BinId,
    params: &SearchParams,
    shared: &SearchShared<'_>,
    scratch: &mut SearchScratch,
    counters: &mut SearchCounters,
) -> Option<AugmentingPath> {
    find_path_limited(state, source, i64::MAX, params, shared, scratch, counters)
}

/// [`find_path`] pushing at most `limit` DBU of the source's supply.
///
/// A single augmenting path can only drain what the bins along it can
/// absorb or forward; when a source's supply exceeds every reachable
/// chain's capacity, the caller retries with smaller limits and drains
/// the source over several augmentations (see `flow_pass`).
#[allow(clippy::too_many_arguments)]
pub fn find_path_limited(
    state: &FlowState<'_>,
    source: BinId,
    limit: i64,
    params: &SearchParams,
    shared: &SearchShared<'_>,
    scratch: &mut SearchScratch,
    counters: &mut SearchCounters,
) -> Option<AugmentingPath> {
    let supply = state.sup(source).min(limit);
    if supply <= 0 {
        return None;
    }
    scratch.begin(state.grid.num_bins());

    scratch.nodes.clear();
    scratch.heap.clear();
    scratch.nodes.push(Node {
        bin: source,
        parent: u32::MAX,
        inflow: supply,
        cost: 0.0,
        edge: EdgeKind::Horizontal,
    });
    scratch.heap.push(Reverse((OrdF64(0.0), 0)));
    scratch.mark(source);

    let mut best: Option<(u32, f64)> = None;

    while let Some(Reverse((OrdF64(cost), idx))) = scratch.heap.pop() {
        let node = scratch.nodes[idx as usize];
        // The visited-epoch set admits each bin at most once per search,
        // so every node gets exactly one heap entry and the popped cost
        // is the node's cost by construction.
        debug_assert_eq!(
            cost.to_bits(),
            node.cost.to_bits(),
            "each node is pushed exactly once"
        );
        let best_cost = best.map(|(_, c)| c).unwrap_or(f64::INFINITY);
        if !params.dijkstra && cost >= bound(best_cost, params.alpha, params.slack) {
            // Pop-time pruning: `best` tightened after this entry was
            // queued, so the entry itself can no longer beat the bound.
            // With clamped (non-negative) selection costs no descendant
            // can either, and the entry is dropped for the price of one
            // comparison. With the default signed costs its subtree can
            // still chain negative-cost moves into a better candidate —
            // exactly the exploration a loose `α` pays for — so the
            // entry is expanded anyway and only excluded from
            // `expanded`, which counts in-bound work.
            counters.pruned_stale += 1;
            if params.selection.clamp_negative {
                continue;
            }
        } else {
            counters.expanded += 1;
        }

        if params.dijkstra {
            // Non-negative costs: the first candidate popped is optimal.
            if idx != 0 && node.inflow <= state.dem(node.bin) {
                return Some(extract(&scratch.nodes, idx));
            }
        }

        let needed = node.inflow - state.dem(node.bin);
        if needed <= 0 {
            continue; // absorbing node (candidate already recorded)
        }
        for &(nbr, kind) in state.grid.neighbors(node.bin) {
            if scratch.visited(nbr) {
                continue;
            }
            if let Some(tabu) = shared.tabu {
                if tabu.contains(node.bin, nbr) {
                    // Ping-pong suppression: the reverse of this edge
                    // was applied recently; the bin stays reachable via
                    // other routes, this edge just sits the window out.
                    continue;
                }
            }
            // The search consumes only the (cost, added_to_v) summary of
            // a selection; `augment::realize` recomputes the full move
            // list against the same frozen state when a path is applied.
            let outcome = if params.use_memo {
                let sig = state.selection_signature(node.bin, nbr, kind == EdgeKind::DieToDie);
                let cached = scratch
                    .memo
                    .lookup(node.bin, nbr, needed, sig)
                    .or_else(|| shared.memo.and_then(|m| m.lookup(node.bin, nbr, needed, sig)));
                match cached {
                    Some(cached) => {
                        counters.memo_hits += 1;
                        cached
                    }
                    None => {
                        counters.memo_misses += 1;
                        let computed =
                            select_moves(state, node.bin, nbr, kind, needed, &params.selection)
                                .map(|sel| (sel.cost, sel.added_to_v));
                        scratch.memo.store(node.bin, nbr, needed, sig, computed);
                        scratch.writes.push(MemoWrite {
                            u: node.bin,
                            v: nbr,
                            needed,
                            sig,
                            outcome: computed,
                        });
                        computed
                    }
                }
            } else {
                select_moves(state, node.bin, nbr, kind, needed, &params.selection)
                    .map(|sel| (sel.cost, sel.added_to_v))
            };
            let Some((sel_cost, added_to_v)) = outcome else {
                continue;
            };
            scratch.mark(nbr);
            let child_cost = node.cost + sel_cost;
            let best_cost = best.map(|(_, c)| c).unwrap_or(f64::INFINITY);
            if !params.dijkstra && child_cost >= bound(best_cost, params.alpha, params.slack) {
                counters.pruned += 1;
                continue; // pruned branch (bin stays visited, as in the paper)
            }
            let child = Node {
                bin: nbr,
                parent: idx,
                inflow: added_to_v,
                cost: child_cost,
                edge: kind,
            };
            let child_idx = scratch.nodes.len() as u32;
            scratch.nodes.push(child);
            counters.created += 1;
            if !params.dijkstra && child.inflow <= state.dem(nbr) {
                // Candidate path found.
                if child_cost < best_cost {
                    best = Some((child_idx, child_cost));
                }
            } else {
                scratch.heap.push(Reverse((OrdF64(child_cost), child_idx)));
            }
        }
    }
    best.map(|(idx, _)| extract(&scratch.nodes, idx))
}

fn extract(nodes: &[Node], leaf: u32) -> AugmentingPath {
    let mut steps = Vec::new();
    let mut idx = leaf;
    let cost = nodes[leaf as usize].cost;
    loop {
        let n = &nodes[idx as usize];
        steps.push(PathStep {
            bin: n.bin,
            inflow: n.inflow,
            edge: n.edge,
        });
        if n.parent == u32::MAX {
            break;
        }
        idx = n.parent;
    }
    steps.reverse();
    AugmentingPath { steps, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::BinGrid;
    use flow3d_db::{
        CellId, Design, DesignBuilder, DieId, DieSpec, LibCellSpec, RowLayout, TechnologySpec,
    };
    use flow3d_geom::Point;

    fn fixture() -> Design {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("W40", 40, 12)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 24), 12, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 400, 24), 12, 1, 1.0));
        for i in 0..8 {
            b = b.cell(format!("u{i}"), "W40");
        }
        b.build().unwrap()
    }

    fn setup(d: &Design, d2d: bool) -> (RowLayout, BinGrid) {
        let layout = RowLayout::build(d);
        let grid = BinGrid::build(d, &layout, &[100, 100], d2d);
        (layout, grid)
    }

    fn seg(layout: &RowLayout, die: DieId, row: usize) -> flow3d_db::SegmentId {
        layout
            .segments()
            .iter()
            .find(|s| s.die == die && s.row.index() == row)
            .unwrap()
            .id
    }

    #[test]
    fn no_supply_no_path() {
        let d = fixture();
        let (layout, grid) = setup(&d, true);
        let st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 8]);
        let b0 = grid.bins_in_segment(seg(&layout, DieId::BOTTOM, 0))[0];
        let mut scratch = SearchScratch::new(grid.num_bins());
        let mut counters = SearchCounters::default();
        assert!(find_path(
            &st,
            b0,
            &SearchParams::default(),
            &SearchShared::default(),
            &mut scratch,
            &mut counters
        )
        .is_none());
    }

    #[test]
    fn one_hop_path_to_adjacent_bin() {
        // Single-row bottom die without D2D edges: the only escape is the
        // horizontal neighbour.
        let d = {
            let mut b = DesignBuilder::new("t")
                .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("W40", 40, 12)))
                .die(DieSpec::new("bottom", "T", (0, 0, 400, 12), 12, 1, 1.0))
                .die(DieSpec::new("top", "T", (0, 0, 400, 12), 12, 1, 1.0));
            for i in 0..3 {
                b = b.cell(format!("u{i}"), "W40");
            }
            b.build().unwrap()
        };
        let (layout, grid) = setup(&d, false);
        let bins = grid.bins_in_segment(seg(&layout, DieId::BOTTOM, 0));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        // 3 cells of 40 in bin 0 (cap 100) -> sup 20.
        for i in 0..3 {
            st.insert_cell(CellId::new(i), bins[0], 0);
        }
        let mut scratch = SearchScratch::new(grid.num_bins());
        let mut counters = SearchCounters::default();
        let path = find_path(
            &st,
            bins[0],
            &SearchParams::default(),
            &SearchShared::default(),
            &mut scratch,
            &mut counters,
        )
        .expect("path");
        assert_eq!(path.steps.len(), 2);
        assert_eq!(path.steps[0].bin, bins[0]);
        assert_eq!(path.steps[0].inflow, 20);
        assert_eq!(path.steps[1].bin, bins[1]);
        assert_eq!(path.steps[1].inflow, 20);
        assert!(path.cost > 0.0);
        assert_eq!(path.depth(), 1);
        assert!(counters.expanded >= 1);
    }

    #[test]
    fn search_prefers_cheapest_escape_across_edge_kinds() {
        // With D2D enabled and everything anchored at the origin, the
        // top-die bin directly above (distance 0 in plan view) beats the
        // horizontal neighbour 100 DBU away.
        let d = fixture();
        let (layout, grid) = setup(&d, true);
        let bins = grid.bins_in_segment(seg(&layout, DieId::BOTTOM, 0));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 8]);
        for i in 0..3 {
            st.insert_cell(CellId::new(i), bins[0], 0);
        }
        let mut scratch = SearchScratch::new(grid.num_bins());
        let mut counters = SearchCounters::default();
        let path = find_path(
            &st,
            bins[0],
            &SearchParams::default(),
            &SearchShared::default(),
            &mut scratch,
            &mut counters,
        )
        .expect("path");
        let last = path.steps.last().unwrap();
        assert!(st.dem(last.bin) >= last.inflow);
        assert_ne!(grid.bin(last.bin).die, DieId::BOTTOM);
    }

    #[test]
    fn multi_hop_when_neighbours_are_full() {
        let d = fixture();
        let (layout, grid) = setup(&d, false);
        let bins = grid.bins_in_segment(seg(&layout, DieId::BOTTOM, 0));
        assert_eq!(bins.len(), 4);
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 8]);
        // Fill bin0 with 3 cells (120/100) and bins 1,2 exactly full (100
        // each = 2.5 cells... use 40-wide cells: 2 cells = 80 leaves dem 20.
        // Instead use row 1 as escape: fill ALL of row 0 to capacity.
        for (i, b) in [
            (0, 0),
            (1, 0),
            (2, 0),
            (3, 1),
            (4, 1),
            (5, 2),
            (6, 2),
            (7, 3),
        ] {
            st.insert_cell(CellId::new(i), bins[b], (b * 100) as i64);
        }
        // bin0: 120/100 sup 20; bin1: 80/100 dem 20 -> absorbed next door.
        let mut scratch = SearchScratch::new(grid.num_bins());
        let mut counters = SearchCounters::default();
        let path = find_path(
            &st,
            bins[0],
            &SearchParams::default(),
            &SearchShared::default(),
            &mut scratch,
            &mut counters,
        )
        .expect("path");
        assert!(path.steps.len() >= 2);
        let last = path.steps.last().unwrap();
        assert!(st.dem(last.bin) >= last.inflow);
    }

    #[test]
    fn d2d_escape_when_die_is_full() {
        let d = fixture();
        // Small bottom die fully packed; top die empty.
        let d = {
            let _ = d;
            let mut b = DesignBuilder::new("t")
                .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("W40", 40, 12)))
                .die(DieSpec::new("bottom", "T", (0, 0, 120, 12), 12, 1, 1.0))
                .die(DieSpec::new("top", "T", (0, 0, 120, 12), 12, 1, 1.0));
            for i in 0..4 {
                b = b.cell(format!("u{i}"), "W40");
            }
            b.build().unwrap()
        };
        let (layout, grid) = setup(&d, true);
        let bins = grid.bins_in_segment(seg(&layout, DieId::BOTTOM, 0));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 4]);
        for i in 0..4 {
            st.insert_cell(CellId::new(i), bins[0], 0);
        }
        // 160 used / 120 cap: the only escape is the top die.
        let mut scratch = SearchScratch::new(grid.num_bins());
        let mut counters = SearchCounters::default();
        let path = find_path(
            &st,
            bins[0],
            &SearchParams::default(),
            &SearchShared::default(),
            &mut scratch,
            &mut counters,
        )
        .expect("path via top die");
        assert!(path.steps.iter().any(|s| grid.bin(s.bin).die == DieId::TOP));

        // Without D2D edges the search must fail.
        let (layout2, grid2) = setup(&d, false);
        let bins2 = grid2.bins_in_segment(seg(&layout2, DieId::BOTTOM, 0));
        let mut st2 = FlowState::new(&d, &layout2, &grid2, vec![Point::ORIGIN; 4]);
        for i in 0..4 {
            st2.insert_cell(CellId::new(i), bins2[0], 0);
        }
        let mut scratch2 = SearchScratch::new(grid2.num_bins());
        assert!(find_path(
            &st2,
            bins2[0],
            &SearchParams::default(),
            &SearchShared::default(),
            &mut scratch2,
            &mut counters
        )
        .is_none());
    }

    #[test]
    fn tighter_alpha_expands_fewer_nodes() {
        let d = fixture();
        let (layout, grid) = setup(&d, true);
        let bins = grid.bins_in_segment(seg(&layout, DieId::BOTTOM, 0));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 8]);
        for i in 0..3 {
            st.insert_cell(CellId::new(i), bins[0], 0);
        }
        let run = |alpha: f64| {
            let mut scratch = SearchScratch::new(grid.num_bins());
            let mut counters = SearchCounters::default();
            let p = find_path(
                &st,
                bins[0],
                &SearchParams {
                    alpha,
                    ..Default::default()
                },
                &SearchShared::default(),
                &mut scratch,
                &mut counters,
            )
            .unwrap();
            (p.cost, counters.created)
        };
        let (cost_greedy, created_greedy) = run(0.0);
        let (cost_full, created_full) = run(f64::INFINITY);
        assert!(created_greedy <= created_full);
        // Exhaustive search can only be at least as good.
        assert!(cost_full <= cost_greedy + 1e-9);
    }

    #[test]
    fn dijkstra_mode_finds_nonnegative_path() {
        let d = fixture();
        let (layout, grid) = setup(&d, false);
        let bins = grid.bins_in_segment(seg(&layout, DieId::BOTTOM, 0));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 8]);
        for i in 0..3 {
            st.insert_cell(CellId::new(i), bins[0], 0);
        }
        let mut scratch = SearchScratch::new(grid.num_bins());
        let mut counters = SearchCounters::default();
        let params = SearchParams {
            dijkstra: true,
            selection: SelectionParams {
                clamp_negative: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let path = find_path(
            &st,
            bins[0],
            &params,
            &SearchShared::default(),
            &mut scratch,
            &mut counters,
        )
        .expect("path");
        assert!(path.cost >= 0.0);
        let last = path.steps.last().unwrap();
        assert!(st.dem(last.bin) >= last.inflow);
    }

    #[test]
    fn bound_handles_negative_and_infinite_costs() {
        assert_eq!(bound(f64::INFINITY, 0.1, 1.0), f64::INFINITY);
        assert_eq!(bound(10.0, f64::INFINITY, 1.0), f64::INFINITY);
        assert!((bound(10.0, 0.1, 1.0) - 11.0).abs() < 1e-12);
        // Negative best: bound must be *looser* (greater) than best.
        let b = bound(-10.0, 0.1, 1.0);
        assert!(b > -10.0);
        assert!((b - -9.0).abs() < 1e-12);
        // Zero best cost: absolute slack applies.
        assert!((bound(0.0, 0.1, 12.0) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn memo_does_not_change_the_path_and_counters_relate() {
        let d = fixture();
        let (layout, grid) = setup(&d, true);
        let bins = grid.bins_in_segment(seg(&layout, DieId::BOTTOM, 0));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 8]);
        for i in 0..3 {
            st.insert_cell(CellId::new(i), bins[0], 0);
        }
        let run = |use_memo: bool| {
            let mut scratch = SearchScratch::new(grid.num_bins());
            scratch.begin_source();
            let mut counters = SearchCounters::default();
            let p = find_path(
                &st,
                bins[0],
                &SearchParams {
                    use_memo,
                    ..Default::default()
                },
                &SearchShared::default(),
                &mut scratch,
                &mut counters,
            )
            .expect("path");
            (p, counters)
        };
        let (with_memo, c_on) = run(true);
        let (without, c_off) = run(false);
        assert_eq!(with_memo.steps, without.steps);
        assert_eq!(with_memo.cost.to_bits(), without.cost.to_bits());
        assert_eq!(
            (c_on.expanded, c_on.created, c_on.pruned, c_on.pruned_stale),
            (
                c_off.expanded,
                c_off.created,
                c_off.pruned,
                c_off.pruned_stale
            ),
            "the memo may only change hit/miss telemetry"
        );
        assert_eq!(c_off.memo_hits + c_off.memo_misses, 0);
        assert!(c_on.memo_misses > 0, "a fresh scope must miss");
        assert!(c_on.pruned_stale <= c_on.created);
        // Every pop is either expanded or stale-pruned; pushes are the
        // root plus the non-candidate created nodes.
        assert!(c_on.expanded + c_on.pruned_stale <= c_on.created + 1);
    }

    #[test]
    fn memo_hits_within_a_retry_ladder_and_self_invalidates_on_mutation() {
        let d = fixture();
        let (layout, grid) = setup(&d, true);
        let bins = grid.bins_in_segment(seg(&layout, DieId::BOTTOM, 0));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 8]);
        for i in 0..4 {
            st.insert_cell(CellId::new(i), bins[0], 0);
        }
        let mut scratch = SearchScratch::new(grid.num_bins());
        scratch.begin_source();
        let params = SearchParams::default();
        let shared = SearchShared::default();
        let mut c1 = SearchCounters::default();
        let p1 = find_path(&st, bins[0], &params, &shared, &mut scratch, &mut c1).expect("path");
        // Same ladder, same limit: the repeat search must be answered
        // entirely from the ladder-local memo and return the identical
        // path.
        let mut c2 = SearchCounters::default();
        let p2 = find_path(&st, bins[0], &params, &shared, &mut scratch, &mut c2).expect("path");
        assert_eq!(p1.steps, p2.steps);
        assert_eq!(p1.cost.to_bits(), p2.cost.to_bits());
        assert!(c2.memo_hits > 0, "repeat search must hit");
        assert_eq!(c2.memo_misses, 0, "nothing new to compute");
        // A state mutation changes the content signatures, so stale
        // entries stop matching without any explicit invalidation call.
        st.insert_cell(CellId::new(4), bins[0], 0);
        let mut c3 = SearchCounters::default();
        let _ = find_path(&st, bins[0], &params, &shared, &mut scratch, &mut c3);
        assert_eq!(c3.memo_hits, 0, "stale entries must not replay");
        assert!(c3.memo_misses > 0);
    }

    #[test]
    fn shared_memo_snapshot_answers_a_cold_scratch() {
        // A fresh ladder with an empty local memo must be answered from
        // the shared round-start snapshot built out of a previous
        // ladder's buffered writes — the cross-source reuse path that the
        // generation-stamped memo could never take.
        let d = fixture();
        let (layout, grid) = setup(&d, true);
        let bins = grid.bins_in_segment(seg(&layout, DieId::BOTTOM, 0));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 8]);
        for i in 0..4 {
            st.insert_cell(CellId::new(i), bins[0], 0);
        }
        let params = SearchParams::default();

        let mut warm = SearchScratch::new(grid.num_bins());
        warm.begin_source();
        let mut c0 = SearchCounters::default();
        let p0 = find_path(
            &st,
            bins[0],
            &params,
            &SearchShared::default(),
            &mut warm,
            &mut c0,
        )
        .expect("path");
        let writes = warm.take_memo_writes();
        assert_eq!(writes.len(), c0.memo_misses, "one write per miss");

        let mut shared_memo = SelectionMemo::new();
        shared_memo.absorb(&writes);
        let shared = SearchShared {
            memo: Some(&shared_memo),
            ..Default::default()
        };
        let mut cold = SearchScratch::new(grid.num_bins());
        cold.begin_source();
        let mut c1 = SearchCounters::default();
        let p1 = find_path(&st, bins[0], &params, &shared, &mut cold, &mut c1).expect("path");
        assert_eq!(p0.steps, p1.steps);
        assert_eq!(p0.cost.to_bits(), p1.cost.to_bits());
        assert!(c1.memo_hits > 0, "snapshot must answer the cold ladder");
        assert_eq!(c1.memo_misses, 0);
        // Shared hits must not be re-buffered as writes.
        assert!(cold.take_memo_writes().is_empty());
    }

    #[test]
    fn tabu_list_blocks_an_edge_and_changes_the_escape() {
        // Whatever edge the free search takes out of the overflowed
        // source, tabu it: the re-search must route around it (the
        // reverse direction stays open in the list).
        let d = fixture();
        let (layout, grid) = setup(&d, false);
        let bins = grid.bins_in_segment(seg(&layout, DieId::BOTTOM, 0));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 8]);
        for i in 0..3 {
            st.insert_cell(CellId::new(i), bins[0], 0);
        }
        let params = SearchParams::default();
        let mut scratch = SearchScratch::new(grid.num_bins());
        let mut counters = SearchCounters::default();

        scratch.begin_source();
        let free = find_path(
            &st,
            bins[0],
            &params,
            &SearchShared::default(),
            &mut scratch,
            &mut counters,
        )
        .expect("path");
        let first_hop = free.steps[1].bin;

        let tabu = TabuList::from_edges(vec![(bins[0], first_hop)]);
        assert!(tabu.contains(bins[0], first_hop));
        assert!(!tabu.contains(first_hop, bins[0]));
        let shared = SearchShared {
            tabu: Some(&tabu),
            ..Default::default()
        };
        scratch.begin_source();
        let detour =
            find_path(&st, bins[0], &params, &shared, &mut scratch, &mut counters).expect("path");
        assert_ne!(
            detour.steps[1].bin, first_hop,
            "the tabu edge out of the source must not be taken"
        );
        assert!(detour.cost >= free.cost, "the detour cannot be cheaper");
    }

    #[test]
    fn scratch_epoch_survives_many_searches() {
        let mut s = SearchScratch::new(4);
        for _ in 0..10 {
            s.begin(4);
            assert!(!s.visited(BinId::new(2)));
            s.mark(BinId::new(2));
            assert!(s.visited(BinId::new(2)));
        }
    }
}
