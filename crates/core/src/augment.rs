//! Path realization: moving cells along the augmenting path (paper §III-C).
//!
//! The path is realized from the leaf (sink) back to the root (source): at
//! each edge `(u, v)` the same deterministic selection as the search picks
//! the cell set, so the flow values recorded during the search are exactly
//! reproduced. Processing leaf-first means each source bin of an edge is
//! still untouched when its outgoing move executes.

use crate::search::AugmentingPath;
use crate::selection::{select_moves, SelectionParams};
use crate::state::FlowState;

/// Realizes `path`, mutating `state`. Returns the number of whole-cell
/// relocations performed (fractional shifts are not counted).
///
/// Whole-cell moves on downstream edges may remove fragments from bins
/// earlier in the path (a relocated cell's fragments can sit anywhere in
/// its segment), so the recomputed per-edge out-flow can shrink relative
/// to the search. Such edges are fulfilled partially or skipped — both
/// only ever *under*-fill downstream bins, never create new overflow; any
/// supply left at the source is re-queued by the flow pass.
pub fn realize(
    state: &mut FlowState<'_>,
    path: &AugmentingPath,
    params: &SelectionParams,
) -> usize {
    let mut whole_moves = 0;
    for i in (1..path.steps.len()).rev() {
        let from = path.steps[i - 1];
        let to = path.steps[i];
        let mut needed = from.inflow - state.dem(from.bin);
        if needed <= 0 {
            continue; // drift absorbed the surplus: nothing to forward
        }
        let sel = loop {
            match select_moves(state, from.bin, to.bin, to.edge, needed, params) {
                Some(sel) => break Some(sel),
                None if needed > 1 => needed /= 2, // partial fulfilment
                None => break None,
            }
        };
        let Some(sel) = sel else { continue };
        for mv in &sel.moves {
            if mv.whole {
                state.remove_cell(mv.cell);
                state.insert_cell_whole(mv.cell, to.bin);
                whole_moves += 1;
            } else {
                state.move_fraction(mv.cell, from.bin, to.bin, mv.width_from_u);
            }
        }
    }
    whole_moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::BinGrid;
    use crate::search::{find_path, SearchCounters, SearchParams, SearchScratch, SearchShared};
    use flow3d_db::{
        CellId, Design, DesignBuilder, DieId, DieSpec, LibCellSpec, RowLayout, TechnologySpec,
    };
    use flow3d_geom::Point;

    fn fixture() -> Design {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("W40", 40, 12)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 24), 12, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 400, 24), 12, 1, 1.0));
        for i in 0..10 {
            b = b.cell(format!("u{i}"), "W40");
        }
        b.build().unwrap()
    }

    fn run_one_augmentation(d2d: bool) -> (i64, usize) {
        let d = fixture();
        let layout = RowLayout::build(&d);
        let grid = BinGrid::build(&d, &layout, &[100, 100], d2d);
        let seg = layout
            .segments()
            .iter()
            .find(|s| s.die == DieId::BOTTOM && s.row.index() == 0)
            .unwrap()
            .id;
        let bins = grid.bins_in_segment(seg);
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 10]);
        for i in 0..3 {
            st.insert_cell(CellId::new(i), bins[0], 0);
        }
        let before = st.total_overflow();
        assert_eq!(before, 20);
        let mut scratch = SearchScratch::new(grid.num_bins());
        let mut counters = SearchCounters::default();
        let params = SearchParams::default();
        let path = find_path(&st, bins[0], &params, &SearchShared::default(), &mut scratch, &mut counters).unwrap();
        let whole = realize(&mut st, &path, &params.selection);
        st.check_invariants().unwrap();
        (st.total_overflow(), whole)
    }

    #[test]
    fn realization_drains_the_source() {
        let (overflow, _) = run_one_augmentation(true);
        assert_eq!(overflow, 0);
    }

    #[test]
    fn planar_only_realization_also_drains() {
        let (overflow, _) = run_one_augmentation(false);
        assert_eq!(overflow, 0);
    }

    #[test]
    fn whole_cell_moves_counted() {
        // Force a cross-row move: single-bin rows on the bottom die.
        let d = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("W40", 40, 12)))
            .die(DieSpec::new("bottom", "T", (0, 0, 80, 24), 12, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 80, 24), 12, 1, 1.0))
            .cell("u0", "W40")
            .cell("u1", "W40")
            .cell("u2", "W40")
            .build()
            .unwrap();
        let layout = RowLayout::build(&d);
        let grid = BinGrid::build(&d, &layout, &[80, 80], false);
        let seg = layout
            .segments()
            .iter()
            .find(|s| s.die == DieId::BOTTOM && s.row.index() == 0)
            .unwrap()
            .id;
        let b0 = grid.bins_in_segment(seg)[0];
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        for i in 0..3 {
            st.insert_cell(CellId::new(i), b0, 0);
        }
        // 120 used / 80 cap; the single segment bin forces a row jump.
        let mut scratch = SearchScratch::new(grid.num_bins());
        let mut counters = SearchCounters::default();
        let params = SearchParams::default();
        let path = find_path(&st, b0, &params, &SearchShared::default(), &mut scratch, &mut counters).unwrap();
        let whole = realize(&mut st, &path, &params.selection);
        assert!(whole >= 1);
        assert_eq!(st.total_overflow(), 0);
        st.check_invariants().unwrap();
        // The mover now lives on row 1 of the bottom die.
        let moved = (0..3)
            .map(CellId::new)
            .filter(|&c| st.grid.bin(st.cell_frags(c)[0].0).row.index() == 1)
            .count();
        assert_eq!(moved, 1);
    }

    #[test]
    fn multi_edge_path_preserves_invariants() {
        // Chain: all of row 0 nearly full; overflow must hop 2+ bins.
        let d = fixture();
        let layout = RowLayout::build(&d);
        let grid = BinGrid::build(&d, &layout, &[100, 100], false);
        let seg = layout
            .segments()
            .iter()
            .find(|s| s.die == DieId::BOTTOM && s.row.index() == 0)
            .unwrap()
            .id;
        let bins = grid.bins_in_segment(seg);
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 10]);
        // bin0: 3 cells (120); bin1: 2 cells and 80+20 = full via overlap:
        // place 2 cells at 100 and 140 (fits 100..180), bin1 usage 80.
        st.insert_cell(CellId::new(0), bins[0], 0);
        st.insert_cell(CellId::new(1), bins[0], 0);
        st.insert_cell(CellId::new(2), bins[0], 0);
        st.insert_cell(CellId::new(3), bins[1], 100);
        st.insert_cell(CellId::new(4), bins[1], 140);
        st.insert_cell(CellId::new(5), bins[1], 120);
        // bin1 now has 120/100: two sources exist. Drain bin0 first.
        let mut scratch = SearchScratch::new(grid.num_bins());
        let mut counters = SearchCounters::default();
        let params = SearchParams::default();
        let path = find_path(&st, bins[0], &params, &SearchShared::default(), &mut scratch, &mut counters).unwrap();
        realize(&mut st, &path, &params.selection);
        st.check_invariants().unwrap();
        assert_eq!(st.sup(bins[0]), 0);
    }
}
