//! Post-optimization with cycle-canceling (paper §III-E).
//!
//! After a legal placement exists, cells whose displacement exceeds
//! `max(5·h_r, D_max / 2)` are re-seeded at the midpoint between their
//! current and initial positions — constructing, in flow terms, a negative
//! cycle that moves them back toward their origin. The resulting local
//! overflow is drained by another (incremental) flow pass on a finer bin
//! grid (`5·w̄_c`), followed by `PlaceRow`. Passes repeat while the
//! maximum displacement improves.

use crate::assign;
use crate::config::Flow3dConfig;
use crate::driver::{bin_widths, flow_pass_threaded, placerow_all_threaded};
use crate::error::LegalizeError;
use crate::grid::BinGrid;
use crate::search::SearchParams;
use crate::state::{FlowState, GeomSource};
use crate::traits::LegalizeStats;
use flow3d_db::{CellId, Design, LegalPlacement, Placement3d, RowLayout};
use flow3d_obs::{keys, Obs, ObsExt};

/// Runs up to `config.post_passes` cycle-canceling passes, replacing
/// `placement` whenever a pass reduces the maximum displacement.
///
/// When `obs` is `Some`, each pass's flow and row phases nest under the
/// caller's open scope and [`keys::CYCLE_RELEGALIZATIONS`] counts the
/// passes whose result was accepted.
///
/// # Errors
///
/// Propagates flow-pass and row-legalization failures; `placement` is
/// left at the last accepted state.
#[allow(clippy::too_many_arguments)]
pub fn post_optimize(
    design: &Design,
    layout: &RowLayout,
    global: &Placement3d,
    config: &Flow3dConfig,
    base_params: &SearchParams,
    placement: &mut LegalPlacement,
    stats: &mut LegalizeStats,
    mut obs: Obs<'_>,
) -> Result<(), LegalizeError> {
    post_optimize_with_geom(
        design,
        layout,
        global,
        config,
        base_params,
        placement,
        stats,
        &GeomSource::Owned(flow3d_db::SoaView::geometry(design)),
        obs.reborrow(),
    )
}

/// [`post_optimize`] with an explicit geometry source shared by every
/// pass's re-seeded [`FlowState`] (the driver passes its prebuilt view).
///
/// # Errors
///
/// Same as [`post_optimize`].
#[allow(clippy::too_many_arguments)]
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub fn post_optimize_with_geom(
    design: &Design,
    layout: &RowLayout,
    global: &Placement3d,
    config: &Flow3dConfig,
    base_params: &SearchParams,
    placement: &mut LegalPlacement,
    stats: &mut LegalizeStats,
    geom: &GeomSource<'_>,
    mut obs: Obs<'_>,
) -> Result<(), LegalizeError> {
    let n = design.num_cells();
    if n == 0 {
        return Ok(());
    }
    let threads = flow3d_par::resolve_threads(config.threads);
    let anchors = assign::anchors(design, global);
    let widths = bin_widths(design, config.post_bin_width_factor);
    let grid = BinGrid::build(design, layout, &widths, config.allow_d2d);
    let h_max = design
        .dies()
        .iter()
        .map(|d| d.row_height)
        .max()
        .unwrap_or(1);

    let disp = |pl: &LegalPlacement, c: CellId| {
        let a = anchors[c.index()];
        pl.pos(c).manhattan(a)
    };
    let max_disp =
        |pl: &LegalPlacement| (0..n).map(|i| disp(pl, CellId::new(i))).max().unwrap_or(0);

    let mut current_max = max_disp(placement);
    for _pass in 0..config.post_passes {
        let threshold = (5 * h_max).max(current_max / 2);
        let selected: Vec<CellId> = (0..n)
            .map(CellId::new)
            .filter(|&c| disp(placement, c) > threshold)
            .collect();
        if selected.is_empty() {
            break;
        }

        // Re-seed: selected cells at the midpoint toward their origin,
        // everything else at its current legal position.
        let mut state = FlowState::with_geom(design, layout, &grid, anchors.clone(), geom.clone());
        let mut is_selected = vec![false; n];
        for &c in &selected {
            is_selected[c.index()] = true;
        }
        let mut seeded = true;
        for i in 0..n {
            let c = CellId::new(i);
            let die = placement.die(c);
            let p = placement.pos(c);
            let (x, y) = if is_selected[i] {
                let a = anchors[i];
                ((p.x + a.x) / 2, (p.y + a.y) / 2)
            } else {
                (p.x, p.y)
            };
            let w = state.cell_width(c, die);
            match layout.nearest_position(design, die, x, y, w) {
                Some((seg, sx)) => {
                    let hint = state.grid.bin_at(seg.id, sx);
                    state.insert_cell(c, hint, sx);
                }
                None => {
                    seeded = false;
                    break;
                }
            }
        }
        if !seeded {
            break; // cannot re-seed (pathological layout); keep current
        }

        // Accumulate the pass's counters into a scratch first: a rejected
        // pass's placement is discarded, so its augmentations/moves must
        // not pollute the reported run totals either. The observability
        // counters (bumped inside flow_pass_threaded) still record the
        // work — telemetry measures work done, stats the accepted outcome.
        let mut pass_stats = LegalizeStats::default();
        obs.begin("flow_pass");
        let flowed = flow_pass_threaded(
            &mut state,
            base_params,
            threads,
            &mut pass_stats,
            obs.reborrow(),
        );
        obs.end("flow_pass");
        flowed?;
        obs.begin("placerow");
        let placed = placerow_all_threaded(&state, config.row_algo, threads, obs.reborrow());
        obs.end("placerow");
        let candidate = placed?;
        let new_max = max_disp(&candidate);
        if new_max < current_max {
            *placement = candidate;
            current_max = new_max;
            stats.absorb(&pass_stats);
            stats.post_passes += 1;
            obs.bump(keys::CYCLE_RELEGALIZATIONS, 1);
            obs.instant("cycle_pass_accepted");
        } else {
            obs.instant("cycle_pass_rejected");
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Flow3dLegalizer;
    use crate::traits::Legalizer;
    use flow3d_db::{DesignBuilder, DieSpec, LibCellSpec, TechnologySpec};
    use flow3d_geom::FPoint;
    use flow3d_metrics::{check_legal, displacement_stats};

    /// A narrow, crowded design where the greedy flow can strand one cell
    /// far away; post-optimization should pull the worst cell back.
    fn crowded() -> (Design, Placement3d) {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("W50", 50, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 300, 100), 10, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 300, 100), 10, 1, 1.0));
        let n = 22;
        for i in 0..n {
            b = b.cell(format!("u{i}"), "W50");
        }
        let design = b.build().unwrap();
        let mut gp = Placement3d::new(n);
        for i in 0..n {
            let c = flow3d_db::CellId::new(i);
            // All cells want the bottom-left corner of the bottom die.
            gp.set_pos(c, FPoint::new((i % 3) as f64 * 20.0, (i % 2) as f64 * 10.0));
            gp.set_die_affinity(c, 0.1);
        }
        (design, gp)
    }

    #[test]
    fn post_opt_never_worsens_max_displacement() {
        let (d, gp) = crowded();
        let without = Flow3dLegalizer::new(Flow3dConfig {
            post_opt: false,
            ..Default::default()
        })
        .legalize(&d, &gp)
        .unwrap();
        let with = Flow3dLegalizer::default().legalize(&d, &gp).unwrap();
        assert!(check_legal(&d, &with.placement).is_legal());
        let s_without = displacement_stats(&d, &gp, &without.placement);
        let s_with = displacement_stats(&d, &gp, &with.placement);
        assert!(
            s_with.max_dbu <= s_without.max_dbu + 1e-9,
            "post-opt worsened max: {} -> {}",
            s_without.max_dbu,
            s_with.max_dbu
        );
    }

    /// One full row of identically-anchored cells: any permutation has the
    /// same displacement multiset, so a post pass can shuffle cells but
    /// never improve the maximum — every pass is rejected.
    fn full_row_fixture() -> (Design, Placement3d) {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("W40", 40, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 10), 10, 1, 1.0))
            // Too little area headroom for even one cell: nothing can
            // escape to the top die.
            .die(DieSpec::new("top", "T", (0, 0, 400, 10), 10, 1, 0.01));
        for i in 0..10 {
            b = b.cell(format!("u{i}"), "W40");
        }
        let d = b.build().unwrap();
        let mut gp = Placement3d::new(10);
        for i in 0..10 {
            let c = CellId::new(i);
            gp.set_pos(c, FPoint::new(400.0, 0.0));
            gp.set_die_affinity(c, 0.1);
        }
        (d, gp)
    }

    #[test]
    fn rejected_pass_does_not_pollute_stats() {
        let (d, gp) = full_row_fixture();
        let without = Flow3dLegalizer::new(Flow3dConfig {
            post_opt: false,
            ..Default::default()
        })
        .legalize(&d, &gp)
        .unwrap();
        let mut profile = flow3d_obs::Profile::new();
        let with = Flow3dLegalizer::default()
            .legalize_observed(&d, &gp, Some(&mut profile))
            .unwrap();
        assert!(check_legal(&d, &with.placement).is_legal());
        assert_eq!(with.stats.post_passes, 0, "every pass must be rejected");
        assert_eq!(
            with.stats.augmentations, without.stats.augmentations,
            "a rejected post pass must not leak augmentations into stats"
        );
        assert_eq!(with.stats.cells_moved, without.stats.cells_moved);
        // The rejected pass still ran and did real search work, which
        // stays visible in telemetry: stats report the accepted outcome,
        // the profile reports the work performed.
        let post_flow = profile
            .phases()
            .find(|(p, _)| *p == "legalize/post_opt/flow_pass")
            .map(|(_, s)| s.calls)
            .unwrap_or(0);
        assert!(post_flow >= 1, "fixture never exercised a post pass");
        assert!(profile.counters().get(keys::AUGMENTING_PATHS) >= with.stats.augmentations as u64);
    }

    #[test]
    fn post_opt_is_noop_for_small_displacements() {
        // A sparse design where every cell lands at its anchor: nothing
        // crosses the threshold, zero post passes run.
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("W10", 10, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 400, 40), 10, 1, 1.0));
        for i in 0..4 {
            b = b.cell(format!("u{i}"), "W10");
        }
        let d = b.build().unwrap();
        let mut gp = Placement3d::new(4);
        for i in 0..4 {
            gp.set_pos(
                flow3d_db::CellId::new(i),
                FPoint::new(i as f64 * 50.0, 10.0),
            );
        }
        let outcome = Flow3dLegalizer::default().legalize(&d, &gp).unwrap();
        assert_eq!(outcome.stats.post_passes, 0);
        let s = displacement_stats(&d, &gp, &outcome.placement);
        assert_eq!(s.max_dbu, 0.0);
    }
}
