//! Resident ECO engine: warm-cache lifecycle for repeated incremental
//! legalization.
//!
//! [`Flow3dLegalizer::legalize_incremental`](crate::Flow3dLegalizer::legalize_incremental) re-derives everything on
//! every call: it re-parses nothing, but it does rebuild the
//! [`RowLayout`], the [`BinGrid`], re-resolves a seed position for every
//! cell, and allocates fresh search scratch — the wrong shape for a
//! service that replays small ECO batches against one design. This
//! module hoists all of that into an [`EcoEngine`] that owns the design
//! and keeps resident, across requests:
//!
//! * the **row layout** and **bin grid** (CSR adjacency) of the design,
//! * a **seed cache**: the resolved `(bin, x)` slot of every cell at its
//!   base position, so unmoved cells skip `nearest_position` entirely,
//! * the **search pool**: per-worker [`SearchScratch`](crate::search::SearchScratch)
//!   arenas (node arena, heap, ladder-local memo) plus the **shared
//!   content-addressed selection memo**, which keep their allocations —
//!   and the memoized selections — warm across requests.
//!
//! # Bit-identity with the one-shot path
//!
//! [`EcoEngine::eco`] and [`Flow3dLegalizer::legalize_incremental`](crate::Flow3dLegalizer::legalize_incremental) run
//! the *same* pipeline (`crate::incremental::run_eco`): the per-request
//! [`FlowState`](crate::state::FlowState) is rebuilt by the same insert loop in cell
//! order, with cached seeds replaying exactly what fresh resolution
//! would compute. Every downstream phase is deterministic in the seeded
//! state, so the engine's placements are bit-identical to the one-shot
//! API for every request — the caches carry capacity, never decisions.
//!
//! # Warm selection memo
//!
//! The shared selection memo survives in the pool between requests with
//! **no invalidation protocol at all**: every entry is keyed by a
//! content signature of the neighborhood the selection read (see
//! [`FlowState::selection_signature`](crate::state::FlowState::selection_signature)),
//! so an entry replays exactly when the bins it describes hold the same
//! content again — and silently stops matching the moment they do not.
//! Requests with *disjoint* move sets therefore warm each other: the
//! parts of the design an ECO does not touch re-seed to identical
//! content, their signatures repeat, and the next request's selections
//! in those regions are answered from the memo. `commit()` keeps the
//! memo too, for the same reason. Hit counts are thread-count invariant
//! (the memo is coordinator-owned; workers see a frozen round snapshot
//! and their writes merge in source order), and a memo hit replays
//! exactly what the selection would recompute, so warmth is invisible
//! in the output — only in the telemetry and the wall-clock.

use crate::config::Flow3dConfig;
use crate::driver::bin_widths;
use crate::error::LegalizeError;
use crate::grid::{BinGrid, BinId};
use crate::incremental::{resolve_seed, run_eco, CellMove, EcoContext};
use crate::search::SearchPool;
use crate::state::GeomSource;
use crate::traits::LegalizeOutcome;
use flow3d_db::{CellId, Design, LegalPlacement, RowLayout, SoaView};
use flow3d_obs::Obs;

/// A resident incremental-legalization engine: one design, one base
/// placement, warm caches across ECO requests.
///
/// See the [module docs](self) for the cache lifecycle and the
/// bit-identity argument. Typical use:
///
/// ```
/// use flow3d_core::{EcoEngine, Flow3dConfig, Flow3dLegalizer, Legalizer};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let case = flow3d_gen::GeneratorConfig::small_demo(7).generate()?;
/// let legalizer = Flow3dLegalizer::new(Flow3dConfig::default());
/// let base = legalizer.legalize(&case.design, &case.natural)?.placement;
/// let mut engine = EcoEngine::new(Flow3dConfig::default(), case.design, base)?;
/// let outcome = engine.eco(&[])?; // no-op ECO returns the base placement
/// assert_eq!(&outcome.placement, engine.base());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EcoEngine {
    cfg: Flow3dConfig,
    design: Design,
    layout: RowLayout,
    grid: BinGrid,
    base: LegalPlacement,
    /// Resolved `(bin, x)` seed of every cell at its base anchor/die;
    /// `None` = the base cell fits nowhere on its own die (surfaces as
    /// [`LegalizeError::NoPosition`] on the next request, exactly like
    /// the one-shot path).
    seed_cache: Vec<Option<(BinId, i64)>>,
    /// Resident geometry columns (`None` when `cfg.soa_view` is off):
    /// built once with the layout/grid and borrowed by every request.
    soa: Option<SoaView>,
    pool: SearchPool,
    threads: usize,
    requests: u64,
}

impl EcoEngine {
    /// Builds a resident engine for `design` with `base` as the current
    /// legal placement.
    ///
    /// Builds the row layout and bin grid (at the post-optimization bin
    /// width, like [`Flow3dLegalizer::legalize_incremental`](crate::Flow3dLegalizer::legalize_incremental)) and
    /// resolves the seed cache. Cheap relative to a legalization but not
    /// free — the point is to pay it once.
    ///
    /// # Errors
    ///
    /// [`LegalizeError::PlacementMismatch`] if `base` has the wrong cell
    /// count. A base cell that fits nowhere on its die is *not* an error
    /// here; it surfaces as [`LegalizeError::NoPosition`] on the next
    /// [`eco`](Self::eco), matching the one-shot API's error order.
    pub fn new(
        cfg: Flow3dConfig,
        design: Design,
        base: LegalPlacement,
    ) -> Result<Self, LegalizeError> {
        let n = design.num_cells();
        if base.num_cells() != n {
            return Err(LegalizeError::PlacementMismatch {
                design_cells: n,
                placement_cells: base.num_cells(),
            });
        }
        let layout = RowLayout::build(&design);
        let widths = bin_widths(&design, cfg.post_bin_width_factor);
        let grid = BinGrid::build(&design, &layout, &widths, cfg.allow_d2d);
        let soa = cfg.soa_view.then(|| SoaView::geometry(&design));
        let seed_cache = Self::resolve_cache(&design, &layout, &grid, &soa, &base);
        let threads = flow3d_par::resolve_threads(cfg.threads);
        Ok(Self {
            cfg,
            design,
            layout,
            grid,
            base,
            seed_cache,
            soa,
            pool: SearchPool::new(),
            threads,
            requests: 0,
        })
    }

    fn resolve_cache(
        design: &Design,
        layout: &RowLayout,
        grid: &BinGrid,
        soa: &Option<SoaView>,
        base: &LegalPlacement,
    ) -> Vec<Option<(BinId, i64)>> {
        let geom = match soa {
            Some(view) => GeomSource::Soa(view),
            None => GeomSource::IdMap,
        };
        (0..design.num_cells())
            .map(|i| {
                let cell = CellId::new(i);
                resolve_seed(
                    design,
                    layout,
                    grid,
                    &geom,
                    base.die(cell),
                    base.pos(cell),
                    cell,
                )
            })
            .collect()
    }

    /// The resident design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The current base placement ECO requests perturb.
    pub fn base(&self) -> &LegalPlacement {
        &self.base
    }

    /// The engine's configuration.
    pub fn config(&self) -> &Flow3dConfig {
        &self.cfg
    }

    /// Number of successfully served ECO requests.
    pub fn requests_served(&self) -> u64 {
        self.requests
    }

    /// Overrides the worker count resolved from the configuration.
    /// Thread count never changes results — nor, with the shared
    /// content-addressed memo, the hit/miss telemetry.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = flow3d_par::resolve_threads(threads);
    }

    /// Re-legalizes the resident base after the changes in `moves`,
    /// without instrumentation. See [`eco_observed`](Self::eco_observed).
    ///
    /// # Errors
    ///
    /// Same as [`Flow3dLegalizer::legalize_incremental`](crate::Flow3dLegalizer::legalize_incremental).
    pub fn eco(&mut self, moves: &[CellMove]) -> Result<LegalizeOutcome, LegalizeError> {
        self.eco_observed(moves, None)
    }

    /// Re-legalizes the resident base after the changes in `moves`,
    /// recording `"eco_seed"`, `"flow_pass"` and `"placerow"` phases plus
    /// the usual search counters into `obs` when it is `Some`.
    ///
    /// The placement is bit-identical to
    /// [`Flow3dLegalizer::legalize_incremental`](crate::Flow3dLegalizer::legalize_incremental) on `(design, base,
    /// moves)` with the same configuration. The resident selection memo
    /// needs no replay key and no invalidation (see the [module
    /// docs](self)): entries are validated by content signature, so any
    /// request — identical, overlapping, or fully disjoint from the
    /// previous one — reuses every selection whose neighborhood content
    /// repeats, and recomputes the rest. Even a failed request leaves
    /// the memo sound: entries it stored describe the content they were
    /// computed against, wherever that content recurs.
    ///
    /// # Errors
    ///
    /// Same as [`Flow3dLegalizer::legalize_incremental`](crate::Flow3dLegalizer::legalize_incremental).
    pub fn eco_observed(
        &mut self,
        moves: &[CellMove],
        obs: Obs<'_>,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        let ctx = EcoContext {
            design: &self.design,
            layout: &self.layout,
            grid: &self.grid,
            cfg: &self.cfg,
            base: &self.base,
            seed_cache: Some(&self.seed_cache),
            threads: self.threads,
            geom: match &self.soa {
                Some(view) => GeomSource::Soa(view),
                None => GeomSource::IdMap,
            },
        };
        let out = run_eco(&ctx, moves, &mut self.pool, obs);
        if out.is_ok() {
            self.requests += 1;
        }
        out
    }

    /// Adopts `placement` as the new base, re-resolving **only the seeds
    /// that can have changed**: a cell whose `(position, die)` equals the
    /// old base's would resolve to the identical slot (`resolve_seed` is
    /// a pure function of the die, the anchor, and the cell's width on
    /// that die), so its cached entry is kept. The selection memo is kept
    /// too — its entries are validated by content signature, not by which
    /// base they were computed against. Call with an accepted ECO outcome
    /// to make follow-up requests relative to it.
    ///
    /// Returns how many seeds were refreshed out of how many cells, so
    /// callers (the serve layer, benches) can report the delta's
    /// effectiveness.
    ///
    /// # Errors
    ///
    /// [`LegalizeError::PlacementMismatch`] if `placement` has the wrong
    /// cell count.
    pub fn commit(&mut self, placement: LegalPlacement) -> Result<CommitStats, LegalizeError> {
        let n = self.design.num_cells();
        if placement.num_cells() != n {
            return Err(LegalizeError::PlacementMismatch {
                design_cells: n,
                placement_cells: placement.num_cells(),
            });
        }
        let geom = match &self.soa {
            Some(view) => GeomSource::Soa(view),
            None => GeomSource::IdMap,
        };
        let mut reseeded = 0;
        for i in 0..n {
            let cell = CellId::new(i);
            if placement.pos(cell) == self.base.pos(cell)
                && placement.die(cell) == self.base.die(cell)
            {
                continue;
            }
            reseeded += 1;
            self.seed_cache[i] = resolve_seed(
                &self.design,
                &self.layout,
                &self.grid,
                &geom,
                placement.die(cell),
                placement.pos(cell),
                cell,
            );
        }
        self.base = placement;
        Ok(CommitStats { reseeded, total: n })
    }
}

/// What one [`EcoEngine::commit`] actually refreshed: the seed-cache
/// delta's effectiveness, reported so serve stats and benches can verify
/// that commits after small ECOs stay incremental.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
// flow3d-tidy: allow(dead-pub) — cross-crate via return-value field access (flow3d-serve reads reseeded/total off EcoEngine::commit), which the ref scan cannot see
pub struct CommitStats {
    /// Seeds re-resolved because the cell's `(position, die)` changed
    /// against the previous base.
    pub reseeded: usize,
    /// Seed-cache entries examined (= design cells).
    pub total: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Flow3dLegalizer;
    use crate::traits::Legalizer;
    use flow3d_db::{DesignBuilder, DieId, DieSpec, LibCellSpec, Placement3d, TechnologySpec};
    use flow3d_geom::{FPoint, Point};
    use flow3d_obs::{keys, Profile};

    fn design(n: usize) -> Design {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 30, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 400, 40), 10, 1, 1.0));
        for i in 0..n {
            b = b.cell(format!("u{i}"), "C");
        }
        b.build().unwrap()
    }

    fn base_placement(d: &Design) -> LegalPlacement {
        let n = d.num_cells();
        let mut gp = Placement3d::new(n);
        for i in 0..n {
            gp.set_pos(
                CellId::new(i),
                FPoint::new((i as f64 * 35.0) % 350.0, 10.0 * ((i / 10) as f64)),
            );
        }
        Flow3dLegalizer::default()
            .legalize(d, &gp)
            .unwrap()
            .placement
    }

    fn clash_move(base: &LegalPlacement, from: usize, onto: usize) -> CellMove {
        CellMove {
            cell: CellId::new(from),
            target: base.pos(CellId::new(onto)),
            die: Some(base.die(CellId::new(onto))),
        }
    }

    /// Piles `from` onto `onto`'s position: enough clashing cells
    /// overflow the bin, which forces flow-pass searches (a lone clash
    /// is absorbed by PlaceRow without any search running).
    fn pileup(base: &LegalPlacement, from: &[usize], onto: usize) -> Vec<CellMove> {
        from.iter().map(|&i| clash_move(base, i, onto)).collect()
    }

    #[test]
    fn engine_matches_one_shot_bit_identically() {
        let d = design(12);
        let base = base_placement(&d);
        let legalizer = Flow3dLegalizer::default();
        let mut engine = EcoEngine::new(Flow3dConfig::default(), d.clone(), base.clone()).unwrap();
        // A mixed batch: clashes, a cross-die request, replays, a no-op.
        let sets: Vec<Vec<CellMove>> = vec![
            vec![],
            pileup(&base, &[0, 1, 2, 3, 4], 5),
            pileup(&base, &[0, 1, 2, 3, 4], 5), // replay (memo-warm)
            vec![clash_move(&base, 5, 6), clash_move(&base, 7, 6)],
            vec![CellMove {
                cell: CellId::new(2),
                target: base.pos(CellId::new(2)),
                die: Some(DieId::new(1 - base.die(CellId::new(2)).index())),
            }],
            pileup(&base, &[0, 1, 2, 3, 4], 5), // back to an earlier set — the
            // content-addressed memo answers it warm despite the disjoint
            // interlopers (see `disjoint_interlopers_do_not_cool_the_memo`)
        ];
        for (k, moves) in sets.iter().enumerate() {
            let warm = engine.eco(moves).unwrap();
            let cold = legalizer.legalize_incremental(&d, &base, moves).unwrap();
            assert_eq!(warm.placement, cold.placement, "request {k} diverged");
            assert_eq!(
                warm.stats.cross_die_moves, cold.stats.cross_die_moves,
                "request {k} stats diverged"
            );
        }
        assert_eq!(engine.requests_served(), 6);
    }

    #[test]
    fn second_identical_call_is_memo_warm() {
        let d = design(12);
        let base = base_placement(&d);
        // One worker makes memo-hit counters deterministic: the same
        // scratch serves every source, so everything stored by the first
        // request is visible to its replay.
        let cfg = Flow3dConfig {
            threads: 1,
            ..Flow3dConfig::default()
        };
        let mut engine = EcoEngine::new(cfg, d, base.clone()).unwrap();
        let moves = pileup(&base, &[0, 1, 2, 3, 4, 5], 6);
        let run = |engine: &mut EcoEngine, moves: &[CellMove]| {
            let mut profile = Profile::new();
            let outcome = engine.eco_observed(moves, Some(&mut profile)).unwrap();
            (
                outcome,
                profile.counters().get(keys::SELECTION_MEMO_HITS),
                profile.counters().get(keys::SELECTION_MEMO_MISSES),
            )
        };
        let (out1, hits1, misses1) = run(&mut engine, &moves);
        let (out2, hits2, misses2) = run(&mut engine, &moves);
        assert_eq!(out1.placement, out2.placement, "replay must not diverge");
        assert!(misses1 > 0, "the first request runs selections cold");
        assert!(
            hits2 > hits1,
            "the replay must answer selections from the resident memo \
             (hits {hits1} -> {hits2})"
        );
        assert!(
            misses2 < misses1,
            "warm selections replace cold ones (misses {misses1} -> {misses2})"
        );
    }

    #[test]
    fn commit_rebases_follow_up_requests() {
        let d = design(12);
        let base = base_placement(&d);
        let mut engine = EcoEngine::new(Flow3dConfig::default(), d, base.clone()).unwrap();
        let moved = engine.eco(&[clash_move(&base, 0, 1)]).unwrap().placement;
        engine.commit(moved.clone()).unwrap();
        assert_eq!(engine.base(), &moved);
        // A no-op ECO against the committed base returns it unchanged.
        let out = engine.eco(&[]).unwrap();
        assert_eq!(out.placement, moved);
        // And a mismatched commit is rejected.
        assert!(matches!(
            engine.commit(LegalPlacement::new(2)),
            Err(LegalizeError::PlacementMismatch { .. })
        ));
    }

    #[test]
    fn disjoint_interlopers_do_not_cool_the_memo() {
        // The warm-cache generality contract: memo entries are keyed by
        // content, not by request identity, so serving a fully disjoint
        // move set in between does NOT cool the cache for a return to an
        // earlier set (the generation-stamped memo this replaced went
        // cold on any non-identical interloper).
        let d = design(20);
        let base = base_placement(&d);
        let cfg = Flow3dConfig {
            threads: 1,
            ..Flow3dConfig::default()
        };
        let mut engine = EcoEngine::new(cfg, d, base.clone()).unwrap();
        let run = |engine: &mut EcoEngine, moves: &[CellMove]| {
            let mut profile = Profile::new();
            engine.eco_observed(moves, Some(&mut profile)).unwrap();
            (
                profile.counters().get(keys::SELECTION_MEMO_HITS),
                profile.counters().get(keys::SELECTION_MEMO_MISSES),
            )
        };
        let set_a = pileup(&base, &[10, 11, 12, 13, 14], 0);
        let set_b = pileup(&base, &[15, 16, 17, 18, 19], 9); // disjoint from A
        let (hits_a, misses_a) = run(&mut engine, &set_a);
        assert_eq!(hits_a, 0, "first request is cold");
        assert!(misses_a > 0, "the pileup must force selections");
        run(&mut engine, &set_b);
        let (hits_return, misses_return) = run(&mut engine, &set_a);
        assert!(
            hits_return > 0,
            "returning to set A after a disjoint interloper must be warm"
        );
        assert!(
            misses_return < misses_a,
            "most of A's selections replay from content \
             ({misses_a} cold misses -> {misses_return})"
        );
    }

    #[test]
    fn commit_delta_matches_a_full_seed_rebuild() {
        let d = design(12);
        let base = base_placement(&d);
        let mut engine = EcoEngine::new(Flow3dConfig::default(), d, base.clone()).unwrap();
        let moved = engine.eco(&[clash_move(&base, 0, 1)]).unwrap().placement;
        let cs = engine.commit(moved.clone()).unwrap();
        assert_eq!(cs.total, 12);
        // The delta refreshes exactly the cells whose (pos, die) changed …
        let changed = (0..12)
            .filter(|&i| {
                let c = CellId::new(i);
                moved.pos(c) != base.pos(c) || moved.die(c) != base.die(c)
            })
            .count();
        assert!(cs.reseeded > 0, "the ECO moved something");
        assert_eq!(cs.reseeded, changed);
        assert!(
            cs.reseeded < cs.total,
            "a small ECO must not rebuild every seed ({}/{})",
            cs.reseeded,
            cs.total
        );
        // … and the resulting cache is bit-identical to resolving every
        // seed from scratch against the new base.
        let full = EcoEngine::resolve_cache(
            &engine.design,
            &engine.layout,
            &engine.grid,
            &engine.soa,
            &moved,
        );
        assert_eq!(engine.seed_cache, full);
    }


    #[test]
    fn corrupt_base_errors_match_the_one_shot_path() {
        // Top die too narrow for any cell; cell 0 sits there illegally.
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 30, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 20, 40), 10, 1, 1.0));
        for i in 0..2 {
            b = b.cell(format!("u{i}"), "C");
        }
        let d = b.build().unwrap();
        let mut base = LegalPlacement::new(2);
        base.place(CellId::new(0), Point::new(0, 0), DieId::new(1));
        base.place(CellId::new(1), Point::new(0, 0), DieId::new(0));
        // Construction succeeds; the corruption surfaces on the request,
        // exactly like `legalize_incremental`.
        let mut engine = EcoEngine::new(Flow3dConfig::default(), d, base).unwrap();
        let err = engine.eco(&[]).unwrap_err();
        assert!(
            matches!(err, LegalizeError::NoPosition { cell } if cell == CellId::new(0)),
            "expected NoPosition for the corrupt cell, got {err:?}"
        );
    }

    #[test]
    fn mismatched_base_is_rejected_at_construction() {
        let d = design(4);
        let err = EcoEngine::new(Flow3dConfig::default(), d, LegalPlacement::new(2)).unwrap_err();
        assert!(matches!(err, LegalizeError::PlacementMismatch { .. }));
    }
}
