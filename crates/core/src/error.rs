//! Legalization errors.

use flow3d_db::{CellId, DieId};
use std::error::Error;
use std::fmt;

/// An error raised by a legalizer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LegalizeError {
    /// A cell does not fit in any segment of any die (wider than every
    /// macro-free stretch).
    NoPosition {
        /// The unplaceable cell.
        cell: CellId,
    },
    /// The design's cells cannot fit under the per-die utilization caps.
    DieOverflow {
        /// The die whose capacity is exhausted.
        die: DieId,
        /// Standard-cell area that needed to fit.
        required: i64,
        /// Maximum area allowed by the utilization cap.
        allowed: i64,
    },
    /// An overflowed bin could not be drained: no augmenting path exists
    /// even with the search bound disabled (disconnected or overfull
    /// region).
    NoAugmentingPath {
        /// Die of the stuck source bin.
        die: DieId,
        /// Remaining supply that could not be drained.
        supply: i64,
    },
    /// A row segment ended up holding more cell width than it fits —
    /// internal invariant violation after a flow pass.
    SegmentOverflow {
        /// Die of the overfull segment.
        die: DieId,
        /// Width excess in DBU.
        excess: i64,
    },
    /// Cell count mismatch between the design and the placement.
    PlacementMismatch {
        /// Cells in the design.
        design_cells: usize,
        /// Cells in the placement.
        placement_cells: usize,
    },
}

impl fmt::Display for LegalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalizeError::NoPosition { cell } => {
                write!(f, "cell {cell} fits in no segment of any die")
            }
            LegalizeError::DieOverflow {
                die,
                required,
                allowed,
            } => write!(
                f,
                "die {die} overflows: {required} DBU² required, {allowed} allowed"
            ),
            LegalizeError::NoAugmentingPath { die, supply } => write!(
                f,
                "no augmenting path drains {supply} DBU of supply on die {die}"
            ),
            LegalizeError::SegmentOverflow { die, excess } => {
                write!(f, "segment on die {die} overfull by {excess} DBU")
            }
            LegalizeError::PlacementMismatch {
                design_cells,
                placement_cells,
            } => write!(
                f,
                "placement has {placement_cells} cells, design has {design_cells}"
            ),
        }
    }
}

impl Error for LegalizeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LegalizeError>();
        let e = LegalizeError::NoPosition {
            cell: CellId::new(3),
        };
        assert!(e.to_string().contains("c3"));
    }
}
