#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # 3D-Flow: flow-based standard cell legalization for 3D ICs
//!
//! Reproduction of the DAC 2025 paper's core contribution. Given a design
//! and a continuous 3D global placement, the [`Flow3dLegalizer`] produces a
//! legal placement — every cell on a row and site of one die, overlap-free,
//! utilization-respecting — while minimizing average and maximum cell
//! displacement. The pipeline (paper Algorithm 2):
//!
//! 1. **Bin grid** ([`grid`]): every macro-free row segment of every die is
//!    divided into uniform bins; horizontally/vertically adjacent bins on a
//!    die are connected by planar edges, bins with plan-view overlap on
//!    different dies by die-to-die (D2D) edges — a 3D grid graph.
//! 2. **Initial assignment** ([`assign`]): cells snap to their nearest die
//!    and bin, fractionally across two adjacent bins where they straddle a
//!    boundary. Overfull bins become *sources*, under-full bins *sinks*.
//! 3. **Augmentation** ([`search`], paper Algorithm 1): a best-first
//!    branch-and-bound search finds the cheapest augmenting path that
//!    drains each source, allowing negative-cost moves (cells returning
//!    toward their origin) which Dijkstra-based legalizers must forbid.
//! 4. **Realization** ([`augment`], §III-C): cells move along the path,
//!    fractionally between horizontal neighbours, whole across rows/dies
//!    (with width change under heterogeneous technologies).
//! 5. **Row legalization** ([`placerow`], §III-D): Abacus `PlaceRow` orders
//!    each segment with minimal quadratic movement and snaps to sites.
//! 6. **Post-optimization** ([`cycle`], §III-E): cells with displacement
//!    above `max(5·h_r, D_max/2)` are re-seeded at the midpoint toward
//!    their origin and incrementally re-legalized on a finer grid,
//!    cutting the maximum displacement.
//!
//! # Examples
//!
//! ```
//! use flow3d_core::{Flow3dConfig, Flow3dLegalizer, Legalizer};
//! use flow3d_gen::GeneratorConfig;
//! use flow3d_metrics::{check_legal, displacement_stats};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let case = GeneratorConfig::small_demo(1).generate()?;
//! let legalizer = Flow3dLegalizer::new(Flow3dConfig::default());
//! let outcome = legalizer.legalize(&case.design, &case.natural)?;
//! assert!(check_legal(&case.design, &outcome.placement).is_legal());
//! let stats = displacement_stats(&case.design, &case.natural, &outcome.placement);
//! assert!(stats.max < 100.0);
//! # Ok(())
//! # }
//! ```

pub mod assign;
pub mod augment;
pub mod config;
pub mod cycle;
pub mod driver;
pub mod error;
pub mod grid;
pub mod incremental;
pub mod placerow;
pub mod resident;
pub mod search;
pub mod selection;
pub mod state;
pub mod traits;

pub use config::Flow3dConfig;
pub use driver::Flow3dLegalizer;
pub use placerow::RowAlgo;
pub use error::LegalizeError;
pub use incremental::CellMove;
pub use resident::{CommitStats, EcoEngine};
pub use state::{FlowState, GeomSource};
pub use traits::{LegalizeOutcome, LegalizeStats, Legalizer};
