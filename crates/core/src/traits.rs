//! The common legalizer interface shared by 3D-Flow and the baselines.

use crate::error::LegalizeError;
use flow3d_db::{Design, LegalPlacement, Placement3d};
use flow3d_obs::Obs;

/// Counters reported by a legalization run.
///
/// These are the always-on summary numbers every
/// [`LegalizeOutcome`] carries. For per-phase timings and the full
/// counter registry, run through
/// [`Legalizer::legalize_observed`] with a
/// [`Profile`](flow3d_obs::Profile) hook instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LegalizeStats {
    /// Number of augmenting paths realized (flow-based legalizers).
    pub augmentations: usize,
    /// Search-tree nodes expanded across all path searches.
    pub nodes_expanded: usize,
    /// Cells whose final die differs from their nearest-die snap.
    pub cross_die_moves: usize,
    /// Post-optimization passes actually executed.
    pub post_passes: usize,
    /// Cells relocated by the direct fallback when no augmenting path
    /// existed (macro-enclosed pockets); 0 in the common case.
    pub fallback_moves: usize,
    /// Whole cells moved between bins while realizing augmenting paths
    /// (flow-based legalizers; fallback relocations count separately in
    /// [`fallback_moves`](Self::fallback_moves)).
    pub cells_moved: usize,
}

impl LegalizeStats {
    /// Adds every counter of `other` into `self`.
    ///
    /// Used by multi-stage drivers that accumulate a stage's counters
    /// into a scratch `LegalizeStats` first and merge only when the
    /// stage's result is *accepted* — a rejected post-optimization pass
    /// must not pollute the reported run totals (its work is still
    /// visible through the observability counters).
    pub fn absorb(&mut self, other: &Self) {
        self.augmentations += other.augmentations;
        self.nodes_expanded += other.nodes_expanded;
        self.cross_die_moves += other.cross_die_moves;
        self.post_passes += other.post_passes;
        self.fallback_moves += other.fallback_moves;
        self.cells_moved += other.cells_moved;
    }
}

/// Result of a legalization run: the placement plus run counters.
#[derive(Debug, Clone, PartialEq)]
pub struct LegalizeOutcome {
    /// The legal placement.
    pub placement: LegalPlacement,
    /// Run counters.
    pub stats: LegalizeStats,
}

/// A standard-cell legalizer: maps a continuous 3D global placement to a
/// legal placement.
///
/// Implemented by [`Flow3dLegalizer`](crate::Flow3dLegalizer) and by the
/// Tetris / Abacus / BonnPlaceLegal baselines in `flow3d-baselines`.
pub trait Legalizer {
    /// Short identifier for tables and logs (e.g. `"3d-flow"`).
    fn name(&self) -> &str;

    /// Legalizes `global` against `design`.
    ///
    /// # Errors
    ///
    /// Returns [`LegalizeError`] when the placement cannot be legalized
    /// (cells that fit nowhere, utilization overflow, or — for flow-based
    /// methods — sources with no augmenting path).
    fn legalize(
        &self,
        design: &Design,
        global: &Placement3d,
    ) -> Result<LegalizeOutcome, LegalizeError>;

    /// [`legalize`](Self::legalize) with an observability hook: phase
    /// timings and event counters are recorded into `obs` when it is
    /// `Some` (see [`flow3d_obs`]).
    ///
    /// The default implementation ignores the hook and delegates to
    /// `legalize`, so implementing it is optional; instrumented
    /// legalizers override it and implement `legalize` as
    /// `self.legalize_observed(design, global, None)`.
    ///
    /// # Errors
    ///
    /// Same as [`legalize`](Self::legalize).
    fn legalize_observed(
        &self,
        design: &Design,
        global: &Placement3d,
        obs: Obs<'_>,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        let _ = obs;
        self.legalize(design, global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_every_field() {
        let mut a = LegalizeStats {
            augmentations: 1,
            nodes_expanded: 2,
            cross_die_moves: 3,
            post_passes: 4,
            fallback_moves: 5,
            cells_moved: 6,
        };
        let b = LegalizeStats {
            augmentations: 10,
            nodes_expanded: 20,
            cross_die_moves: 30,
            post_passes: 40,
            fallback_moves: 50,
            cells_moved: 60,
        };
        a.absorb(&b);
        assert_eq!(
            a,
            LegalizeStats {
                augmentations: 11,
                nodes_expanded: 22,
                cross_die_moves: 33,
                post_passes: 44,
                fallback_moves: 55,
                cells_moved: 66,
            }
        );
    }

    /// The trait must stay object-safe: harnesses hold `Box<dyn Legalizer>`.
    #[test]
    fn legalizer_is_object_safe() {
        struct Noop;
        impl Legalizer for Noop {
            fn name(&self) -> &str {
                "noop"
            }
            fn legalize(
                &self,
                design: &Design,
                _global: &Placement3d,
            ) -> Result<LegalizeOutcome, LegalizeError> {
                Ok(LegalizeOutcome {
                    placement: LegalPlacement::new(design.num_cells()),
                    stats: LegalizeStats::default(),
                })
            }
        }
        let boxed: Box<dyn Legalizer> = Box::new(Noop);
        assert_eq!(boxed.name(), "noop");
    }
}
