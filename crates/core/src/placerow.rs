//! Abacus `PlaceRow` (paper §III-D, after Spindler et al.).
//!
//! Orders the cells of one row segment with minimal weighted quadratic
//! movement in linear time: cells are processed in x order; whenever a
//! cell would overlap its predecessor the two merge into a *cluster* whose
//! optimal position is the weighted mean of its members' desired
//! positions; overlapping clusters merge recursively. Final positions are
//! clamped into the segment and snapped to the site grid.

use flow3d_geom::Interval;
use std::error::Error;
use std::fmt;

/// One cell to place in a row segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowItem {
    /// Caller-chosen identifier returned with the position.
    pub key: usize,
    /// Desired x of the cell's left edge.
    pub desired: i64,
    /// Cell width (must be a multiple of the site width).
    pub width: i64,
    /// Quadratic-movement weight (Abacus uses the cell width).
    pub weight: f64,
}

/// Error: the segment cannot hold the cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub struct PlaceRowError {
    /// Total width of the cells.
    pub total_width: i64,
    /// Width of the segment.
    pub segment_width: i64,
}

impl fmt::Display for PlaceRowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cells of width {} exceed segment of width {}",
            self.total_width, self.segment_width
        )
    }
}

impl Error for PlaceRowError {}

#[derive(Debug, Clone, Copy)]
struct Cluster {
    /// Optimal (continuous) position of the cluster's left edge.
    x: f64,
    /// Σ weights.
    e: f64,
    /// Σ weight·(desired − offset within cluster).
    q: f64,
    /// Total width.
    w: i64,
    /// Index of the first item (into the sorted items).
    first: usize,
}

/// Places `items` in `span` with minimal weighted quadratic displacement.
/// Returns `(key, x)` pairs. Positions are site-aligned (`origin` +
/// multiples of `site`) and abut without overlap.
///
/// # Errors
///
/// [`PlaceRowError`] when the total cell width exceeds the segment width.
///
/// # Panics
///
/// Panics if `site <= 0` or if `span` is not site-aligned relative to
/// `origin`.
pub fn place_row(
    items: &[RowItem],
    span: Interval,
    origin: i64,
    site: i64,
) -> Result<Vec<(usize, i64)>, PlaceRowError> {
    assert!(site > 0, "non-positive site width");
    assert_eq!(
        (span.lo - origin).rem_euclid(site),
        0,
        "segment start off the site grid"
    );
    let total_width: i64 = items.iter().map(|i| i.width).sum();
    if total_width > span.len() {
        return Err(PlaceRowError {
            total_width,
            segment_width: span.len(),
        });
    }
    if items.is_empty() {
        return Ok(Vec::new());
    }

    let mut sorted: Vec<RowItem> = items.to_vec();
    sorted.sort_by_key(|i| (i.desired, i.key));

    // Abacus clustering.
    let mut clusters: Vec<Cluster> = Vec::with_capacity(sorted.len());
    let clamp_x = |x: f64, w: i64| x.clamp(span.lo as f64, (span.hi - w) as f64);
    for (idx, item) in sorted.iter().enumerate() {
        let mut c = Cluster {
            x: clamp_x(item.desired as f64, item.width),
            e: item.weight,
            q: item.weight * item.desired as f64,
            w: item.width,
            first: idx,
        };
        // Collapse with predecessors while overlapping.
        while clusters
            .last()
            .is_some_and(|prev| prev.x + prev.w as f64 > c.x)
        {
            let Some(prev) = clusters.pop() else { break };
            let merged_e = prev.e + c.e;
            // Items of `c` shift right by prev.w inside the merged cluster.
            let merged_q = prev.q + c.q - c.e * prev.w as f64;
            let merged_w = prev.w + c.w;
            c = Cluster {
                x: clamp_x(merged_q / merged_e, merged_w),
                e: merged_e,
                q: merged_q,
                w: merged_w,
                first: prev.first,
            };
        }
        clusters.push(c);
    }

    // Snap clusters to sites; resolve residual overlap left-to-right, then
    // pull back from the right edge.
    let n = clusters.len();
    let mut xs: Vec<i64> = Vec::with_capacity(n);
    let mut prev_end = span.lo;
    for c in &clusters {
        let snapped = flow3d_geom::snap_nearest(c.x.round() as i64, origin, site)
            .clamp(span.lo, span.hi - c.w);
        let x = snapped.max(prev_end);
        xs.push(x);
        prev_end = x + c.w;
    }
    let mut limit = span.hi;
    for (i, c) in clusters.iter().enumerate().rev() {
        if xs[i] + c.w > limit {
            xs[i] = limit - c.w;
        }
        limit = xs[i];
    }

    // Emit per-item positions.
    let mut out = Vec::with_capacity(sorted.len());
    for (ci, c) in clusters.iter().enumerate() {
        let mut x = xs[ci];
        let last = clusters
            .get(ci + 1)
            .map(|nc| nc.first)
            .unwrap_or(sorted.len());
        for item in &sorted[c.first..last] {
            out.push((item.key, x));
            x += item.width;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn item(key: usize, desired: i64, width: i64) -> RowItem {
        RowItem {
            key,
            desired,
            width,
            weight: width as f64,
        }
    }

    fn assert_legal(
        placed: &[(usize, i64)],
        items: &[RowItem],
        span: Interval,
        origin: i64,
        site: i64,
    ) {
        let mut rects: Vec<(i64, i64)> = placed
            .iter()
            .map(|&(k, x)| {
                let w = items.iter().find(|i| i.key == k).unwrap().width;
                assert!(
                    x >= span.lo && x + w <= span.hi,
                    "key {k} at {x} outside {span}"
                );
                assert_eq!((x - origin).rem_euclid(site), 0, "key {k} off-site at {x}");
                (x, x + w)
            })
            .collect();
        rects.sort();
        for w in rects.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
        }
    }

    #[test]
    fn non_overlapping_cells_stay_put() {
        let items = vec![item(0, 10, 20), item(1, 50, 20)];
        let placed = place_row(&items, Interval::new(0, 100), 0, 1).unwrap();
        assert_eq!(placed, vec![(0, 10), (1, 50)]);
    }

    #[test]
    fn overlapping_cells_cluster_at_weighted_mean() {
        // Two equal cells desiring the same spot split around it.
        let items = vec![item(0, 40, 20), item(1, 40, 20)];
        let placed = place_row(&items, Interval::new(0, 100), 0, 1).unwrap();
        assert_legal(&placed, &items, Interval::new(0, 100), 0, 1);
        // Cluster optimum: minimize w(x-40)^2 + w(x+20-40)^2 -> x = 30.
        assert_eq!(placed, vec![(0, 30), (1, 50)]);
    }

    #[test]
    fn clamping_against_segment_edges() {
        let items = vec![item(0, -50, 20), item(1, 500, 30)];
        let span = Interval::new(0, 100);
        let placed = place_row(&items, span, 0, 1).unwrap();
        assert_legal(&placed, &items, span, 0, 1);
        assert_eq!(placed[0].1, 0);
        assert_eq!(placed[1].1, 70);
    }

    #[test]
    fn full_segment_packs_exactly() {
        let items = vec![item(0, 90, 40), item(1, 90, 40), item(2, 90, 20)];
        let span = Interval::new(0, 100);
        let placed = place_row(&items, span, 0, 1).unwrap();
        assert_legal(&placed, &items, span, 0, 1);
        let min = placed.iter().map(|&(_, x)| x).min().unwrap();
        assert_eq!(min, 0); // forced to pack from the left edge
    }

    #[test]
    fn overflow_is_an_error() {
        let items = vec![item(0, 0, 60), item(1, 0, 60)];
        let err = place_row(&items, Interval::new(0, 100), 0, 1).unwrap_err();
        assert_eq!(err.total_width, 120);
        assert_eq!(err.segment_width, 100);
    }

    #[test]
    fn site_snapping_respects_grid() {
        let items = vec![item(0, 13, 8), item(1, 17, 8)];
        let span = Interval::new(0, 64);
        let placed = place_row(&items, span, 0, 8).unwrap();
        assert_legal(&placed, &items, span, 0, 8);
    }

    #[test]
    fn heavier_cells_move_less() {
        // A heavy and a light cell contending for the same position: the
        // cluster mean sits closer to the heavy cell's desire.
        let heavy = RowItem {
            key: 0,
            desired: 50,
            width: 10,
            weight: 100.0,
        };
        let light = RowItem {
            key: 1,
            desired: 50,
            width: 10,
            weight: 1.0,
        };
        let placed = place_row(&[heavy, light], Interval::new(0, 200), 0, 1).unwrap();
        let x_heavy = placed.iter().find(|&&(k, _)| k == 0).unwrap().1;
        // Weighted optimum ~49.9; the heavy cell barely moves.
        assert!((x_heavy - 50).abs() <= 1, "heavy at {x_heavy}");
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert_eq!(place_row(&[], Interval::new(0, 10), 0, 1).unwrap(), vec![]);
    }

    proptest! {
        /// Any feasible input yields a legal, overlap-free, site-aligned
        /// packing containing every cell.
        #[test]
        fn always_legal(
            widths in proptest::collection::vec(1i64..8, 1..20),
            desires in proptest::collection::vec(-50i64..150, 20),
            site in 1i64..4,
        ) {
            let span = Interval::new(0, 160);
            let items: Vec<RowItem> = widths
                .iter()
                .enumerate()
                .map(|(k, &w)| item(k, desires[k], w * site))
                .collect();
            let total: i64 = items.iter().map(|i| i.width).sum();
            prop_assume!(total <= span.len());
            let placed = place_row(&items, span, 0, site).unwrap();
            prop_assert_eq!(placed.len(), items.len());
            assert_legal(&placed, &items, span, 0, site);
        }

        /// Cells keep their left-to-right order by desired position.
        #[test]
        fn order_preserving(
            desires in proptest::collection::vec(0i64..100, 2..10),
        ) {
            let span = Interval::new(0, 200);
            let items: Vec<RowItem> = desires
                .iter()
                .enumerate()
                .map(|(k, &d)| item(k, d, 5))
                .collect();
            let placed = place_row(&items, span, 0, 1).unwrap();
            let mut by_key: Vec<(i64, i64)> = placed
                .iter()
                .map(|&(k, x)| (items[k].desired, x))
                .collect();
            by_key.sort();
            // Sorted by desired => positions must be non-decreasing.
            for w in by_key.windows(2) {
                prop_assert!(w[0].1 <= w[1].1 || w[0].0 == w[1].0);
            }
        }
    }
}

/// Row-legalization algorithm choice (paper §III-D: "many well-known
/// row-based placement algorithms \[4], \[27], \[28] can be used").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowAlgo {
    /// Abacus clustering: optimal for *weighted quadratic* movement
    /// (Spindler et al. \[4]) — the paper's choice.
    #[default]
    AbacusQuadratic,
    /// Isotonic L1 regression (pool-adjacent-violators with weighted
    /// medians): optimal for *weighted absolute* movement with the cell
    /// order fixed — matching the displacement objective (Eq. 4) exactly,
    /// in the spirit of the optimal linear placements of Kahng, Tucker
    /// and Zelikovsky \[27].
    IsotonicL1,
}

/// [`place_row`] with an explicit algorithm choice.
///
/// # Errors
///
/// Same as [`place_row`].
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub fn place_row_with(
    algo: RowAlgo,
    items: &[RowItem],
    span: Interval,
    origin: i64,
    site: i64,
) -> Result<Vec<(usize, i64)>, PlaceRowError> {
    match algo {
        RowAlgo::AbacusQuadratic => place_row(items, span, origin, site),
        RowAlgo::IsotonicL1 => place_row_l1(items, span, origin, site),
    }
}

/// One PAVA block: a run of cells sharing the same shifted position.
#[derive(Debug, Clone)]
struct L1Block {
    /// (shifted target, weight) of each member, kept sorted by target.
    members: Vec<(i64, f64)>,
    /// Current optimum: the weighted median of `members`.
    y: i64,
    /// Index of the first item of the block.
    first: usize,
}

impl L1Block {
    fn weighted_median(&self) -> i64 {
        let total: f64 = self.members.iter().map(|&(_, w)| w).sum();
        let mut acc = 0.0;
        for &(t, w) in &self.members {
            acc += w;
            if acc * 2.0 >= total {
                return t;
            }
        }
        self.members.last().map(|&(t, _)| t).unwrap_or(0)
    }
}

/// Places `items` in `span` with minimal weighted *absolute* displacement
/// for the order fixed by the desired positions: isotonic L1 regression
/// on shifted targets via pool-adjacent-violators, weighted medians per
/// block, then the same site snapping as [`place_row`].
///
/// # Errors
///
/// [`PlaceRowError`] when the cells do not fit.
///
/// # Panics
///
/// Panics if `site <= 0` or the span is off the site grid (as
/// [`place_row`]).
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub fn place_row_l1(
    items: &[RowItem],
    span: Interval,
    origin: i64,
    site: i64,
) -> Result<Vec<(usize, i64)>, PlaceRowError> {
    assert!(site > 0, "non-positive site width");
    assert_eq!(
        (span.lo - origin).rem_euclid(site),
        0,
        "segment start off the site grid"
    );
    let total_width: i64 = items.iter().map(|i| i.width).sum();
    if total_width > span.len() {
        return Err(PlaceRowError {
            total_width,
            segment_width: span.len(),
        });
    }
    if items.is_empty() {
        return Ok(Vec::new());
    }

    let mut sorted: Vec<RowItem> = items.to_vec();
    sorted.sort_by_key(|i| (i.desired, i.key));

    // Shift out the packing: y_i = x_i − prefix_i must be nondecreasing.
    let mut prefix = 0i64;
    let mut targets = Vec::with_capacity(sorted.len());
    for item in &sorted {
        targets.push(item.desired - prefix);
        prefix += item.width;
    }

    // PAVA with weighted medians.
    let mut blocks: Vec<L1Block> = Vec::with_capacity(sorted.len());
    for (idx, (&t, item)) in targets.iter().zip(&sorted).enumerate() {
        let mut block = L1Block {
            members: vec![(t, item.weight)],
            y: t,
            first: idx,
        };
        while blocks.last().is_some_and(|prev| prev.y > block.y) {
            let Some(prev) = blocks.pop() else { break };
            let mut members = prev.members;
            members.extend(block.members);
            members.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
            block = L1Block {
                y: 0, // recomputed below
                first: prev.first,
                members,
            };
            block.y = block.weighted_median();
        }
        blocks.push(block);
    }

    // Back to positions, clamped into the feasible window; the clip of an
    // isotonic solution stays optimal under box constraints.
    let y_lo = span.lo;
    let y_hi = span.hi - total_width;
    let mut positions: Vec<i64> = Vec::with_capacity(sorted.len());
    {
        let mut prefix = 0i64;
        for (bi, block) in blocks.iter().enumerate() {
            let last = blocks
                .get(bi + 1)
                .map(|nb| nb.first)
                .unwrap_or(sorted.len());
            let y = block.y.clamp(y_lo, y_hi);
            for item in &sorted[block.first..last] {
                positions.push(y + prefix);
                prefix += item.width;
            }
        }
    }

    // Site snapping + overlap fix (forward then backward), as in
    // `place_row`.
    let mut prev_end = span.lo;
    for (i, item) in sorted.iter().enumerate() {
        let snapped = flow3d_geom::snap_nearest(positions[i], origin, site)
            .clamp(span.lo, span.hi - item.width);
        positions[i] = snapped.max(prev_end);
        prev_end = positions[i] + item.width;
    }
    let mut limit = span.hi;
    for (i, item) in sorted.iter().enumerate().rev() {
        if positions[i] + item.width > limit {
            positions[i] = limit - item.width;
        }
        limit = positions[i];
    }

    Ok(sorted
        .iter()
        .zip(&positions)
        .map(|(item, &x)| (item.key, x))
        .collect())
}

#[cfg(test)]
mod l1_tests {
    use super::*;

    fn item(key: usize, desired: i64, width: i64) -> RowItem {
        RowItem {
            key,
            desired,
            width,
            weight: width as f64,
        }
    }

    fn total_l1(placed: &[(usize, i64)], items: &[RowItem]) -> i64 {
        placed
            .iter()
            .map(|&(k, x)| {
                let it = items.iter().find(|i| i.key == k).unwrap();
                (x - it.desired).abs() * it.width
            })
            .sum()
    }

    #[test]
    fn non_overlapping_cells_stay_put() {
        let items = vec![item(0, 10, 20), item(1, 50, 20)];
        let placed = place_row_l1(&items, Interval::new(0, 100), 0, 1).unwrap();
        assert_eq!(placed, vec![(0, 10), (1, 50)]);
    }

    #[test]
    fn l1_median_beats_l2_mean_on_skewed_cluster() {
        // Three cells contending: two want 10, one wants 100. The L1
        // optimum parks the pair at their desire and pays only for the
        // outlier; the quadratic mean drags everyone.
        let items = vec![item(0, 10, 10), item(1, 10, 10), item(2, 21, 10)];
        let span = Interval::new(0, 200);
        let l1 = place_row_l1(&items, span, 0, 1).unwrap();
        let l2 = place_row(&items, span, 0, 1).unwrap();
        assert!(
            total_l1(&l1, &items) <= total_l1(&l2, &items),
            "L1 {} vs L2 {}",
            total_l1(&l1, &items),
            total_l1(&l2, &items)
        );
    }

    #[test]
    fn l1_result_is_legal_and_ordered() {
        let items = vec![
            item(0, 90, 40),
            item(1, 90, 40),
            item(2, 90, 20),
            item(3, -30, 10),
        ];
        let span = Interval::new(0, 120);
        let placed = place_row_l1(&items, span, 0, 1).unwrap();
        let mut spans: Vec<(i64, i64)> = placed
            .iter()
            .map(|&(k, x)| {
                let w = items.iter().find(|i| i.key == k).unwrap().width;
                assert!(x >= span.lo && x + w <= span.hi);
                (x, x + w)
            })
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0);
        }
    }

    #[test]
    fn overflow_is_an_error() {
        let items = vec![item(0, 0, 60), item(1, 0, 60)];
        assert!(place_row_l1(&items, Interval::new(0, 100), 0, 1).is_err());
    }

    #[test]
    fn dispatch_selects_algorithms() {
        let items = vec![item(0, 5, 10)];
        let span = Interval::new(0, 100);
        let a = place_row_with(RowAlgo::AbacusQuadratic, &items, span, 0, 1).unwrap();
        let b = place_row_with(RowAlgo::IsotonicL1, &items, span, 0, 1).unwrap();
        assert_eq!(a, b);
    }

    proptest::proptest! {
        /// On random feasible rows the L1 algorithm never pays more total
        /// weighted-L1 movement than Abacus (before site rounding both are
        /// continuous optima of their objectives; with rounding we allow
        /// a one-site slack per cell).
        #[test]
        fn l1_total_is_never_worse_than_quadratic(
            widths in proptest::collection::vec(1i64..8, 1..14),
            desires in proptest::collection::vec(-40i64..200, 14),
        ) {
            let span = Interval::new(0, 160);
            let items: Vec<RowItem> = widths
                .iter()
                .enumerate()
                .map(|(k, &w)| item(k, desires[k], w))
                .collect();
            let total: i64 = items.iter().map(|i| i.width).sum();
            proptest::prop_assume!(total <= span.len());
            let l1 = place_row_l1(&items, span, 0, 1).unwrap();
            let l2 = place_row(&items, span, 0, 1).unwrap();
            let slack: i64 = items.len() as i64 * 8; // one site-ish per cell
            proptest::prop_assert!(
                total_l1(&l1, &items) <= total_l1(&l2, &items) + slack,
                "L1 {} vs quadratic {}",
                total_l1(&l1, &items),
                total_l1(&l2, &items)
            );
        }
    }
}
