//! Selection of the cell set C(u, v) moved across one grid edge
//! (paper Algorithm 1 line 10 and §III-C).
//!
//! * Across a **horizontal** edge (adjacent bins of one segment) cells may
//!   move *fractionally*: the cheapest fragments per unit width are chosen
//!   so the moved width exactly matches the required out-flow. A cell's
//!   fragments must remain contiguous bins, which bounds how much of a
//!   fragment may leave when the cell also extends to the opposite side.
//! * Across **vertical** and **die-to-die** edges cells move *whole*: all
//!   fragments leave their bins and the full cell (with the target die's
//!   width under heterogeneous technologies) lands in the target bin. The
//!   cheapest cells per unit width are chosen until the required out-flow
//!   is covered. D2D moves respect the target die's utilization cap and
//!   optionally pay the Eq. (7) congestion term.

use crate::grid::{BinId, EdgeKind};
use crate::state::FlowState;
use flow3d_db::CellId;

/// Parameters shared by search and realization so both compute identical
/// selections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionParams {
    /// Clamp per-cell move costs to `≥ 0` (BonnPlaceLegal's restriction;
    /// 3D-Flow keeps negative costs).
    pub clamp_negative: bool,
    /// Add the Eq. (7) congestion term to each D2D move. Deviation from
    /// the literal formula (documented in `DESIGN.md`): the term is
    /// clamped at zero — `max(0, sup(v) − dem(v))` — because the raw
    /// value rewards *every* move into an under-full bin by its whole
    /// free width, flooding the dies with crossings.
    pub d2d_congestion_cost: bool,
    /// Fixed cost of crossing dies, making a vertical hop comparable to a
    /// row hop (typically the larger row height).
    pub d2d_penalty: f64,
}

impl Default for SelectionParams {
    fn default() -> Self {
        Self {
            clamp_negative: false,
            d2d_congestion_cost: true,
            d2d_penalty: 0.0,
        }
    }
}

/// One selected move.
#[derive(Debug, Clone, Copy, PartialEq)]
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub struct Move {
    /// The cell to move.
    pub cell: CellId,
    /// Width leaving `u` (a fragment slice for fractional moves, the
    /// cell's fragment width in `u` for whole moves).
    pub width_from_u: i64,
    /// `true` if the whole cell relocates into `v` (vertical/D2D edges).
    pub whole: bool,
}

/// The selected set C(u, v) with its flow accounting.
#[derive(Debug, Clone, PartialEq)]
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub struct Selection {
    /// Moves in application order.
    pub moves: Vec<Move>,
    /// Total width leaving `u`, in `u`'s units (`≥ needed`).
    pub removed_from_u: i64,
    /// Total width arriving in `v`, in `v`'s units (the search's
    /// `flow(v)`).
    pub added_to_v: i64,
    /// Displacement cost of the selection (Eq. 5, fraction-scaled).
    pub cost: f64,
}

/// Default slot count of [`SelectionMemo`] when neither the
/// `memo_slots` config knob nor [`SelectionMemo::auto_slots`] sizing
/// applies (ladder-local scratch memos, unit tests).
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub const DEFAULT_MEMO_SLOTS: usize = 1024;

/// Set associativity of [`SelectionMemo`]: each key probes one set of
/// this many ways, so two hot keys that fold to the same set no longer
/// thrash each other the way the old direct-mapped table did.
const MEMO_WAYS: usize = 2;

/// One memo slot. `epoch == 0` marks an empty slot (the live epoch
/// counter skips 0).
#[derive(Debug, Clone, Copy)]
struct MemoSlot {
    epoch: u32,
    u: u32,
    v: u32,
    needed: i64,
    /// Content signature of the neighborhood the selection read
    /// ([`FlowState::selection_signature`]); the validity stamp.
    sig: u64,
    /// Store-order stamp for pseudo-LRU eviction within a set.
    stamp: u64,
    outcome: Option<(f64, i64)>,
}

const EMPTY_SLOT: MemoSlot = MemoSlot {
    epoch: 0,
    u: u32::MAX,
    v: u32::MAX,
    needed: 0,
    sig: 0,
    stamp: 0,
    outcome: None,
};

/// One memoized `select_moves` outcome, produced by a search and merged
/// into a shared [`SelectionMemo`] by the flow-pass coordinator at the
/// end of each round (in deterministic source order, so the shared
/// table's contents never depend on worker scheduling).
#[derive(Debug, Clone, Copy)]
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub struct MemoWrite {
    /// Source bin of the edge.
    pub u: BinId,
    /// Candidate bin of the edge.
    pub v: BinId,
    /// Outflow the selection was asked for.
    pub needed: i64,
    /// Content signature the outcome was computed against.
    pub sig: u64,
    /// The cached [`select_moves`] summary (`None` = edge unusable).
    pub outcome: Option<(f64, i64)>,
}

/// Set-associative, content-addressed memo of [`select_moves`] outcomes
/// for the search kernel's hot loop.
///
/// The search consumes only two fields of a [`Selection`] — `cost` and
/// `added_to_v` — so the memo caches that compact `Option<(f64, i64)>`
/// summary (`None` = the edge cannot supply `needed`; negative results
/// are worth caching too). Keys are `(u, v, needed)`; the edge kind is
/// not part of the key because a bin pair has exactly one edge kind.
///
/// Validity is **content-addressed**: each entry carries the
/// [`FlowState::selection_signature`] of everything the selection read
/// (source-bin occupancy; plus candidate usage and die headroom on
/// cross-die edges), and a lookup only replays when the caller's
/// current signature matches. There is no generation stamp and no
/// replay discipline — an entry is valid exactly when the neighborhood
/// it read still has the same contents, no matter how many mutations,
/// ECO requests, or `commit()`s happened in between. A 64-bit signature
/// collision would replay a wrong summary; with the splitmix64-mixed
/// signatures the chance is ~2⁻⁶⁴ per colliding pair, and the
/// bit-identity differential suites are the referee.
///
/// Capacity is configurable (`Flow3dConfig::memo_slots`, auto-sized
/// from the flow pass's source count by default) and the table is
/// 2-way set-associative (`MEMO_WAYS`) with store-order (pseudo-LRU)
/// eviction. Deliberately a flat array, not a map: lookups are one
/// multiply-xor hash and two slot probes, no allocation, no ordering
/// concerns (flow3d-tidy D1 bans hash maps in this crate anyway).
#[derive(Debug, Clone)]
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub struct SelectionMemo {
    slots: Vec<MemoSlot>,
    /// Number of sets; always a power of two (index folds with a mask).
    sets: usize,
    epoch: u32,
    stamp: u64,
}

impl Default for SelectionMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl SelectionMemo {
    /// Creates an empty memo with [`DEFAULT_MEMO_SLOTS`] slots.
    pub fn new() -> Self {
        Self::with_slots(DEFAULT_MEMO_SLOTS)
    }

    /// Creates an empty memo with at least `slots` slots (rounded up to
    /// a power-of-two set count).
    pub fn with_slots(slots: usize) -> Self {
        let sets = (slots.max(MEMO_WAYS) / MEMO_WAYS).next_power_of_two();
        Self {
            slots: vec![EMPTY_SLOT; sets * MEMO_WAYS],
            sets,
            epoch: 1,
            stamp: 0,
        }
    }

    /// Current slot capacity.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// The sizing policy for `memo_slots = 0` (auto): ~8 slots per flow
    /// source, clamped to `[DEFAULT_MEMO_SLOTS, 2^18]`. A source probes
    /// a handful of neighbor edges at a few distinct `needed` values per
    /// round, so 8× keeps several rounds' working sets resident without
    /// letting million-bin cases allocate unbounded tables.
    pub fn auto_slots(sources: usize) -> usize {
        (sources.saturating_mul(8)).clamp(DEFAULT_MEMO_SLOTS, 1 << 18)
    }

    /// Grows the table to at least `slots` slots, rehashing live
    /// entries. Grow-only: a smaller request is a no-op, so a resident
    /// engine's warmth survives later passes with fewer sources.
    pub fn ensure_slots(&mut self, slots: usize) {
        let sets = (slots.max(MEMO_WAYS) / MEMO_WAYS).next_power_of_two();
        if sets <= self.sets {
            return;
        }
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; sets * MEMO_WAYS]);
        self.sets = sets;
        for s in old {
            if s.epoch == self.epoch {
                self.place(s);
            }
        }
    }

    /// Invalidates every entry (epoch bump). Ladder-local scratch memos
    /// call this once per source retry ladder.
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: hard-reset so no 4-billion-clears-old
            // entry can alias the restarted counter.
            self.slots.fill(EMPTY_SLOT);
            self.epoch = 1;
        }
    }

    /// Deterministic multiplicative hash of the key, folded to a set
    /// index. The signature stays out of the index so a re-store of the
    /// same key after a content change lands in the same set and evicts
    /// its own stale entry first.
    #[inline]
    fn set_index(&self, u: BinId, v: BinId, needed: i64) -> usize {
        let mut h = (u.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= (v.0 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h ^= (needed as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
        h ^= h >> 32;
        (h as usize) & (self.sets - 1)
    }

    /// Looks up the memoized outcome for `(u, v, needed)` computed
    /// against content signature `sig`. Outer `None` = miss; `Some`
    /// replays the exact [`select_moves`] summary (including a cached
    /// "edge unusable" `None`).
    #[inline]
    pub fn lookup(&self, u: BinId, v: BinId, needed: i64, sig: u64) -> Option<Option<(f64, i64)>> {
        let base = self.set_index(u, v, needed) * MEMO_WAYS;
        self.slots[base..base + MEMO_WAYS]
            .iter()
            .find(|s| {
                s.epoch == self.epoch
                    && s.u == u.0
                    && s.v == v.0
                    && s.needed == needed
                    && s.sig == sig
            })
            .map(|s| s.outcome)
    }

    /// Stores the `(cost, added_to_v)` summary (or `None` for an
    /// unusable edge) for `(u, v, needed)` at content signature `sig`.
    /// Within the key's set, a stale entry for the same key is evicted
    /// first, then an empty way, then the oldest store.
    #[inline]
    pub fn store(&mut self, u: BinId, v: BinId, needed: i64, sig: u64, outcome: Option<(f64, i64)>) {
        self.stamp = self.stamp.wrapping_add(1);
        self.place(MemoSlot {
            epoch: self.epoch,
            u: u.0,
            v: v.0,
            needed,
            sig,
            stamp: self.stamp,
            outcome,
        });
    }

    /// Merges coordinator-collected writes (already in deterministic
    /// source order) into the table.
    pub fn absorb(&mut self, writes: &[MemoWrite]) {
        for w in writes {
            self.store(w.u, w.v, w.needed, w.sig, w.outcome);
        }
    }

    fn place(&mut self, slot: MemoSlot) {
        let base = self.set_index(BinId(slot.u), BinId(slot.v), slot.needed) * MEMO_WAYS;
        let set = &mut self.slots[base..base + MEMO_WAYS];
        let way = set
            .iter()
            .position(|s| {
                s.epoch == self.epoch
                    && s.u == slot.u
                    && s.v == slot.v
                    && s.needed == slot.needed
            })
            .or_else(|| set.iter().position(|s| s.epoch != self.epoch))
            .unwrap_or_else(|| {
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.stamp)
                    .map(|(i, _)| i)
                    // flow3d-tidy: allow(panic-unwrap) — MEMO_WAYS ≥ 1, the set is never empty
                    .expect("memo set is never empty")
            });
        set[way] = slot;
    }
}

/// Selects the cheapest cell set moving at least `needed` DBU out of `u`
/// across the `(u, v)` edge of the given kind. Returns `None` when the
/// bin cannot supply `needed` width (the edge is unusable for this flow).
pub fn select_moves(
    state: &FlowState<'_>,
    u: BinId,
    v: BinId,
    kind: EdgeKind,
    needed: i64,
    params: &SelectionParams,
) -> Option<Selection> {
    debug_assert!(needed > 0, "selection needs positive outflow");
    match kind {
        EdgeKind::Horizontal => select_fractional(state, u, v, needed, params),
        EdgeKind::Vertical | EdgeKind::DieToDie => select_whole(state, u, v, kind, needed, params),
    }
}

/// Maximum width of `cell`'s fragment in `u` movable toward `v` without
/// breaking fragment contiguity.
fn max_fractional(state: &FlowState<'_>, cell: CellId, u: BinId, v: BinId) -> i64 {
    let frags = state.cell_frags(cell);
    let fw = frags
        .iter()
        .find(|&&(b, _)| b == u)
        .map(|&(_, w)| w)
        .unwrap_or(0);
    if fw == 0 {
        return 0;
    }
    // Fully draining `u` keeps the fragments contiguous only when `u` is
    // the cell's sole bin or the cell already extends into `v`; in every
    // other case removing `u` leaves a hole between the remaining
    // fragments and `v`, so one DBU stays behind to keep the range
    // connected.
    let full_ok = frags.len() == 1 || frags.iter().any(|&(b, _)| b == v);
    if full_ok {
        fw
    } else {
        fw - 1
    }
}

/// Test-only access to internals for property tests.
#[doc(hidden)]
pub mod test_support {
    use super::*;

    /// Exposes `max_fractional` for the state-invariant property tests.
    pub fn max_fractional_for_tests(
        state: &FlowState<'_>,
        cell: CellId,
        u: BinId,
        v: BinId,
    ) -> i64 {
        max_fractional(state, cell, u, v)
    }
}

fn select_fractional(
    state: &FlowState<'_>,
    u: BinId,
    v: BinId,
    needed: i64,
    params: &SelectionParams,
) -> Option<Selection> {
    let bin_u = state.grid.bin(u);
    let bin_v = state.grid.bin(v);
    // (unit cost, cell, movable width)
    let mut options: Vec<(f64, CellId, i64)> = state
        .frags_in(u)
        .iter()
        .filter_map(|f| {
            let movable = max_fractional(state, f.cell, u, v);
            if movable <= 0 {
                return None;
            }
            let w_c = state.cell_width(f.cell, bin_u.die) as f64;
            let delta = (state.disp_to(f.cell, bin_v) - state.disp_to(f.cell, bin_u)) as f64;
            let mut unit = delta / w_c;
            if params.clamp_negative {
                unit = unit.max(0.0);
            }
            Some((unit, f.cell, movable))
        })
        .collect();
    options.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut moves = Vec::new();
    let mut moved = 0i64;
    let mut cost = 0.0;
    for (unit, cell, movable) in options {
        if moved >= needed {
            break;
        }
        let take = movable.min(needed - moved);
        moves.push(Move {
            cell,
            width_from_u: take,
            whole: false,
        });
        moved += take;
        cost += unit * take as f64;
    }
    if moved < needed {
        return None;
    }
    Some(Selection {
        moves,
        removed_from_u: moved,
        added_to_v: moved,
        cost,
    })
}

fn select_whole(
    state: &FlowState<'_>,
    u: BinId,
    v: BinId,
    kind: EdgeKind,
    needed: i64,
    params: &SelectionParams,
) -> Option<Selection> {
    let bin_v = state.grid.bin(v);
    let seg_v = state.layout.segment(bin_v.segment);
    let die_v = bin_v.die;
    let cross_die = kind == EdgeKind::DieToDie;
    let congestion = if cross_die {
        let eq7 = if params.d2d_congestion_cost {
            ((state.sup(v) - state.dem(v)) as f64).max(0.0)
        } else {
            0.0
        };
        eq7 + params.d2d_penalty
    } else {
        0.0
    };

    // (unit cost, total cost, cell, frag width in u, width on target die)
    let mut options: Vec<(f64, f64, CellId, i64, i64)> = state
        .frags_in(u)
        .iter()
        .filter_map(|f| {
            let w_v = state.cell_width(f.cell, die_v);
            if w_v > seg_v.width() {
                return None; // does not fit in the target segment at all
            }
            let mut cost =
                state.disp_to(f.cell, bin_v) as f64 - state.disp_current(f.cell) + congestion;
            if params.clamp_negative {
                cost = cost.max(0.0);
            }
            Some((cost / w_v as f64, cost, f.cell, f.width, w_v))
        })
        .collect();
    options.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));

    let mut moves = Vec::new();
    let mut removed = 0i64;
    let mut added = 0i64;
    let mut cost = 0.0;
    let mut headroom = if cross_die {
        state.area_headroom(die_v)
    } else {
        i64::MAX
    };
    let h_v = state.cell_height(die_v);
    for (_, c_cost, cell, fw, w_v) in options {
        if removed >= needed {
            break;
        }
        if cross_die {
            let need_area = w_v * h_v;
            if need_area > headroom {
                continue; // utilization cap on the target die (§III-F)
            }
            headroom -= need_area;
        }
        moves.push(Move {
            cell,
            width_from_u: fw,
            whole: true,
        });
        removed += fw;
        added += w_v;
        cost += c_cost;
    }
    if removed < needed {
        return None;
    }
    Some(Selection {
        moves,
        removed_from_u: removed,
        added_to_v: added,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::BinGrid;
    use flow3d_db::{
        Design, DesignBuilder, DieId, DieSpec, LibCellSpec, RowLayout, TechnologySpec,
    };
    use flow3d_geom::Point;

    fn fixture() -> Design {
        DesignBuilder::new("t")
            .technology(
                TechnologySpec::new("TA")
                    .lib_cell(LibCellSpec::std_cell("W40", 40, 12))
                    .lib_cell(LibCellSpec::std_cell("W60", 60, 12)),
            )
            .technology(
                TechnologySpec::new("TB")
                    .lib_cell(LibCellSpec::std_cell("W40", 30, 16))
                    .lib_cell(LibCellSpec::std_cell("W60", 45, 16)),
            )
            .die(DieSpec::new("bottom", "TA", (0, 0, 400, 48), 12, 1, 1.0))
            .die(DieSpec::new("top", "TB", (0, 0, 400, 48), 16, 1, 1.0))
            .cell("u0", "W40")
            .cell("u1", "W60")
            .cell("u2", "W40")
            .build()
            .unwrap()
    }

    fn setup(design: &Design) -> (RowLayout, BinGrid) {
        let layout = RowLayout::build(design);
        let grid = BinGrid::build(design, &layout, &[100, 100], true);
        (layout, grid)
    }

    fn first_seg(layout: &RowLayout, die: DieId) -> flow3d_db::SegmentId {
        layout
            .segments()
            .iter()
            .find(|s| s.die == die && s.row.index() == 0)
            .unwrap()
            .id
    }

    #[test]
    fn fractional_selection_moves_exactly_needed() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), bins[0], 0);
        st.insert_cell(CellId::new(1), bins[0], 0);
        st.insert_cell(CellId::new(2), bins[0], 10);
        // usage 140, cap 100 -> sup 40.
        let sel = select_moves(
            &st,
            bins[0],
            bins[1],
            EdgeKind::Horizontal,
            40,
            &SelectionParams::default(),
        )
        .unwrap();
        assert_eq!(sel.removed_from_u, 40);
        assert_eq!(sel.added_to_v, 40);
        assert!(sel.cost > 0.0);
        assert!(sel.moves.iter().all(|m| !m.whole));
    }

    #[test]
    fn fractional_selection_fails_when_bin_cannot_supply() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), bins[0], 0); // width 40
        assert!(select_moves(
            &st,
            bins[0],
            bins[1],
            EdgeKind::Horizontal,
            100,
            &SelectionParams::default(),
        )
        .is_none());
    }

    #[test]
    fn fractional_prefers_cells_with_negative_cost() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        // u0 anchored far right (moving right is negative cost), u2 at 0.
        let anchors = vec![Point::new(300, 0), Point::ORIGIN, Point::new(0, 0)];
        let mut st = FlowState::new(&d, &layout, &grid, anchors);
        st.insert_cell(CellId::new(0), bins[0], 0);
        st.insert_cell(CellId::new(2), bins[0], 0);
        let sel = select_moves(
            &st,
            bins[0],
            bins[1],
            EdgeKind::Horizontal,
            20,
            &SelectionParams::default(),
        )
        .unwrap();
        assert_eq!(sel.moves[0].cell, CellId::new(0));
        assert!(sel.cost < 0.0, "cost {}", sel.cost);

        // With clamping (Bonn mode) the same move costs zero, not negative.
        let sel = select_moves(
            &st,
            bins[0],
            bins[1],
            EdgeKind::Horizontal,
            20,
            &SelectionParams {
                clamp_negative: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(sel.cost >= 0.0);
    }

    #[test]
    fn contiguity_limits_moves_away_from_straddle() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        assert!(bins.len() >= 3);
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        // u1 (width 60) straddles bins[0]/bins[1]: [70, 130).
        st.insert_cell(CellId::new(1), bins[0], 70);
        assert_eq!(st.cell_frags(CellId::new(1)).len(), 2);
        // Moving from the middle bin toward bins[2] may not fully drain
        // the bins[1] fragment (the bins[0] fragment would detach) — one
        // DBU stays behind.
        let frag_in_b1 = st
            .cell_frags(CellId::new(1))
            .iter()
            .find(|&&(b, _)| b == bins[1])
            .unwrap()
            .1;
        assert_eq!(
            max_fractional(&st, CellId::new(1), bins[1], bins[2]),
            frag_in_b1 - 1
        );
        // Toward bins[0] (the cell already ends there) the whole fragment
        // may move.
        assert_eq!(
            max_fractional(&st, CellId::new(1), bins[1], bins[0]),
            frag_in_b1
        );
    }

    #[test]
    fn whole_selection_converts_width_across_dies() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let u = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM))[0];
        let v = grid.bins_in_segment(first_seg(&layout, DieId::TOP))[0];
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), u, 0); // 40 on bottom, 30 on top
        st.insert_cell(CellId::new(1), u, 0); // 60 on bottom, 45 on top
        let sel = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            90,
            &SelectionParams {
                d2d_congestion_cost: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sel.removed_from_u, 100); // both cells, bottom widths
        assert_eq!(sel.added_to_v, 75); // top widths 30 + 45
        assert!(sel.moves.iter().all(|m| m.whole));
    }

    #[test]
    fn d2d_congestion_term_penalizes_congested_target_only() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let u = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM))[0];
        let v = grid.bins_in_segment(first_seg(&layout, DieId::TOP))[0];
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), u, 0);
        // Empty target: the clamped Eq. 7 term adds nothing.
        let base = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams {
                d2d_congestion_cost: false,
                ..Default::default()
            },
        )
        .unwrap();
        let with_term = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams::default(),
        )
        .unwrap();
        assert!((with_term.cost - base.cost).abs() < 1e-9);
        // Congested target: the term penalizes.
        st.insert_cell(CellId::new(1), v, 0);
        st.insert_cell(CellId::new(2), v, 0);
        let on_full = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams::default(),
        );
        if let Some(on_full) = on_full {
            assert!(on_full.cost >= with_term.cost);
        }
        // The fixed crossing penalty raises the cost.
        let with_penalty = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams {
                d2d_penalty: 16.0,
                d2d_congestion_cost: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with_penalty.cost > base.cost);
    }

    #[test]
    fn whole_selection_respects_area_headroom() {
        // Tiny top-die utilization: nothing may move there.
        let d = DesignBuilder::new("t")
            .technology(TechnologySpec::new("TA").lib_cell(LibCellSpec::std_cell("W40", 40, 12)))
            .technology(TechnologySpec::new("TB").lib_cell(LibCellSpec::std_cell("W40", 40, 12)))
            .die(DieSpec::new("bottom", "TA", (0, 0, 400, 12), 12, 1, 1.0))
            .die(DieSpec::new("top", "TB", (0, 0, 400, 12), 12, 1, 0.01))
            .cell("u0", "W40")
            .build()
            .unwrap();
        let (layout, grid) = setup(&d);
        let u = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM))[0];
        let v = grid.bins_in_segment(first_seg(&layout, DieId::TOP))[0];
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 1]);
        st.insert_cell(CellId::new(0), u, 0);
        assert!(select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams::default(),
        )
        .is_none());
    }

    #[test]
    fn memo_replays_by_content_signature() {
        let u = crate::grid::BinId(3);
        let v = crate::grid::BinId(4);
        let mut memo = SelectionMemo::new();
        assert_eq!(memo.lookup(u, v, 40, 0xABCD), None, "fresh memo is empty");
        memo.store(u, v, 40, 0xABCD, Some((1.5, 40)));
        memo.store(u, v, 60, 0xABCD, None); // negative result cached too
        assert_eq!(memo.lookup(u, v, 40, 0xABCD), Some(Some((1.5, 40))));
        assert_eq!(memo.lookup(u, v, 60, 0xABCD), Some(None));
        assert_eq!(memo.lookup(v, u, 40, 0xABCD), None, "key includes direction");
        // A changed neighborhood signature hides the entry: no explicit
        // invalidation step exists or is needed.
        assert_eq!(memo.lookup(u, v, 40, 0xBEEF), None);
        // Re-storing the same key at the new signature evicts its own
        // stale entry (same set, same key match), and the new content
        // replays while the old one stays gone.
        memo.store(u, v, 40, 0xBEEF, Some((2.5, 40)));
        assert_eq!(memo.lookup(u, v, 40, 0xBEEF), Some(Some((2.5, 40))));
        assert_eq!(memo.lookup(u, v, 40, 0xABCD), None);
        // clear() (ladder scoping) kills everything at once.
        memo.clear();
        assert_eq!(memo.lookup(u, v, 40, 0xBEEF), None);
    }

    #[test]
    fn memo_is_two_way_associative_and_grows_live() {
        // Two distinct `needed` values for one (u, v) pair can land in
        // different sets; force a shared set by using a minimal table:
        // with one set, both keys coexist in the two ways.
        let u = crate::grid::BinId(3);
        let v = crate::grid::BinId(4);
        let mut memo = SelectionMemo::with_slots(2);
        assert_eq!(memo.slots(), 2);
        memo.store(u, v, 40, 1, Some((1.5, 40)));
        memo.store(u, v, 60, 1, Some((2.5, 60)));
        assert_eq!(memo.lookup(u, v, 40, 1), Some(Some((1.5, 40))));
        assert_eq!(memo.lookup(u, v, 60, 1), Some(Some((2.5, 60))));
        // A third key evicts the oldest store (pseudo-LRU), not both.
        memo.store(u, v, 80, 1, Some((3.5, 80)));
        assert_eq!(memo.lookup(u, v, 40, 1), None, "oldest way evicted");
        assert_eq!(memo.lookup(u, v, 60, 1), Some(Some((2.5, 60))));
        assert_eq!(memo.lookup(u, v, 80, 1), Some(Some((3.5, 80))));
        // Growing rehashes live entries instead of dropping them.
        memo.ensure_slots(64);
        assert!(memo.slots() >= 64);
        assert_eq!(memo.lookup(u, v, 60, 1), Some(Some((2.5, 60))));
        assert_eq!(memo.lookup(u, v, 80, 1), Some(Some((3.5, 80))));
        // Grow-only: a smaller request changes nothing.
        let before = memo.slots();
        memo.ensure_slots(2);
        assert_eq!(memo.slots(), before);
    }

    #[test]
    fn memo_absorb_merges_coordinator_writes() {
        let u = crate::grid::BinId(3);
        let v = crate::grid::BinId(4);
        let mut memo = SelectionMemo::new();
        memo.absorb(&[
            MemoWrite { u, v, needed: 40, sig: 7, outcome: Some((1.5, 40)) },
            MemoWrite { u: v, v: u, needed: 10, sig: 9, outcome: None },
        ]);
        assert_eq!(memo.lookup(u, v, 40, 7), Some(Some((1.5, 40))));
        assert_eq!(memo.lookup(v, u, 10, 9), Some(None));
    }

    #[test]
    fn selection_is_deterministic() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), bins[0], 0);
        st.insert_cell(CellId::new(1), bins[0], 0);
        st.insert_cell(CellId::new(2), bins[0], 0);
        let p = SelectionParams::default();
        let a = select_moves(&st, bins[0], bins[1], EdgeKind::Horizontal, 40, &p);
        let b = select_moves(&st, bins[0], bins[1], EdgeKind::Horizontal, 40, &p);
        assert_eq!(a, b);
    }
}
