//! Selection of the cell set C(u, v) moved across one grid edge
//! (paper Algorithm 1 line 10 and §III-C).
//!
//! * Across a **horizontal** edge (adjacent bins of one segment) cells may
//!   move *fractionally*: the cheapest fragments per unit width are chosen
//!   so the moved width exactly matches the required out-flow. A cell's
//!   fragments must remain contiguous bins, which bounds how much of a
//!   fragment may leave when the cell also extends to the opposite side.
//! * Across **vertical** and **die-to-die** edges cells move *whole*: all
//!   fragments leave their bins and the full cell (with the target die's
//!   width under heterogeneous technologies) lands in the target bin. The
//!   cheapest cells per unit width are chosen until the required out-flow
//!   is covered. D2D moves respect the target die's utilization cap and
//!   optionally pay the Eq. (7) congestion term.

use crate::grid::{BinId, EdgeKind};
use crate::state::FlowState;
use flow3d_db::CellId;

/// Parameters shared by search and realization so both compute identical
/// selections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionParams {
    /// Clamp per-cell move costs to `≥ 0` (BonnPlaceLegal's restriction;
    /// 3D-Flow keeps negative costs).
    pub clamp_negative: bool,
    /// Add the Eq. (7) congestion term to each D2D move. Deviation from
    /// the literal formula (documented in `DESIGN.md`): the term is
    /// clamped at zero — `max(0, sup(v) − dem(v))` — because the raw
    /// value rewards *every* move into an under-full bin by its whole
    /// free width, flooding the dies with crossings.
    pub d2d_congestion_cost: bool,
    /// Fixed cost of crossing dies, making a vertical hop comparable to a
    /// row hop (typically the larger row height).
    pub d2d_penalty: f64,
}

impl Default for SelectionParams {
    fn default() -> Self {
        Self {
            clamp_negative: false,
            d2d_congestion_cost: true,
            d2d_penalty: 0.0,
        }
    }
}

/// One selected move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Move {
    /// The cell to move.
    pub cell: CellId,
    /// Width leaving `u` (a fragment slice for fractional moves, the
    /// cell's fragment width in `u` for whole moves).
    pub width_from_u: i64,
    /// `true` if the whole cell relocates into `v` (vertical/D2D edges).
    pub whole: bool,
}

/// The selected set C(u, v) with its flow accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Moves in application order.
    pub moves: Vec<Move>,
    /// Total width leaving `u`, in `u`'s units (`≥ needed`).
    pub removed_from_u: i64,
    /// Total width arriving in `v`, in `v`'s units (the search's
    /// `flow(v)`).
    pub added_to_v: i64,
    /// Displacement cost of the selection (Eq. 5, fraction-scaled).
    pub cost: f64,
}

/// Selects the cheapest cell set moving at least `needed` DBU out of `u`
/// across the `(u, v)` edge of the given kind. Returns `None` when the
/// bin cannot supply `needed` width (the edge is unusable for this flow).
pub fn select_moves(
    state: &FlowState<'_>,
    u: BinId,
    v: BinId,
    kind: EdgeKind,
    needed: i64,
    params: &SelectionParams,
) -> Option<Selection> {
    debug_assert!(needed > 0, "selection needs positive outflow");
    match kind {
        EdgeKind::Horizontal => select_fractional(state, u, v, needed, params),
        EdgeKind::Vertical | EdgeKind::DieToDie => select_whole(state, u, v, kind, needed, params),
    }
}

/// Maximum width of `cell`'s fragment in `u` movable toward `v` without
/// breaking fragment contiguity.
fn max_fractional(state: &FlowState<'_>, cell: CellId, u: BinId, v: BinId) -> i64 {
    let frags = state.cell_frags(cell);
    let fw = frags
        .iter()
        .find(|&&(b, _)| b == u)
        .map(|&(_, w)| w)
        .unwrap_or(0);
    if fw == 0 {
        return 0;
    }
    // Fully draining `u` keeps the fragments contiguous only when `u` is
    // the cell's sole bin or the cell already extends into `v`; in every
    // other case removing `u` leaves a hole between the remaining
    // fragments and `v`, so one DBU stays behind to keep the range
    // connected.
    let full_ok = frags.len() == 1 || frags.iter().any(|&(b, _)| b == v);
    if full_ok {
        fw
    } else {
        fw - 1
    }
}

/// Test-only access to internals for property tests.
#[doc(hidden)]
pub mod test_support {
    use super::*;

    /// Exposes `max_fractional` for the state-invariant property tests.
    pub fn max_fractional_for_tests(
        state: &FlowState<'_>,
        cell: CellId,
        u: BinId,
        v: BinId,
    ) -> i64 {
        max_fractional(state, cell, u, v)
    }
}

fn select_fractional(
    state: &FlowState<'_>,
    u: BinId,
    v: BinId,
    needed: i64,
    params: &SelectionParams,
) -> Option<Selection> {
    let bin_u = state.grid.bin(u);
    let bin_v = state.grid.bin(v);
    // (unit cost, cell, movable width)
    let mut options: Vec<(f64, CellId, i64)> = state
        .frags_in(u)
        .iter()
        .filter_map(|f| {
            let movable = max_fractional(state, f.cell, u, v);
            if movable <= 0 {
                return None;
            }
            let w_c = state.design.cell_width(f.cell, bin_u.die) as f64;
            let delta = (state.disp_to(f.cell, bin_v) - state.disp_to(f.cell, bin_u)) as f64;
            let mut unit = delta / w_c;
            if params.clamp_negative {
                unit = unit.max(0.0);
            }
            Some((unit, f.cell, movable))
        })
        .collect();
    options.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut moves = Vec::new();
    let mut moved = 0i64;
    let mut cost = 0.0;
    for (unit, cell, movable) in options {
        if moved >= needed {
            break;
        }
        let take = movable.min(needed - moved);
        moves.push(Move {
            cell,
            width_from_u: take,
            whole: false,
        });
        moved += take;
        cost += unit * take as f64;
    }
    if moved < needed {
        return None;
    }
    Some(Selection {
        moves,
        removed_from_u: moved,
        added_to_v: moved,
        cost,
    })
}

fn select_whole(
    state: &FlowState<'_>,
    u: BinId,
    v: BinId,
    kind: EdgeKind,
    needed: i64,
    params: &SelectionParams,
) -> Option<Selection> {
    let bin_v = state.grid.bin(v);
    let seg_v = state.layout.segment(bin_v.segment);
    let die_v = bin_v.die;
    let cross_die = kind == EdgeKind::DieToDie;
    let congestion = if cross_die {
        let eq7 = if params.d2d_congestion_cost {
            ((state.sup(v) - state.dem(v)) as f64).max(0.0)
        } else {
            0.0
        };
        eq7 + params.d2d_penalty
    } else {
        0.0
    };

    // (unit cost, total cost, cell, frag width in u, width on target die)
    let mut options: Vec<(f64, f64, CellId, i64, i64)> = state
        .frags_in(u)
        .iter()
        .filter_map(|f| {
            let w_v = state.design.cell_width(f.cell, die_v);
            if w_v > seg_v.width() {
                return None; // does not fit in the target segment at all
            }
            let mut cost =
                state.disp_to(f.cell, bin_v) as f64 - state.disp_current(f.cell) + congestion;
            if params.clamp_negative {
                cost = cost.max(0.0);
            }
            Some((cost / w_v as f64, cost, f.cell, f.width, w_v))
        })
        .collect();
    options.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));

    let mut moves = Vec::new();
    let mut removed = 0i64;
    let mut added = 0i64;
    let mut cost = 0.0;
    let mut headroom = if cross_die {
        state.area_headroom(die_v)
    } else {
        i64::MAX
    };
    let h_v = state.design.cell_height(die_v);
    for (_, c_cost, cell, fw, w_v) in options {
        if removed >= needed {
            break;
        }
        if cross_die {
            let need_area = w_v * h_v;
            if need_area > headroom {
                continue; // utilization cap on the target die (§III-F)
            }
            headroom -= need_area;
        }
        moves.push(Move {
            cell,
            width_from_u: fw,
            whole: true,
        });
        removed += fw;
        added += w_v;
        cost += c_cost;
    }
    if removed < needed {
        return None;
    }
    Some(Selection {
        moves,
        removed_from_u: removed,
        added_to_v: added,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::BinGrid;
    use flow3d_db::{
        Design, DesignBuilder, DieId, DieSpec, LibCellSpec, RowLayout, TechnologySpec,
    };
    use flow3d_geom::Point;

    fn fixture() -> Design {
        DesignBuilder::new("t")
            .technology(
                TechnologySpec::new("TA")
                    .lib_cell(LibCellSpec::std_cell("W40", 40, 12))
                    .lib_cell(LibCellSpec::std_cell("W60", 60, 12)),
            )
            .technology(
                TechnologySpec::new("TB")
                    .lib_cell(LibCellSpec::std_cell("W40", 30, 16))
                    .lib_cell(LibCellSpec::std_cell("W60", 45, 16)),
            )
            .die(DieSpec::new("bottom", "TA", (0, 0, 400, 48), 12, 1, 1.0))
            .die(DieSpec::new("top", "TB", (0, 0, 400, 48), 16, 1, 1.0))
            .cell("u0", "W40")
            .cell("u1", "W60")
            .cell("u2", "W40")
            .build()
            .unwrap()
    }

    fn setup(design: &Design) -> (RowLayout, BinGrid) {
        let layout = RowLayout::build(design);
        let grid = BinGrid::build(design, &layout, &[100, 100], true);
        (layout, grid)
    }

    fn first_seg(layout: &RowLayout, die: DieId) -> flow3d_db::SegmentId {
        layout
            .segments()
            .iter()
            .find(|s| s.die == die && s.row.index() == 0)
            .unwrap()
            .id
    }

    #[test]
    fn fractional_selection_moves_exactly_needed() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), bins[0], 0);
        st.insert_cell(CellId::new(1), bins[0], 0);
        st.insert_cell(CellId::new(2), bins[0], 10);
        // usage 140, cap 100 -> sup 40.
        let sel = select_moves(
            &st,
            bins[0],
            bins[1],
            EdgeKind::Horizontal,
            40,
            &SelectionParams::default(),
        )
        .unwrap();
        assert_eq!(sel.removed_from_u, 40);
        assert_eq!(sel.added_to_v, 40);
        assert!(sel.cost > 0.0);
        assert!(sel.moves.iter().all(|m| !m.whole));
    }

    #[test]
    fn fractional_selection_fails_when_bin_cannot_supply() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), bins[0], 0); // width 40
        assert!(select_moves(
            &st,
            bins[0],
            bins[1],
            EdgeKind::Horizontal,
            100,
            &SelectionParams::default(),
        )
        .is_none());
    }

    #[test]
    fn fractional_prefers_cells_with_negative_cost() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        // u0 anchored far right (moving right is negative cost), u2 at 0.
        let anchors = vec![Point::new(300, 0), Point::ORIGIN, Point::new(0, 0)];
        let mut st = FlowState::new(&d, &layout, &grid, anchors);
        st.insert_cell(CellId::new(0), bins[0], 0);
        st.insert_cell(CellId::new(2), bins[0], 0);
        let sel = select_moves(
            &st,
            bins[0],
            bins[1],
            EdgeKind::Horizontal,
            20,
            &SelectionParams::default(),
        )
        .unwrap();
        assert_eq!(sel.moves[0].cell, CellId::new(0));
        assert!(sel.cost < 0.0, "cost {}", sel.cost);

        // With clamping (Bonn mode) the same move costs zero, not negative.
        let sel = select_moves(
            &st,
            bins[0],
            bins[1],
            EdgeKind::Horizontal,
            20,
            &SelectionParams {
                clamp_negative: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(sel.cost >= 0.0);
    }

    #[test]
    fn contiguity_limits_moves_away_from_straddle() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        assert!(bins.len() >= 3);
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        // u1 (width 60) straddles bins[0]/bins[1]: [70, 130).
        st.insert_cell(CellId::new(1), bins[0], 70);
        assert_eq!(st.cell_frags(CellId::new(1)).len(), 2);
        // Moving from the middle bin toward bins[2] may not fully drain
        // the bins[1] fragment (the bins[0] fragment would detach) — one
        // DBU stays behind.
        let frag_in_b1 = st
            .cell_frags(CellId::new(1))
            .iter()
            .find(|&&(b, _)| b == bins[1])
            .unwrap()
            .1;
        assert_eq!(
            max_fractional(&st, CellId::new(1), bins[1], bins[2]),
            frag_in_b1 - 1
        );
        // Toward bins[0] (the cell already ends there) the whole fragment
        // may move.
        assert_eq!(
            max_fractional(&st, CellId::new(1), bins[1], bins[0]),
            frag_in_b1
        );
    }

    #[test]
    fn whole_selection_converts_width_across_dies() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let u = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM))[0];
        let v = grid.bins_in_segment(first_seg(&layout, DieId::TOP))[0];
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), u, 0); // 40 on bottom, 30 on top
        st.insert_cell(CellId::new(1), u, 0); // 60 on bottom, 45 on top
        let sel = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            90,
            &SelectionParams {
                d2d_congestion_cost: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sel.removed_from_u, 100); // both cells, bottom widths
        assert_eq!(sel.added_to_v, 75); // top widths 30 + 45
        assert!(sel.moves.iter().all(|m| m.whole));
    }

    #[test]
    fn d2d_congestion_term_penalizes_congested_target_only() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let u = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM))[0];
        let v = grid.bins_in_segment(first_seg(&layout, DieId::TOP))[0];
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), u, 0);
        // Empty target: the clamped Eq. 7 term adds nothing.
        let base = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams {
                d2d_congestion_cost: false,
                ..Default::default()
            },
        )
        .unwrap();
        let with_term = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams::default(),
        )
        .unwrap();
        assert!((with_term.cost - base.cost).abs() < 1e-9);
        // Congested target: the term penalizes.
        st.insert_cell(CellId::new(1), v, 0);
        st.insert_cell(CellId::new(2), v, 0);
        let on_full = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams::default(),
        );
        if let Some(on_full) = on_full {
            assert!(on_full.cost >= with_term.cost);
        }
        // The fixed crossing penalty raises the cost.
        let with_penalty = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams {
                d2d_penalty: 16.0,
                d2d_congestion_cost: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with_penalty.cost > base.cost);
    }

    #[test]
    fn whole_selection_respects_area_headroom() {
        // Tiny top-die utilization: nothing may move there.
        let d = DesignBuilder::new("t")
            .technology(TechnologySpec::new("TA").lib_cell(LibCellSpec::std_cell("W40", 40, 12)))
            .technology(TechnologySpec::new("TB").lib_cell(LibCellSpec::std_cell("W40", 40, 12)))
            .die(DieSpec::new("bottom", "TA", (0, 0, 400, 12), 12, 1, 1.0))
            .die(DieSpec::new("top", "TB", (0, 0, 400, 12), 12, 1, 0.01))
            .cell("u0", "W40")
            .build()
            .unwrap();
        let (layout, grid) = setup(&d);
        let u = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM))[0];
        let v = grid.bins_in_segment(first_seg(&layout, DieId::TOP))[0];
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 1]);
        st.insert_cell(CellId::new(0), u, 0);
        assert!(select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams::default(),
        )
        .is_none());
    }

    #[test]
    fn selection_is_deterministic() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), bins[0], 0);
        st.insert_cell(CellId::new(1), bins[0], 0);
        st.insert_cell(CellId::new(2), bins[0], 0);
        let p = SelectionParams::default();
        let a = select_moves(&st, bins[0], bins[1], EdgeKind::Horizontal, 40, &p);
        let b = select_moves(&st, bins[0], bins[1], EdgeKind::Horizontal, 40, &p);
        assert_eq!(a, b);
    }
}
