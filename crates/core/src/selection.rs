//! Selection of the cell set C(u, v) moved across one grid edge
//! (paper Algorithm 1 line 10 and §III-C).
//!
//! * Across a **horizontal** edge (adjacent bins of one segment) cells may
//!   move *fractionally*: the cheapest fragments per unit width are chosen
//!   so the moved width exactly matches the required out-flow. A cell's
//!   fragments must remain contiguous bins, which bounds how much of a
//!   fragment may leave when the cell also extends to the opposite side.
//! * Across **vertical** and **die-to-die** edges cells move *whole*: all
//!   fragments leave their bins and the full cell (with the target die's
//!   width under heterogeneous technologies) lands in the target bin. The
//!   cheapest cells per unit width are chosen until the required out-flow
//!   is covered. D2D moves respect the target die's utilization cap and
//!   optionally pay the Eq. (7) congestion term.

use crate::grid::{BinId, EdgeKind};
use crate::state::FlowState;
use flow3d_db::CellId;

/// Parameters shared by search and realization so both compute identical
/// selections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionParams {
    /// Clamp per-cell move costs to `≥ 0` (BonnPlaceLegal's restriction;
    /// 3D-Flow keeps negative costs).
    pub clamp_negative: bool,
    /// Add the Eq. (7) congestion term to each D2D move. Deviation from
    /// the literal formula (documented in `DESIGN.md`): the term is
    /// clamped at zero — `max(0, sup(v) − dem(v))` — because the raw
    /// value rewards *every* move into an under-full bin by its whole
    /// free width, flooding the dies with crossings.
    pub d2d_congestion_cost: bool,
    /// Fixed cost of crossing dies, making a vertical hop comparable to a
    /// row hop (typically the larger row height).
    pub d2d_penalty: f64,
}

impl Default for SelectionParams {
    fn default() -> Self {
        Self {
            clamp_negative: false,
            d2d_congestion_cost: true,
            d2d_penalty: 0.0,
        }
    }
}

/// One selected move.
#[derive(Debug, Clone, Copy, PartialEq)]
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub struct Move {
    /// The cell to move.
    pub cell: CellId,
    /// Width leaving `u` (a fragment slice for fractional moves, the
    /// cell's fragment width in `u` for whole moves).
    pub width_from_u: i64,
    /// `true` if the whole cell relocates into `v` (vertical/D2D edges).
    pub whole: bool,
}

/// The selected set C(u, v) with its flow accounting.
#[derive(Debug, Clone, PartialEq)]
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub struct Selection {
    /// Moves in application order.
    pub moves: Vec<Move>,
    /// Total width leaving `u`, in `u`'s units (`≥ needed`).
    pub removed_from_u: i64,
    /// Total width arriving in `v`, in `v`'s units (the search's
    /// `flow(v)`).
    pub added_to_v: i64,
    /// Displacement cost of the selection (Eq. 5, fraction-scaled).
    pub cost: f64,
}

/// Slot count of [`SelectionMemo`]: a power of two so the hash folds to
/// an index with a mask. 1 KiB-scale — small enough to stay cache-warm
/// per worker, large enough that one source's retry ladder rarely
/// collides with itself.
const MEMO_SLOTS: usize = 1024;

/// One direct-mapped memo slot. `epoch == 0` marks an empty slot (the
/// live epoch counter skips 0).
#[derive(Debug, Clone, Copy)]
struct MemoSlot {
    epoch: u32,
    u: u32,
    v: u32,
    needed: i64,
    generation: u64,
    outcome: Option<(f64, i64)>,
}

const EMPTY_SLOT: MemoSlot = MemoSlot {
    epoch: 0,
    u: u32::MAX,
    v: u32::MAX,
    needed: 0,
    generation: 0,
    outcome: None,
};

/// Direct-mapped memo of [`select_moves`] outcomes for the search
/// kernel's hot loop.
///
/// The search consumes only two fields of a [`Selection`] — `cost` and
/// `added_to_v` — so the memo caches that compact `Option<(f64, i64)>`
/// summary (`None` = the edge cannot supply `needed`; negative results
/// are worth caching too). Keys are `(u, v, needed)`; the edge kind is
/// not part of the key because a bin pair has exactly one edge kind.
///
/// Two validity stamps guard staleness:
/// * a **generation** captured from [`FlowState::generation`], so any
///   state mutation invalidates every entry, and
/// * an **epoch** bumped unconditionally by
///   [`begin_source`](Self::begin_source), scoping entries to one
///   source's retry ladder. This keeps hit/miss telemetry a pure
///   function of `(state, source)` — and therefore invariant under the
///   worker count — instead of depending on which searches a worker
///   happened to run earlier.
///
/// Deliberately a fixed-size direct-mapped array, not a map: lookups are
/// one multiply-xor hash and one slot probe, no allocation, no ordering
/// concerns (flow3d-tidy D1 bans hash maps in this crate anyway).
#[derive(Debug, Clone)]
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub struct SelectionMemo {
    slots: Vec<MemoSlot>,
    epoch: u32,
    generation: u64,
}

impl Default for SelectionMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl SelectionMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        Self {
            slots: vec![EMPTY_SLOT; MEMO_SLOTS],
            epoch: 1,
            generation: 0,
        }
    }

    /// The [`FlowState::generation`] this memo's entries were computed
    /// against.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Opens a new memo scope: every existing entry becomes invalid and
    /// `generation` is recorded for the entries to come. Call once per
    /// source retry ladder (and whenever the state may have mutated
    /// since the last search).
    pub fn begin_source(&mut self, generation: u64) {
        self.bump_epoch();
        self.generation = generation;
    }

    /// Opens a **warm** memo scope: `generation` is recorded for lookups
    /// and stores, but the epoch is *not* bumped, so entries written in
    /// earlier scopes stay live and replay whenever a later scope returns
    /// to their generation.
    ///
    /// This is only sound under a discipline the caller must enforce: a
    /// generation value must never denote two different state contents
    /// within this memo's lifetime. [`crate::EcoEngine`] guarantees it by
    /// replaying identical requests (identical mutation sequence ⇒
    /// identical `(generation, content)` pairs) and calling
    /// [`invalidate`](Self::invalidate) before any request that is not a
    /// replay of the previous one. Hit/miss counts under warm scopes
    /// depend on what the scratch served before, so they are advisory
    /// telemetry, not a pure function of `(state, source)`.
    pub fn warm_scope(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Invalidates every entry (epoch bump) without opening a new scope.
    /// Warm users call this when the state lineage diverges — e.g. a new
    /// ECO request that is not a replay of the previous one.
    pub fn invalidate(&mut self) {
        self.bump_epoch();
    }

    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: hard-reset so no 4-billion-searches-old
            // entry can alias the restarted counter.
            self.slots.fill(EMPTY_SLOT);
            self.epoch = 1;
        }
    }

    /// Deterministic multiplicative hash of the key, folded to a slot
    /// index.
    #[inline]
    fn slot_index(u: BinId, v: BinId, needed: i64) -> usize {
        let mut h = (u.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= (v.0 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h ^= (needed as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
        h ^= h >> 32;
        (h as usize) & (MEMO_SLOTS - 1)
    }

    /// Looks up the memoized outcome for `(u, v, needed)`. Outer `None`
    /// = miss; `Some(inner)` replays the exact [`select_moves`] summary
    /// (including a cached "edge unusable" `None`).
    #[inline]
    pub fn lookup(&self, u: BinId, v: BinId, needed: i64) -> Option<Option<(f64, i64)>> {
        let s = &self.slots[Self::slot_index(u, v, needed)];
        (s.epoch == self.epoch
            && s.generation == self.generation
            && s.u == u.0
            && s.v == v.0
            && s.needed == needed)
            .then_some(s.outcome)
    }

    /// Stores the `(cost, added_to_v)` summary (or `None` for an
    /// unusable edge) for `(u, v, needed)`, evicting whatever occupied
    /// the slot.
    #[inline]
    pub fn store(&mut self, u: BinId, v: BinId, needed: i64, outcome: Option<(f64, i64)>) {
        self.slots[Self::slot_index(u, v, needed)] = MemoSlot {
            epoch: self.epoch,
            u: u.0,
            v: v.0,
            needed,
            generation: self.generation,
            outcome,
        };
    }
}

/// Selects the cheapest cell set moving at least `needed` DBU out of `u`
/// across the `(u, v)` edge of the given kind. Returns `None` when the
/// bin cannot supply `needed` width (the edge is unusable for this flow).
pub fn select_moves(
    state: &FlowState<'_>,
    u: BinId,
    v: BinId,
    kind: EdgeKind,
    needed: i64,
    params: &SelectionParams,
) -> Option<Selection> {
    debug_assert!(needed > 0, "selection needs positive outflow");
    match kind {
        EdgeKind::Horizontal => select_fractional(state, u, v, needed, params),
        EdgeKind::Vertical | EdgeKind::DieToDie => select_whole(state, u, v, kind, needed, params),
    }
}

/// Maximum width of `cell`'s fragment in `u` movable toward `v` without
/// breaking fragment contiguity.
fn max_fractional(state: &FlowState<'_>, cell: CellId, u: BinId, v: BinId) -> i64 {
    let frags = state.cell_frags(cell);
    let fw = frags
        .iter()
        .find(|&&(b, _)| b == u)
        .map(|&(_, w)| w)
        .unwrap_or(0);
    if fw == 0 {
        return 0;
    }
    // Fully draining `u` keeps the fragments contiguous only when `u` is
    // the cell's sole bin or the cell already extends into `v`; in every
    // other case removing `u` leaves a hole between the remaining
    // fragments and `v`, so one DBU stays behind to keep the range
    // connected.
    let full_ok = frags.len() == 1 || frags.iter().any(|&(b, _)| b == v);
    if full_ok {
        fw
    } else {
        fw - 1
    }
}

/// Test-only access to internals for property tests.
#[doc(hidden)]
pub mod test_support {
    use super::*;

    /// Exposes `max_fractional` for the state-invariant property tests.
    pub fn max_fractional_for_tests(
        state: &FlowState<'_>,
        cell: CellId,
        u: BinId,
        v: BinId,
    ) -> i64 {
        max_fractional(state, cell, u, v)
    }
}

fn select_fractional(
    state: &FlowState<'_>,
    u: BinId,
    v: BinId,
    needed: i64,
    params: &SelectionParams,
) -> Option<Selection> {
    let bin_u = state.grid.bin(u);
    let bin_v = state.grid.bin(v);
    // (unit cost, cell, movable width)
    let mut options: Vec<(f64, CellId, i64)> = state
        .frags_in(u)
        .iter()
        .filter_map(|f| {
            let movable = max_fractional(state, f.cell, u, v);
            if movable <= 0 {
                return None;
            }
            let w_c = state.cell_width(f.cell, bin_u.die) as f64;
            let delta = (state.disp_to(f.cell, bin_v) - state.disp_to(f.cell, bin_u)) as f64;
            let mut unit = delta / w_c;
            if params.clamp_negative {
                unit = unit.max(0.0);
            }
            Some((unit, f.cell, movable))
        })
        .collect();
    options.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut moves = Vec::new();
    let mut moved = 0i64;
    let mut cost = 0.0;
    for (unit, cell, movable) in options {
        if moved >= needed {
            break;
        }
        let take = movable.min(needed - moved);
        moves.push(Move {
            cell,
            width_from_u: take,
            whole: false,
        });
        moved += take;
        cost += unit * take as f64;
    }
    if moved < needed {
        return None;
    }
    Some(Selection {
        moves,
        removed_from_u: moved,
        added_to_v: moved,
        cost,
    })
}

fn select_whole(
    state: &FlowState<'_>,
    u: BinId,
    v: BinId,
    kind: EdgeKind,
    needed: i64,
    params: &SelectionParams,
) -> Option<Selection> {
    let bin_v = state.grid.bin(v);
    let seg_v = state.layout.segment(bin_v.segment);
    let die_v = bin_v.die;
    let cross_die = kind == EdgeKind::DieToDie;
    let congestion = if cross_die {
        let eq7 = if params.d2d_congestion_cost {
            ((state.sup(v) - state.dem(v)) as f64).max(0.0)
        } else {
            0.0
        };
        eq7 + params.d2d_penalty
    } else {
        0.0
    };

    // (unit cost, total cost, cell, frag width in u, width on target die)
    let mut options: Vec<(f64, f64, CellId, i64, i64)> = state
        .frags_in(u)
        .iter()
        .filter_map(|f| {
            let w_v = state.cell_width(f.cell, die_v);
            if w_v > seg_v.width() {
                return None; // does not fit in the target segment at all
            }
            let mut cost =
                state.disp_to(f.cell, bin_v) as f64 - state.disp_current(f.cell) + congestion;
            if params.clamp_negative {
                cost = cost.max(0.0);
            }
            Some((cost / w_v as f64, cost, f.cell, f.width, w_v))
        })
        .collect();
    options.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));

    let mut moves = Vec::new();
    let mut removed = 0i64;
    let mut added = 0i64;
    let mut cost = 0.0;
    let mut headroom = if cross_die {
        state.area_headroom(die_v)
    } else {
        i64::MAX
    };
    let h_v = state.cell_height(die_v);
    for (_, c_cost, cell, fw, w_v) in options {
        if removed >= needed {
            break;
        }
        if cross_die {
            let need_area = w_v * h_v;
            if need_area > headroom {
                continue; // utilization cap on the target die (§III-F)
            }
            headroom -= need_area;
        }
        moves.push(Move {
            cell,
            width_from_u: fw,
            whole: true,
        });
        removed += fw;
        added += w_v;
        cost += c_cost;
    }
    if removed < needed {
        return None;
    }
    Some(Selection {
        moves,
        removed_from_u: removed,
        added_to_v: added,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::BinGrid;
    use flow3d_db::{
        Design, DesignBuilder, DieId, DieSpec, LibCellSpec, RowLayout, TechnologySpec,
    };
    use flow3d_geom::Point;

    fn fixture() -> Design {
        DesignBuilder::new("t")
            .technology(
                TechnologySpec::new("TA")
                    .lib_cell(LibCellSpec::std_cell("W40", 40, 12))
                    .lib_cell(LibCellSpec::std_cell("W60", 60, 12)),
            )
            .technology(
                TechnologySpec::new("TB")
                    .lib_cell(LibCellSpec::std_cell("W40", 30, 16))
                    .lib_cell(LibCellSpec::std_cell("W60", 45, 16)),
            )
            .die(DieSpec::new("bottom", "TA", (0, 0, 400, 48), 12, 1, 1.0))
            .die(DieSpec::new("top", "TB", (0, 0, 400, 48), 16, 1, 1.0))
            .cell("u0", "W40")
            .cell("u1", "W60")
            .cell("u2", "W40")
            .build()
            .unwrap()
    }

    fn setup(design: &Design) -> (RowLayout, BinGrid) {
        let layout = RowLayout::build(design);
        let grid = BinGrid::build(design, &layout, &[100, 100], true);
        (layout, grid)
    }

    fn first_seg(layout: &RowLayout, die: DieId) -> flow3d_db::SegmentId {
        layout
            .segments()
            .iter()
            .find(|s| s.die == die && s.row.index() == 0)
            .unwrap()
            .id
    }

    #[test]
    fn fractional_selection_moves_exactly_needed() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), bins[0], 0);
        st.insert_cell(CellId::new(1), bins[0], 0);
        st.insert_cell(CellId::new(2), bins[0], 10);
        // usage 140, cap 100 -> sup 40.
        let sel = select_moves(
            &st,
            bins[0],
            bins[1],
            EdgeKind::Horizontal,
            40,
            &SelectionParams::default(),
        )
        .unwrap();
        assert_eq!(sel.removed_from_u, 40);
        assert_eq!(sel.added_to_v, 40);
        assert!(sel.cost > 0.0);
        assert!(sel.moves.iter().all(|m| !m.whole));
    }

    #[test]
    fn fractional_selection_fails_when_bin_cannot_supply() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), bins[0], 0); // width 40
        assert!(select_moves(
            &st,
            bins[0],
            bins[1],
            EdgeKind::Horizontal,
            100,
            &SelectionParams::default(),
        )
        .is_none());
    }

    #[test]
    fn fractional_prefers_cells_with_negative_cost() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        // u0 anchored far right (moving right is negative cost), u2 at 0.
        let anchors = vec![Point::new(300, 0), Point::ORIGIN, Point::new(0, 0)];
        let mut st = FlowState::new(&d, &layout, &grid, anchors);
        st.insert_cell(CellId::new(0), bins[0], 0);
        st.insert_cell(CellId::new(2), bins[0], 0);
        let sel = select_moves(
            &st,
            bins[0],
            bins[1],
            EdgeKind::Horizontal,
            20,
            &SelectionParams::default(),
        )
        .unwrap();
        assert_eq!(sel.moves[0].cell, CellId::new(0));
        assert!(sel.cost < 0.0, "cost {}", sel.cost);

        // With clamping (Bonn mode) the same move costs zero, not negative.
        let sel = select_moves(
            &st,
            bins[0],
            bins[1],
            EdgeKind::Horizontal,
            20,
            &SelectionParams {
                clamp_negative: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(sel.cost >= 0.0);
    }

    #[test]
    fn contiguity_limits_moves_away_from_straddle() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        assert!(bins.len() >= 3);
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        // u1 (width 60) straddles bins[0]/bins[1]: [70, 130).
        st.insert_cell(CellId::new(1), bins[0], 70);
        assert_eq!(st.cell_frags(CellId::new(1)).len(), 2);
        // Moving from the middle bin toward bins[2] may not fully drain
        // the bins[1] fragment (the bins[0] fragment would detach) — one
        // DBU stays behind.
        let frag_in_b1 = st
            .cell_frags(CellId::new(1))
            .iter()
            .find(|&&(b, _)| b == bins[1])
            .unwrap()
            .1;
        assert_eq!(
            max_fractional(&st, CellId::new(1), bins[1], bins[2]),
            frag_in_b1 - 1
        );
        // Toward bins[0] (the cell already ends there) the whole fragment
        // may move.
        assert_eq!(
            max_fractional(&st, CellId::new(1), bins[1], bins[0]),
            frag_in_b1
        );
    }

    #[test]
    fn whole_selection_converts_width_across_dies() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let u = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM))[0];
        let v = grid.bins_in_segment(first_seg(&layout, DieId::TOP))[0];
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), u, 0); // 40 on bottom, 30 on top
        st.insert_cell(CellId::new(1), u, 0); // 60 on bottom, 45 on top
        let sel = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            90,
            &SelectionParams {
                d2d_congestion_cost: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sel.removed_from_u, 100); // both cells, bottom widths
        assert_eq!(sel.added_to_v, 75); // top widths 30 + 45
        assert!(sel.moves.iter().all(|m| m.whole));
    }

    #[test]
    fn d2d_congestion_term_penalizes_congested_target_only() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let u = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM))[0];
        let v = grid.bins_in_segment(first_seg(&layout, DieId::TOP))[0];
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), u, 0);
        // Empty target: the clamped Eq. 7 term adds nothing.
        let base = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams {
                d2d_congestion_cost: false,
                ..Default::default()
            },
        )
        .unwrap();
        let with_term = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams::default(),
        )
        .unwrap();
        assert!((with_term.cost - base.cost).abs() < 1e-9);
        // Congested target: the term penalizes.
        st.insert_cell(CellId::new(1), v, 0);
        st.insert_cell(CellId::new(2), v, 0);
        let on_full = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams::default(),
        );
        if let Some(on_full) = on_full {
            assert!(on_full.cost >= with_term.cost);
        }
        // The fixed crossing penalty raises the cost.
        let with_penalty = select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams {
                d2d_penalty: 16.0,
                d2d_congestion_cost: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with_penalty.cost > base.cost);
    }

    #[test]
    fn whole_selection_respects_area_headroom() {
        // Tiny top-die utilization: nothing may move there.
        let d = DesignBuilder::new("t")
            .technology(TechnologySpec::new("TA").lib_cell(LibCellSpec::std_cell("W40", 40, 12)))
            .technology(TechnologySpec::new("TB").lib_cell(LibCellSpec::std_cell("W40", 40, 12)))
            .die(DieSpec::new("bottom", "TA", (0, 0, 400, 12), 12, 1, 1.0))
            .die(DieSpec::new("top", "TB", (0, 0, 400, 12), 12, 1, 0.01))
            .cell("u0", "W40")
            .build()
            .unwrap();
        let (layout, grid) = setup(&d);
        let u = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM))[0];
        let v = grid.bins_in_segment(first_seg(&layout, DieId::TOP))[0];
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 1]);
        st.insert_cell(CellId::new(0), u, 0);
        assert!(select_moves(
            &st,
            u,
            v,
            EdgeKind::DieToDie,
            10,
            &SelectionParams::default(),
        )
        .is_none());
    }

    #[test]
    fn memo_replays_hits_and_scopes_by_epoch_and_generation() {
        let u = crate::grid::BinId(3);
        let v = crate::grid::BinId(4);
        let mut memo = SelectionMemo::new();
        memo.begin_source(7);
        assert_eq!(memo.lookup(u, v, 40), None, "fresh scope starts empty");
        memo.store(u, v, 40, Some((1.5, 40)));
        memo.store(u, v, 60, None); // negative result cached too
        assert_eq!(memo.lookup(u, v, 40), Some(Some((1.5, 40))));
        assert_eq!(memo.lookup(u, v, 60), Some(None));
        assert_eq!(memo.lookup(v, u, 40), None, "key includes direction");
        // A new source scope invalidates everything, even at the same
        // state generation.
        memo.begin_source(7);
        assert_eq!(memo.lookup(u, v, 40), None);
        // Entries written against one generation never validate after a
        // mutation bumps it.
        memo.store(u, v, 40, Some((1.5, 40)));
        memo.begin_source(8);
        assert_eq!(memo.lookup(u, v, 40), None);
    }

    #[test]
    fn warm_scope_replays_across_scopes_until_invalidated() {
        let u = crate::grid::BinId(3);
        let v = crate::grid::BinId(4);
        let mut memo = SelectionMemo::new();
        memo.warm_scope(7);
        memo.store(u, v, 40, Some((1.5, 40)));
        // A warm scope at a different generation hides the entry (the
        // per-slot generation stamp fails), but does not erase it…
        memo.warm_scope(8);
        assert_eq!(memo.lookup(u, v, 40), None);
        // …so returning to the original generation replays it — this is
        // the cross-request warmth an identical-replay ECO relies on.
        memo.warm_scope(7);
        assert_eq!(memo.lookup(u, v, 40), Some(Some((1.5, 40))));
        // Storing the same key under another generation evicts the slot
        // (direct-mapped, generation is not part of the index) …
        memo.warm_scope(8);
        memo.store(u, v, 40, Some((2.5, 40)));
        memo.warm_scope(7);
        assert_eq!(memo.lookup(u, v, 40), None);
        // … and invalidate() kills every generation's entries at once.
        memo.warm_scope(8);
        assert_eq!(memo.lookup(u, v, 40), Some(Some((2.5, 40))));
        memo.invalidate();
        assert_eq!(memo.lookup(u, v, 40), None);
    }

    #[test]
    fn selection_is_deterministic() {
        let d = fixture();
        let (layout, grid) = setup(&d);
        let bins = grid.bins_in_segment(first_seg(&layout, DieId::BOTTOM));
        let mut st = FlowState::new(&d, &layout, &grid, vec![Point::ORIGIN; 3]);
        st.insert_cell(CellId::new(0), bins[0], 0);
        st.insert_cell(CellId::new(1), bins[0], 0);
        st.insert_cell(CellId::new(2), bins[0], 0);
        let p = SelectionParams::default();
        let a = select_moves(&st, bins[0], bins[1], EdgeKind::Horizontal, 40, &p);
        let b = select_moves(&st, bins[0], bins[1], EdgeKind::Horizontal, 40, &p);
        assert_eq!(a, b);
    }
}
