//! The 3D-Flow legalizer driver (paper Algorithm 2) and the flow-pass /
//! row-legalization building blocks shared with the flow-based baselines.

use crate::assign;
use crate::config::Flow3dConfig;
use crate::cycle;
use crate::error::LegalizeError;
use crate::grid::{BinGrid, BinId};
use crate::placerow::{place_row_with, RowAlgo, RowItem};
use crate::search::{
    find_path_limited, AugmentingPath, SearchCounters, SearchParams, SearchPool, SearchScratch,
    SearchShared, TabuList,
};
use crate::selection::{MemoWrite, SelectionMemo, SelectionParams};
use crate::state::{FlowState, GeomSource};
use crate::traits::{LegalizeOutcome, LegalizeStats, Legalizer};
use flow3d_db::{CellId, Design, DieId, LegalPlacement, Placement3d, RowLayout, SoaView};
use flow3d_geom::Point;
use flow3d_obs::{hist_keys, keys, Heatmap, Obs, ObsExt, Profile};
use std::collections::{BTreeMap, BTreeSet};

/// Per-die nominal bin widths: `factor · w̄_c(die)`, snapped up to the
/// die's site grid (§III-F).
pub fn bin_widths(design: &Design, factor: f64) -> Vec<i64> {
    (0..design.num_dies())
        .map(|d| {
            let die = DieId::new(d);
            let site = design.die(die).site_width;
            let nominal = (factor * design.avg_cell_width(die)).round() as i64;
            flow3d_geom::snap_up(nominal.max(site), 0, site)
        })
        .collect()
}

/// Drains every overflowed bin by successive augmenting paths (Algorithm 2
/// lines 4–10), running the per-source searches in batched rounds:
/// every round searches all current sources against a frozen snapshot of
/// the state and then applies the candidate paths in a fixed
/// `(cost, source bin)` order. The batch is what
/// [`flow_pass_threaded`] parallelizes; with one thread the exact same
/// rounds run inline.
///
/// # Errors
///
/// [`LegalizeError::NoAugmentingPath`] when a source cannot be drained
/// even by the unbounded search.
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub fn flow_pass(
    state: &mut FlowState<'_>,
    params: &SearchParams,
    stats: &mut LegalizeStats,
) -> Result<(), LegalizeError> {
    flow_pass_threaded(state, params, 1, stats, None)
}

/// [`flow_pass`] with an observability hook: per-pass search counters
/// ([`keys::NODES_EXPANDED`], [`keys::BRANCHES_PRUNED`],
/// [`keys::AUGMENTING_PATHS`], [`keys::SEARCH_RETRIES`],
/// [`keys::CELLS_MOVED`], …) are bumped into `obs` when it is `Some`.
///
/// # Errors
///
/// Same as [`flow_pass`].
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub fn flow_pass_observed(
    state: &mut FlowState<'_>,
    params: &SearchParams,
    stats: &mut LegalizeStats,
    obs: Obs<'_>,
) -> Result<(), LegalizeError> {
    flow_pass_threaded(state, params, 1, stats, obs)
}

/// The result of one source's bounded-search retry ladder: the candidate
/// path (if any), the search counters it burned, how many searches ran,
/// and the memo writes it buffered (selections missed in both memo
/// layers) for the coordinator to merge in source order.
type SourceSearch = (
    Option<AugmentingPath>,
    SearchCounters,
    usize,
    Vec<MemoWrite>,
);

/// Runs the per-source retry ladder — bounded search with halved flow
/// limits, then one retry with the bound disabled — against an immutable
/// state. Read-only: this is the unit of work a flow-pass batch fans out
/// across the worker pool.
fn search_source(
    state: &FlowState<'_>,
    bin: BinId,
    sup: i64,
    params: &SearchParams,
    shared: &SearchShared<'_>,
    scratch: &mut SearchScratch,
) -> SourceSearch {
    let mut counters = SearchCounters::default();
    let mut searches: usize = 0;
    // One ladder-local memo scope per source: the searches of this
    // ladder run against the same frozen state, so their selections are
    // mutually reusable. Cross-source (and cross-round, cross-request)
    // reuse happens through the shared round-start snapshot in `shared`,
    // which is frozen for the whole round — so hits and misses stay a
    // pure function of (state, shared snapshot, source) and the counters
    // are thread-count invariant.
    scratch.begin_source();
    for relaxed in [false, true] {
        if relaxed && (params.alpha.is_infinite() || params.dijkstra) {
            break;
        }
        let attempt_params = if relaxed {
            SearchParams {
                alpha: f64::INFINITY,
                ..*params
            }
        } else {
            *params
        };
        // A single path can only drain what its bins can absorb or
        // forward; on failure retry with halved flow, then once more with
        // the bound disabled, before declaring the source stuck.
        let mut limit = sup;
        while limit > 0 {
            searches += 1;
            if let Some(p) = find_path_limited(
                state,
                bin,
                limit,
                &attempt_params,
                shared,
                scratch,
                &mut counters,
            ) {
                return (Some(p), counters, searches, scratch.take_memo_writes());
            }
            limit /= 2;
        }
    }
    (None, counters, searches, scratch.take_memo_writes())
}

/// [`flow_pass_observed`] on a worker pool of `threads` threads.
///
/// # Determinism
///
/// The result is **bit-identical for every thread count** by
/// construction, not by luck:
///
/// 1. Each round snapshots nothing and copies nothing — the batch of
///    per-source searches runs against the *immutably borrowed* state,
///    so every candidate path is a pure function of `(state, source)`
///    and independent of which worker computed it.
/// 2. The candidates are applied serially in a fixed
///    `(cost, source bin)` order ([`f64::total_cmp`] — a total order).
///    Later applications may act on a path the earlier ones made stale;
///    [`crate::augment::realize`] re-selects against the live state and
///    only ever under-fills, so the post-round state is a pure function
///    of the candidate list and the order.
/// 3. Sources left overfull re-enter the next round; fallback relocation
///    runs only in a round where *no* source found a path (the state
///    then equals the snapshot, so the failure is genuine), in source
///    order.
///
/// `tests/differential.rs` enforces this contract over a case × seed ×
/// thread-count matrix.
///
/// # Errors
///
/// Same as [`flow_pass`].
pub fn flow_pass_threaded(
    state: &mut FlowState<'_>,
    params: &SearchParams,
    threads: usize,
    stats: &mut LegalizeStats,
    obs: Obs<'_>,
) -> Result<(), LegalizeError> {
    let mut pool = SearchPool::new();
    flow_pass_threaded_pooled(state, params, threads, stats, obs, &mut pool)
}

/// [`flow_pass_threaded`] with a caller-owned [`SearchPool`].
///
/// The pool (node arenas, heaps, and the shared content-addressed
/// selection memo) is grown to the worker count and persists across
/// calls, so a resident engine amortizes its allocations — and its memo
/// warmth — over many requests instead of one pass. Which scratch slot
/// serves which source is scheduling-dependent; pooled scratch never
/// influences results (a memo hit replays exactly what the selection
/// would recompute, and entries are validated by content signature), so
/// the determinism contract of [`flow_pass_threaded`] is unchanged. See
/// [`crate::EcoEngine`] for the resident lifecycle.
///
/// # Errors
///
/// Same as [`flow_pass`].
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub fn flow_pass_threaded_pooled(
    state: &mut FlowState<'_>,
    params: &SearchParams,
    threads: usize,
    stats: &mut LegalizeStats,
    mut obs: Obs<'_>,
    pool: &mut SearchPool,
) -> Result<(), LegalizeError> {
    let aug_before = stats.augmentations;
    let moved_before = stats.cells_moved;
    let fallback_before = stats.fallback_moves;
    let threads = threads.max(1);
    let num_bins = state.grid.num_bins();
    let observing = obs.is_some();
    // Workers share the coordinator's trace epoch so their spans land on
    // the same timeline; `None` when the coordinator is not tracing.
    let trace_epoch = obs.as_deref().and_then(Profile::tracing_epoch);
    let mut moves_per_bin: Vec<u64> = if observing {
        vec![0; num_bins]
    } else {
        Vec::new()
    };
    let pass = if let Some(p) = obs.as_deref_mut() {
        let pass = p.counters().get(keys::FLOW_PASSES);
        p.bump(keys::FLOW_PASSES, 1);
        // Pre-pass congestion snapshot: where the flow problem starts.
        capture_bin_heatmaps(state, p, pass, "supply", &|b| state.sup(b) as f64);
        capture_bin_heatmaps(state, p, pass, "demand", &|b| state.dem(b) as f64);
        capture_bin_heatmaps(state, p, pass, "overflow", &|b| state.sup(b).max(0) as f64);
        pass
    } else {
        0
    };
    let mut retries: usize = 0;
    let mut counters = SearchCounters::default();
    // Apply budget: each applied path normally drains its source for
    // good, so this bound is generous. On pathological geometry (e.g. a
    // macro next to heterogeneous row heights) applications can ping-pong
    // supply between near-full bins without the total converging; the
    // tabu window below breaks most such cycles, and once the budget is
    // spent anyway, the small residue is relocated directly instead of
    // burning more rounds.
    let mut guard = 64 * state.overflowed_bins().len() + 4 * num_bins + 64;
    // Ping-pong bookkeeping, all coordinator-side and derived from the
    // serial apply order (thread-count invariant). `last_applied` maps a
    // directed bin edge to the round that last pushed flow across it;
    // when a round applies the reverse of an edge applied within the
    // detection window, both directions go tabu for `TABU_ROUNDS`.
    const PING_PONG_WINDOW: u64 = 1;
    const TABU_ROUNDS: u64 = 8;
    let mut round: u64 = 0;
    let mut last_applied: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut tabu_until: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut tabu_edges: u64 = 0;
    // Worker search scratch (node arena, heap, ladder-local memo) and the
    // shared selection memo persist across rounds so their allocations —
    // and the memo's warmth — amortize over the whole pass, and across
    // whole passes when the caller owns the pool.
    loop {
        // Round sources: every overflowed bin, most loaded first (bin id
        // breaks ties) — a deterministic function of the state alone.
        let mut sources: Vec<(i64, BinId)> = state
            .overflowed_bins()
            .into_iter()
            .map(|b| (state.sup(b), b))
            .collect();
        if sources.is_empty() {
            break;
        }
        sources.sort_by_key(|&(sup, b)| (std::cmp::Reverse(sup), b));
        if params.use_memo {
            let want = if params.memo_slots > 0 {
                params.memo_slots
            } else {
                SelectionMemo::auto_slots(sources.len())
            };
            pool.memo.ensure_slots(want);
        }
        // Freeze this round's tabu list (expired entries drop out first).
        tabu_until.retain(|_, until| *until > round);
        let tabu = TabuList::from_edges(
            tabu_until
                .keys()
                .map(|&(u, v)| (BinId(u), BinId(v)))
                .collect(),
        );
        let shared = SearchShared {
            memo: params.use_memo.then_some(&pool.memo),
            tabu: (!tabu.is_empty()).then_some(&tabu),
        };

        // Batch: one read-only search per source against the frozen
        // state, fanned out across the pool. Worker-local scratch reuses
        // its epoch-visited marks across the items one worker claims; the
        // shared memo snapshot is identical for every worker, so which
        // slot serves which source cannot change any outcome.
        obs.begin("search_batch");
        let frozen: &FlowState<'_> = state;
        let (candidates, worker_profiles) = flow3d_par::par_map_with_pool(
            threads,
            sources.len(),
            &mut pool.scratches,
            || SearchScratch::new(num_bins),
            || Profile::new_worker(trace_epoch),
            |scratch, wprof, i| {
                let (sup, bin) = sources[i];
                if observing {
                    wprof.begin("source_search");
                }
                let result = search_source(frozen, bin, sup, params, &shared, scratch);
                if observing {
                    wprof.end("source_search");
                }
                result
            },
        );
        if observing {
            if let Some(p) = obs.as_deref_mut() {
                // Merge while "search_batch" is open so worker spans nest
                // under it; the worker's merge-order index becomes its
                // trace track, so the timeline layout is deterministic.
                for (w, wprof) in worker_profiles.iter().enumerate() {
                    p.merge_nested_worker(wprof, w as u32 + 1);
                }
                // Histograms are recorded coordinator-side in source
                // (index) order — never from racing workers — so their
                // contents are thread-count invariant.
                for (_, c, _, _) in &candidates {
                    p.record(hist_keys::SEARCH_NODES, c.expanded as f64);
                    if params.use_memo {
                        p.record(
                            hist_keys::SELECTION_MEMO_HITS_PER_SOURCE,
                            c.memo_hits as f64,
                        );
                    }
                }
            }
        }
        obs.end("search_batch");
        for (_, c, searches, writes) in &candidates {
            counters.expanded += c.expanded;
            counters.created += c.created;
            counters.pruned += c.pruned;
            counters.pruned_stale += c.pruned_stale;
            counters.memo_hits += c.memo_hits;
            counters.memo_misses += c.memo_misses;
            retries += searches.saturating_sub(1);
            // Merge buffered memo writes in source order: a deterministic
            // store sequence gives deterministic eviction, so the next
            // round's snapshot is thread-count invariant too.
            if params.use_memo {
                pool.memo.absorb(writes);
            }
        }

        // Deterministic reduction: cheapest candidate first, the source
        // bin id breaking ties.
        let mut order: Vec<(usize, &AugmentingPath)> = candidates
            .iter()
            .enumerate()
            .filter_map(|(i, (path, _, _, _))| path.as_ref().map(|p| (i, p)))
            .collect();
        order.sort_by(|&(a, pa), &(b, pb)| {
            pa.cost
                .total_cmp(&pb.cost)
                .then(sources[a].1.cmp(&sources[b].1))
        });

        // Apply serially in that fixed order. Paths made stale by an
        // earlier application still realize safely (selections are
        // recomputed against the live state and only under-fill); any
        // supply they leave behind re-enters the next round.
        obs.begin("apply");
        let mut applied = false;
        let mut exhausted = false;
        for &(i, path) in &order {
            let bin = sources[i].1;
            let sup = state.sup(bin);
            if sup <= 0 {
                continue; // an earlier application already drained it
            }
            if guard == 0 {
                exhausted = true;
                break;
            }
            guard -= 1;
            stats.cells_moved += crate::augment::realize(state, path, &params.selection);
            stats.augmentations += 1;
            // Ping-pong detection: applying the reverse of an edge that
            // was applied within the last `PING_PONG_WINDOW` rounds means
            // the flow is shuttling cells back where it just pushed them
            // from (the m1h macro + heterogeneous-row pathology). Tabu
            // both directions for a bounded window so the search must
            // route around the oscillation instead of burning the guard.
            for w in path.steps.windows(2) {
                let e = (w[0].bin.0, w[1].bin.0);
                let rev = (e.1, e.0);
                if last_applied
                    .get(&rev)
                    .is_some_and(|&r| round.saturating_sub(r) <= PING_PONG_WINDOW)
                {
                    for edge in [e, rev] {
                        if tabu_until.insert(edge, round + 1 + TABU_ROUNDS).is_none() {
                            tabu_edges += 1;
                        }
                    }
                }
                last_applied.insert(e, round);
            }
            if let Some(p) = obs.as_deref_mut() {
                p.record(hist_keys::SEARCH_DEPTH, path.depth() as f64);
                for step in &path.steps {
                    moves_per_bin[step.bin.index()] += 1;
                }
            }
            applied = true;
        }
        obs.end("apply");
        if exhausted {
            // The apply budget ran out while paths were still being found:
            // the flow is shuffling supply between near-full bins faster
            // than it drains. Relocate whatever overflow remains directly
            // (most loaded bin first, bin id breaking ties — the same
            // deterministic order the rounds use) and finish the pass.
            let allow_cross_die = grid_has_d2d(state);
            let mut leftovers: Vec<(i64, BinId)> = state
                .overflowed_bins()
                .into_iter()
                .map(|b| (state.sup(b), b))
                .collect();
            leftovers.sort_by_key(|&(sup, b)| (std::cmp::Reverse(sup), b));
            for &(_, bin) in &leftovers {
                if state.sup(bin) > 0 {
                    teleport_fallback(state, bin, allow_cross_die, stats)?;
                }
            }
            break;
        }

        if !applied {
            // No source found a path, and nothing was applied — the state
            // still equals the snapshot the searches ran against, so the
            // failure is genuine: these sources sit in regions the grid
            // cannot drain (e.g. a macro-enclosed pocket). Fall back to
            // relocating cells directly to the nearest bin with room.
            let allow_cross_die = grid_has_d2d(state);
            for &(_, bin) in &sources {
                if state.sup(bin) > 0 {
                    teleport_fallback(state, bin, allow_cross_die, stats)?;
                }
            }
        }
        round += 1;
    }
    stats.nodes_expanded += counters.expanded;
    if let Some(p) = obs.as_deref_mut() {
        // Post-pass movement picture: how many applied path steps
        // touched each bin.
        capture_bin_heatmaps(state, p, pass, "moves", &|b| {
            moves_per_bin[b.index()] as f64
        });
    }
    obs.bump(keys::NODES_EXPANDED, counters.expanded as u64);
    obs.bump(keys::NODES_CREATED, counters.created as u64);
    obs.bump(keys::BRANCHES_PRUNED, counters.pruned as u64);
    obs.bump(keys::BRANCHES_PRUNED_STALE, counters.pruned_stale as u64);
    if params.use_memo {
        // Bumped only when the memo is on: downstream hit-rate reporting
        // reads the *presence* of these counters as "memo enabled", so a
        // cold-but-enabled run (0 hits, some misses) stays distinguishable
        // from a disabled one (no counters at all).
        obs.bump(keys::SELECTION_MEMO_HITS, counters.memo_hits as u64);
        obs.bump(keys::SELECTION_MEMO_MISSES, counters.memo_misses as u64);
    }
    obs.bump(keys::PING_PONG_TABUS, tabu_edges);
    obs.bump(
        keys::AUGMENTING_PATHS,
        (stats.augmentations - aug_before) as u64,
    );
    obs.bump(keys::SEARCH_RETRIES, retries as u64);
    obs.bump(keys::CELLS_MOVED, (stats.cells_moved - moved_before) as u64);
    obs.bump(
        keys::FALLBACK_MOVES,
        (stats.fallback_moves - fallback_before) as u64,
    );
    Ok(())
}

/// Captures one heatmap per die of `value` over the bin grid, named
/// `flow_pass{pass}/die{d}/{kind}`.
///
/// Grid rows map to heatmap rows bottom-up (ascending row y), bins
/// within a row map to columns left-to-right (ascending span start);
/// rows shorter than the widest row (macro cut-outs) leave `NaN` cells.
/// The capture order and cell values are pure functions of the state, so
/// heatmaps are identical for every thread count.
fn capture_bin_heatmaps(
    state: &FlowState<'_>,
    profile: &mut Profile,
    pass: u64,
    kind: &str,
    value: &dyn Fn(BinId) -> f64,
) {
    let mut dies: BTreeMap<usize, BTreeMap<i64, Vec<(i64, BinId)>>> = BTreeMap::new();
    for i in 0..state.grid.num_bins() {
        let id = BinId::new(i);
        let b = state.grid.bin(id);
        dies.entry(b.die.index())
            .or_default()
            .entry(b.y)
            .or_default()
            .push((b.span.lo, id));
    }
    for (die, rows) in &mut dies {
        let cols = rows.values().map(Vec::len).max().unwrap_or(0);
        let name = format!("flow_pass{pass}/die{die}/{kind}");
        let mut map = Heatmap::new(&name, rows.len(), cols);
        for (r, bins) in rows.values_mut().enumerate() {
            bins.sort_unstable();
            for (c, &(_, bin)) in bins.iter().enumerate() {
                map.set(r, c, value(bin));
            }
        }
        profile.add_heatmap(map);
    }
}

/// `true` if the grid was built with die-to-die edges (determines whether
/// the fallback may change dies).
fn grid_has_d2d(state: &FlowState<'_>) -> bool {
    (0..state.grid.num_bins()).any(|i| {
        state
            .grid
            .neighbors(BinId::new(i))
            .iter()
            .any(|&(_, k)| k == crate::grid::EdgeKind::DieToDie)
    })
}

/// Last-resort relocation for a source no augmenting path can drain:
/// moves whole cells out of `bin` to the demand bin nearest their anchor
/// (same die unless `allow_cross_die`), until the overflow is gone or no
/// cell can move.
///
/// # Errors
///
/// [`LegalizeError::NoAugmentingPath`] when not even a direct relocation
/// exists (the stack is genuinely out of room for these cells).
pub fn teleport_fallback(
    state: &mut FlowState<'_>,
    bin: BinId,
    allow_cross_die: bool,
    stats: &mut LegalizeStats,
) -> Result<bool, LegalizeError> {
    let mut moved_any = false;
    while state.sup(bin) > 0 {
        // Widest movable fragment first: drains the overflow fastest and
        // keeps small cells (cheap to place later) in the bin.
        let mut cells: Vec<(i64, CellId)> = state
            .frags_in(bin)
            .iter()
            .map(|f| (f.width, f.cell))
            .collect();
        cells.sort_by_key(|&(w, c)| (std::cmp::Reverse(w), c));

        let src_die = state.grid.bin(bin).die;
        let mut done = false;
        'cells: for (_, cell) in cells {
            let mut best: Option<(BinId, i64)> = None;
            for i in 0..state.grid.num_bins() {
                let cand = BinId::new(i);
                let b = state.grid.bin(cand);
                if !allow_cross_die && b.die != src_die {
                    continue;
                }
                let w_v = state.cell_width(cell, b.die);
                if state.dem(cand) < w_v {
                    continue;
                }
                if b.die != src_die {
                    let need = w_v * state.cell_height(b.die);
                    if need > state.area_headroom(b.die) {
                        continue;
                    }
                }
                let d = state.disp_to(cell, b);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((cand, d));
                }
            }
            if let Some((target, _)) = best {
                state.remove_cell(cell);
                state.insert_cell_whole(cell, target);
                stats.fallback_moves += 1;
                moved_any = true;
                done = true;
                break 'cells;
            }
        }
        if !done {
            return Err(LegalizeError::NoAugmentingPath {
                die: src_die,
                supply: state.sup(bin),
            });
        }
    }
    Ok(moved_any)
}

/// Legalizes every row segment with Abacus `PlaceRow` (§III-D) and emits
/// the final placement. Every cell's desired x is its anchor clamped into
/// the bin range the flow phase assigned it to.
///
/// # Errors
///
/// [`LegalizeError::SegmentOverflow`] if a segment holds more cell width
/// than it can fit — impossible after a successful [`flow_pass`].
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub fn placerow_all(state: &FlowState<'_>) -> Result<LegalPlacement, LegalizeError> {
    placerow_all_with(state, RowAlgo::AbacusQuadratic)
}

/// [`placerow_all`] with an explicit row algorithm (§III-D).
///
/// # Errors
///
/// Same as [`placerow_all`].
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub fn placerow_all_with(
    state: &FlowState<'_>,
    algo: RowAlgo,
) -> Result<LegalPlacement, LegalizeError> {
    placerow_all_observed(state, algo, None)
}

/// [`placerow_all_with`] with an observability hook:
/// [`keys::PLACEROW_CALLS`] counts one per non-empty row segment
/// legalized when `obs` is `Some`.
///
/// # Errors
///
/// Same as [`placerow_all`].
pub fn placerow_all_observed(
    state: &FlowState<'_>,
    algo: RowAlgo,
    obs: Obs<'_>,
) -> Result<LegalPlacement, LegalizeError> {
    placerow_all_threaded(state, algo, 1, obs)
}

/// [`placerow_all_observed`] on a worker pool of `threads` threads: row
/// segments fan out across the pool, one `PlaceRow` per segment.
///
/// Segments are independent once the flow phase fixed the cell→bin
/// assignment: a cell's fragments always sit inside a single segment
/// (enforced by `FlowState::check_invariants`), so the straddling-cell
/// dedup is segment-local and no two workers ever touch the same cell.
/// Results merge in segment order, making the output — placements *and*
/// the first reported error — identical for every thread count.
///
/// # Errors
///
/// Same as [`placerow_all`].
pub fn placerow_all_threaded(
    state: &FlowState<'_>,
    algo: RowAlgo,
    threads: usize,
    mut obs: Obs<'_>,
) -> Result<LegalPlacement, LegalizeError> {
    let design = state.design;
    let segs = state.layout.segments();
    let observing = obs.is_some();
    let trace_epoch = obs.as_deref().and_then(Profile::tracing_epoch);

    type SegmentPlacement = Result<Vec<(usize, i64)>, LegalizeError>;
    let (per_segment, worker_profiles) = flow3d_par::par_map_with(
        threads.max(1),
        segs.len(),
        || Profile::new_worker(trace_epoch),
        |wprof, i| -> SegmentPlacement {
            let seg = &segs[i];
            let die = design.die(seg.die);
            let mut items: Vec<RowItem> = Vec::new();
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            for &bid in state.grid.bins_in_segment(seg.id) {
                for frag in state.frags_in(bid) {
                    if !seen.insert(frag.cell.index()) {
                        continue; // other fragment of a straddling cell
                    }
                    let w = state.cell_width(frag.cell, seg.die);
                    // The flow phase decides the *segment*; within it,
                    // trust PlaceRow's quadratic optimum from the raw
                    // anchor (the total width fits by construction).
                    let anchor = state.anchor(frag.cell);
                    let desired = anchor.x.clamp(seg.span.lo, seg.span.hi - w);
                    items.push(RowItem {
                        key: frag.cell.index(),
                        desired,
                        width: w,
                        weight: w as f64,
                    });
                }
            }
            if items.is_empty() {
                return Ok(Vec::new());
            }
            if observing {
                wprof.begin("segment");
            }
            let placed = place_row_with(algo, &items, seg.span, die.outline.xlo, die.site_width)
                .map_err(|e| LegalizeError::SegmentOverflow {
                    die: seg.die,
                    excess: e.total_width - e.segment_width,
                });
            if observing {
                wprof.end("segment");
            }
            placed
        },
    );
    if observing {
        if let Some(p) = obs.as_deref_mut() {
            for (w, wprof) in worker_profiles.iter().enumerate() {
                p.merge_nested_worker(wprof, w as u32 + 1);
            }
        }
    }

    let mut placement = LegalPlacement::new(design.num_cells());
    for (i, result) in per_segment.into_iter().enumerate() {
        let seg = &segs[i];
        let placed = result?; // first failing segment in segment order
        if placed.is_empty() {
            continue;
        }
        obs.bump(keys::PLACEROW_CALLS, 1);
        // Recorded here, in segment order, so the histogram is
        // thread-count invariant.
        obs.record(hist_keys::SEGMENT_CELLS, placed.len() as f64);
        for (key, x) in placed {
            placement.place(CellId::new(key), Point::new(x, seg.y), seg.die);
        }
    }
    Ok(placement)
}

/// The 3D-Flow legalizer (paper Algorithm 2).
///
/// See the [crate-level documentation](crate) for the pipeline and
/// [`Flow3dConfig`] for the tunables.
#[derive(Debug, Clone, Default)]
pub struct Flow3dLegalizer {
    config: Flow3dConfig,
}

impl Flow3dLegalizer {
    /// Creates a legalizer with the given configuration.
    pub fn new(config: Flow3dConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &Flow3dConfig {
        &self.config
    }
}

impl Legalizer for Flow3dLegalizer {
    fn name(&self) -> &str {
        if self.config.allow_d2d {
            "3d-flow"
        } else {
            "3d-flow-no-d2d"
        }
    }

    fn legalize(
        &self,
        design: &Design,
        global: &Placement3d,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        self.legalize_observed(design, global, None)
    }

    fn legalize_observed(
        &self,
        design: &Design,
        global: &Placement3d,
        mut obs: Obs<'_>,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        obs.begin("legalize");
        let result = self.run(design, global, obs.reborrow());
        obs.end("legalize");
        result
    }
}

impl Flow3dLegalizer {
    /// The pipeline body, wrapped in the `"legalize"` phase by
    /// [`legalize_observed`](Legalizer::legalize_observed). Fallible steps
    /// are bound *between* `obs.begin`/`obs.end` and only `?`-propagated
    /// after the scope closes, so an error cannot leave a phase open.
    fn run(
        &self,
        design: &Design,
        global: &Placement3d,
        mut obs: Obs<'_>,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        let cfg = &self.config;
        let threads = flow3d_par::resolve_threads(cfg.threads);

        // Build the flat SoA geometry columns once, up front; every later
        // phase borrows them. Skipped (falling back to the id-map path)
        // when disabled or when the placement is malformed — the count
        // mismatch is then reported as an error by `partition_dies_with`.
        obs.begin("soa_build");
        let soa = (cfg.soa_view && global.num_cells() == design.num_cells())
            .then(|| SoaView::build(design, global));
        obs.end("soa_build");
        let geom = match soa.as_ref() {
            Some(view) => GeomSource::Soa(view),
            None => GeomSource::IdMap,
        };

        obs.begin("partition");
        let layout = RowLayout::build(design);
        let dies = assign::partition_dies_with(design, global, &geom);
        obs.end("partition");
        let mut dies = dies?;

        obs.begin("grid_build");
        let widths = bin_widths(design, cfg.bin_width_factor);
        let grid = BinGrid::build(design, &layout, &widths, cfg.allow_d2d);
        obs.end("grid_build");

        obs.begin("assign");
        let state =
            assign::build_state_with_geom(design, &layout, &grid, global, &mut dies, geom.clone());
        obs.end("assign");
        let mut state = state?;

        let slack = design
            .dies()
            .iter()
            .map(|d| d.row_height)
            .min()
            .unwrap_or(1) as f64;
        let d2d_penalty = design
            .dies()
            .iter()
            .map(|d| d.row_height)
            .max()
            .unwrap_or(1) as f64;
        let params = SearchParams {
            alpha: cfg.alpha,
            slack,
            dijkstra: false,
            use_memo: cfg.selection_memo,
            memo_slots: cfg.memo_slots,
            selection: SelectionParams {
                clamp_negative: false,
                d2d_congestion_cost: cfg.d2d_congestion_cost,
                d2d_penalty,
            },
        };

        let mut stats = LegalizeStats::default();
        obs.begin("flow_pass");
        let flowed = flow_pass_threaded(&mut state, &params, threads, &mut stats, obs.reborrow());
        obs.end("flow_pass");
        flowed?;

        obs.begin("placerow");
        let placed = placerow_all_threaded(&state, cfg.row_algo, threads, obs.reborrow());
        obs.end("placerow");
        let mut placement = placed?;

        if cfg.post_opt {
            obs.begin("post_opt");
            let post = cycle::post_optimize_with_geom(
                design,
                &layout,
                global,
                cfg,
                &params,
                &mut placement,
                &mut stats,
                &geom,
                obs.reborrow(),
            );
            obs.end("post_opt");
            post?;
        }

        stats.cross_die_moves = placement.cross_die_moves(global, design.num_dies());

        if let Some(p) = obs {
            // Final displacement distribution (paper Table III reports
            // only avg/max; the histogram shows the shape behind them).
            let anchors = assign::anchors(design, global);
            for (i, &anchor) in anchors.iter().enumerate() {
                let d = placement.pos(CellId::new(i)).manhattan(anchor);
                p.record(hist_keys::DISPLACEMENT, d as f64);
            }
        }
        Ok(LegalizeOutcome { placement, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_db::{DesignBuilder, DieSpec, LibCellSpec, TechnologySpec};
    use flow3d_geom::FPoint;
    use flow3d_metrics::{check_legal, displacement_stats};

    fn dense_design(n: usize) -> (Design, Placement3d) {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("TA").lib_cell(LibCellSpec::std_cell("W40", 40, 12)))
            .technology(TechnologySpec::new("TB").lib_cell(LibCellSpec::std_cell("W40", 30, 16)))
            .die(DieSpec::new("bottom", "TA", (0, 0, 800, 48), 12, 1, 1.0))
            .die(DieSpec::new("top", "TB", (0, 0, 800, 48), 16, 1, 1.0));
        for i in 0..n {
            b = b.cell(format!("u{i}"), "W40");
        }
        let design = b.build().unwrap();
        // Clump everything near the center-left of the bottom die.
        let mut gp = Placement3d::new(n);
        for i in 0..n {
            let c = CellId::new(i);
            gp.set_pos(c, FPoint::new(100.0 + (i % 7) as f64 * 13.0, 6.0));
            gp.set_die_affinity(c, if i % 4 == 0 { 0.6 } else { 0.2 });
        }
        (design, gp)
    }

    #[test]
    fn bin_widths_snap_to_sites() {
        let (d, _) = dense_design(3);
        let w = bin_widths(&d, 10.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0], 400); // 10 * 40, site 1
        assert_eq!(w[1], 300); // 10 * 30
    }

    #[test]
    fn legalizes_dense_clump_to_legal_placement() {
        let (d, gp) = dense_design(30);
        let outcome = Flow3dLegalizer::default().legalize(&d, &gp).unwrap();
        let report = check_legal(&d, &outcome.placement);
        assert!(report.is_legal(), "{report}");
        assert!(outcome.stats.augmentations > 0);
    }

    #[test]
    fn displacement_stays_reasonable() {
        let (d, gp) = dense_design(30);
        let outcome = Flow3dLegalizer::default().legalize(&d, &gp).unwrap();
        let stats = displacement_stats(&d, &gp, &outcome.placement);
        // The die is 800 wide with 48 of height; nothing should fly to
        // the far corner.
        assert!(stats.max_dbu < 800.0, "max displacement {}", stats.max_dbu);
        assert!(stats.avg_dbu > 0.0);
    }

    #[test]
    fn no_d2d_variant_keeps_die_assignment() {
        let (d, gp) = dense_design(20);
        let outcome = Flow3dLegalizer::new(Flow3dConfig::without_d2d())
            .legalize(&d, &gp)
            .unwrap();
        assert!(check_legal(&d, &outcome.placement).is_legal());
        assert_eq!(outcome.stats.cross_die_moves, 0);
    }

    #[test]
    fn d2d_enables_overflow_escape() {
        // Bottom die too small for all cells; top die has room. Without
        // D2D this fails at partitioning only if affinities force bottom —
        // partition_dies rebalances, so force with util 1.0 and identical
        // affinity: it still rebalances. Instead verify D2D moves occur
        // under pressure.
        let (d, gp) = dense_design(36); // 36*40 = 1440 vs 800*4 rows... fits
        let outcome = Flow3dLegalizer::default().legalize(&d, &gp).unwrap();
        assert!(check_legal(&d, &outcome.placement).is_legal());
    }

    #[test]
    fn deterministic_output() {
        let (d, gp) = dense_design(25);
        let a = Flow3dLegalizer::default().legalize(&d, &gp).unwrap();
        let b = Flow3dLegalizer::default().legalize(&d, &gp).unwrap();
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let (d, gp) = dense_design(30);
        let serial = Flow3dLegalizer::new(Flow3dConfig::with_threads(1))
            .legalize(&d, &gp)
            .unwrap();
        for threads in [2, 3, 8] {
            let parallel = Flow3dLegalizer::new(Flow3dConfig::with_threads(threads))
                .legalize(&d, &gp)
                .unwrap();
            assert_eq!(parallel.placement, serial.placement, "threads={threads}");
            assert_eq!(parallel.stats, serial.stats, "threads={threads}");
        }
    }

    #[test]
    fn threaded_profile_structure_matches_serial() {
        // Per-worker span aggregation: the merged profile has the same
        // phase paths and call counts for every pool size; only the
        // durations differ.
        let (d, gp) = dense_design(30);
        let collect = |threads: usize| {
            let mut profile = flow3d_obs::Profile::new();
            Flow3dLegalizer::new(Flow3dConfig::with_threads(threads))
                .legalize_observed(&d, &gp, Some(&mut profile))
                .unwrap();
            let phases: Vec<(String, u64)> = profile
                .phases()
                .map(|(p, s)| (p.to_string(), s.calls))
                .collect();
            let counters: Vec<(String, u64)> = profile
                .counters()
                .iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            (phases, counters)
        };
        let serial = collect(1);
        let threaded = collect(4);
        assert_eq!(serial, threaded);
        assert!(serial
            .0
            .iter()
            .any(|(p, _)| p == "legalize/flow_pass/search_batch"));
        assert!(serial
            .0
            .iter()
            .any(|(p, _)| p == "legalize/flow_pass/search_batch/source_search"));
        assert!(serial
            .0
            .iter()
            .any(|(p, _)| p == "legalize/flow_pass/apply"));
        assert!(serial
            .0
            .iter()
            .any(|(p, _)| p == "legalize/placerow/segment"));
    }

    #[test]
    fn pocket_without_paths_uses_teleport_fallback() {
        // A macro blankets the middle row of the bottom die, so row 0 and
        // row 2 are disconnected on that die. Row 0 is overfull; without
        // D2D edges the only way out is the direct-relocation fallback.
        let mut b = DesignBuilder::new("t")
            .technology(
                TechnologySpec::new("T")
                    .lib_cell(LibCellSpec::std_cell("W40", 40, 12))
                    .lib_cell(LibCellSpec::macro_cell("WALL", 160, 12)),
            )
            .die(DieSpec::new("bottom", "T", (0, 0, 160, 36), 12, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 160, 36), 12, 1, 1.0))
            .macro_inst("wall", "WALL", "bottom", 0, 12);
        for i in 0..5 {
            b = b.cell(format!("u{i}"), "W40");
        }
        let d = b.build().unwrap();
        let mut gp = Placement3d::new(5);
        for i in 0..5 {
            gp.set_pos(CellId::new(i), FPoint::new(0.0, 0.0));
        }
        // 5 * 40 = 200 > row 0's 160: one cell must leave row 0, and no
        // grid path reaches row 2.
        let outcome = Flow3dLegalizer::new(Flow3dConfig::without_d2d())
            .legalize(&d, &gp)
            .unwrap();
        assert!(flow3d_metrics::check_legal(&d, &outcome.placement).is_legal());
        assert!(outcome.stats.fallback_moves > 0);
        // The relocated cell landed on row 2 of the same die.
        let on_row2 = (0..5)
            .filter(|&i| outcome.placement.pos(CellId::new(i)).y == 24)
            .count();
        assert_eq!(on_row2, 1);
        assert_eq!(outcome.stats.cross_die_moves, 0);
    }

    /// The minified m1h pathology: a wide macro beside heterogeneous row
    /// heights (12 on the bottom die, 16 on the top) pinches the grid so
    /// that applied paths shuttle supply back across an edge used in the
    /// opposite direction one round earlier (A→B then B→A).
    fn m1h_fixture() -> (Design, Placement3d) {
        let n = 26;
        let mut b = DesignBuilder::new("m1h")
            .technology(
                TechnologySpec::new("TA")
                    .lib_cell(LibCellSpec::std_cell("W40", 40, 12))
                    .lib_cell(LibCellSpec::macro_cell("WALL", 240, 12)),
            )
            .technology(
                TechnologySpec::new("TB")
                    .lib_cell(LibCellSpec::std_cell("W40", 30, 16))
                    .lib_cell(LibCellSpec::macro_cell("WALL", 240, 16)),
            )
            .die(DieSpec::new("bottom", "TA", (0, 0, 320, 36), 12, 1, 1.0))
            .die(DieSpec::new("top", "TB", (0, 0, 320, 32), 16, 1, 1.0))
            .macro_inst("wall", "WALL", "bottom", 0, 12)
            .macro_inst("wallt", "WALL", "top", 40, 0);
        for i in 0..n {
            b = b.cell(format!("u{i}"), "W40");
        }
        let d = b.build().unwrap();
        let mut gp = Placement3d::new(n);
        for i in 0..n {
            let c = CellId::new(i);
            gp.set_pos(c, FPoint::new((i % 7) as f64 * 20.0, 0.0));
            gp.set_die_affinity(c, 0.2);
        }
        (d, gp)
    }

    #[test]
    fn m1h_ping_pong_is_detected_and_legalizes_without_guard_exhaustion() {
        let (d, gp) = m1h_fixture();
        let mut profile = flow3d_obs::Profile::new();
        let outcome = Flow3dLegalizer::default()
            .legalize_observed(&d, &gp, Some(&mut profile))
            .unwrap();
        assert!(check_legal(&d, &outcome.placement).is_legal());
        // The oscillation pattern is present — the detector must fire …
        assert!(
            profile.counters().get(keys::PING_PONG_TABUS) > 0,
            "fixture no longer oscillates; rebuild it so the regression stays live"
        );
        // … and must be broken by rerouting, not by burning the apply
        // guard down to the teleport fallback.
        assert_eq!(outcome.stats.fallback_moves, 0, "guard exhausted");
        // Convergence stays quick: nowhere near the apply budget
        // (64·overflowed + 4·bins + 64 ≥ 100 for this grid).
        assert!(
            outcome.stats.augmentations < 32,
            "augmentations ballooned: {}",
            outcome.stats.augmentations
        );
    }

    #[test]
    fn m1h_tabu_keeps_thread_invariance() {
        // The tabu bookkeeping is coordinator-side, derived from the
        // serial apply order — the fix must not cost the thread-count
        // bit-identity contract.
        let (d, gp) = m1h_fixture();
        let serial = Flow3dLegalizer::new(Flow3dConfig::with_threads(1))
            .legalize(&d, &gp)
            .unwrap();
        for threads in [2, 8] {
            let parallel = Flow3dLegalizer::new(Flow3dConfig::with_threads(threads))
                .legalize(&d, &gp)
                .unwrap();
            assert_eq!(parallel.placement, serial.placement, "threads={threads}");
            assert_eq!(parallel.stats, serial.stats, "threads={threads}");
        }
    }

    #[test]
    fn empty_design_is_trivially_legal() {
        let d = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("INV", 10, 12)))
            .die(DieSpec::new("bottom", "T", (0, 0, 100, 24), 12, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 100, 24), 12, 1, 1.0))
            .build()
            .unwrap();
        let outcome = Flow3dLegalizer::default()
            .legalize(&d, &Placement3d::new(0))
            .unwrap();
        assert_eq!(outcome.placement.num_cells(), 0);
        assert_eq!(outcome.stats.augmentations, 0);
    }
}
