//! Initial assignment: die partition, displacement anchors, and cell→bin
//! seeding (paper §II-B and Algorithm 2 lines 1–2).

use crate::error::LegalizeError;
use crate::grid::BinGrid;
use crate::state::{FlowState, GeomSource};
use flow3d_db::{CellId, Design, DieId, Placement3d, RowLayout};
use flow3d_geom::Point;

/// Rounded global-placement positions — the displacement anchors
/// `(x'_c, y'_c)` of Eq. 4.
pub fn anchors(design: &Design, global: &Placement3d) -> Vec<Point> {
    (0..design.num_cells())
        .map(|i| global.pos(CellId::new(i)).round())
        .collect()
}

/// Snaps every cell to its nearest die, then rebalances: while a die
/// exceeds its utilization cap, the cells with the most ambiguous die
/// affinity are moved to the die with the largest headroom. This is the
/// shared starting point of *every* legalizer here (the paper's 2D
/// baselines fix this assignment; 3D-Flow refines it with D2D moves).
///
/// # Errors
///
/// [`LegalizeError::DieOverflow`] if no rebalance fits the cells.
pub fn partition_dies(design: &Design, global: &Placement3d) -> Result<Vec<DieId>, LegalizeError> {
    partition_dies_with(design, global, &GeomSource::IdMap)
}

/// [`partition_dies`] reading cell geometry through `geom` (the driver
/// passes its prebuilt [`SoaView`](flow3d_db::SoaView); values are
/// identical either way, only the access pattern differs).
///
/// # Errors
///
/// Same as [`partition_dies`].
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub fn partition_dies_with(
    design: &Design,
    global: &Placement3d,
    geom: &GeomSource<'_>,
) -> Result<Vec<DieId>, LegalizeError> {
    if global.num_cells() != design.num_cells() {
        return Err(LegalizeError::PlacementMismatch {
            design_cells: design.num_cells(),
            placement_cells: global.num_cells(),
        });
    }
    let num_dies = design.num_dies();
    let mut dies: Vec<DieId> = (0..design.num_cells())
        .map(|i| global.nearest_die(CellId::new(i), num_dies))
        .collect();

    let area = |cell: usize, die: DieId| {
        geom.cell_width(design, CellId::new(cell), die) * geom.cell_height(design, die)
    };
    let allowed: Vec<i64> = (0..num_dies)
        .map(|d| {
            let die = DieId::new(d);
            (design.die(die).max_util * design.free_area(die) as f64).floor() as i64
        })
        .collect();
    let mut used = vec![0i64; num_dies];
    for (i, &d) in dies.iter().enumerate() {
        used[d.index()] += area(i, d);
    }

    for d in 0..num_dies {
        if used[d] <= allowed[d] {
            continue;
        }
        // Most ambiguous cells first: smallest |affinity - die index|
        // distance to the midpoint between dies.
        let mut candidates: Vec<usize> = (0..design.num_cells())
            .filter(|&i| dies[i].index() == d)
            .collect();
        candidates.sort_by(|&a, &b| {
            let amb = |i: usize| (global.die_affinity(CellId::new(i)) - d as f64).abs();
            amb(b)
                .partial_cmp(&amb(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for i in candidates {
            if used[d] <= allowed[d] {
                break;
            }
            // Move to the die with the most headroom that can take it.
            let target = (0..num_dies)
                .filter(|&t| t != d)
                .max_by_key(|&t| allowed[t] - used[t] - area(i, DieId::new(t)));
            if let Some(t) = target {
                let a_t = area(i, DieId::new(t));
                if used[t] + a_t <= allowed[t] {
                    used[d] -= area(i, DieId::new(d));
                    used[t] += a_t;
                    dies[i] = DieId::new(t);
                }
            }
        }
        if used[d] > allowed[d] {
            return Err(LegalizeError::DieOverflow {
                die: DieId::new(d),
                required: used[d],
                allowed: allowed[d],
            });
        }
    }
    Ok(dies)
}

/// Seeds the flow state: every cell is inserted at the legal position
/// nearest its anchor on its assigned die (fractionally across straddled
/// bins). Cells that fit nowhere on their die fall back to other dies;
/// `dies` is updated to the final seeding.
///
/// # Errors
///
/// [`LegalizeError::NoPosition`] when a cell fits in no segment of any
/// die, [`LegalizeError::PlacementMismatch`] on cell-count mismatch.
pub fn build_state<'a>(
    design: &'a Design,
    layout: &'a RowLayout,
    grid: &'a BinGrid,
    global: &Placement3d,
    dies: &mut [DieId],
) -> Result<FlowState<'a>, LegalizeError> {
    build_state_with_geom(
        design,
        layout,
        grid,
        global,
        dies,
        GeomSource::Owned(flow3d_db::SoaView::geometry(design)),
    )
}

/// [`build_state`] with an explicit geometry source for the new state
/// (the driver borrows its prebuilt full view; `GeomSource::IdMap`
/// selects the reference path).
///
/// # Errors
///
/// Same as [`build_state`].
// flow3d-tidy: allow(dead-pub) — facade API (flow3d::core) for embedders that drive the legalizer below the Legalizer trait
pub fn build_state_with_geom<'a>(
    design: &'a Design,
    layout: &'a RowLayout,
    grid: &'a BinGrid,
    global: &Placement3d,
    dies: &mut [DieId],
    geom: GeomSource<'a>,
) -> Result<FlowState<'a>, LegalizeError> {
    if global.num_cells() != design.num_cells() {
        return Err(LegalizeError::PlacementMismatch {
            design_cells: design.num_cells(),
            placement_cells: global.num_cells(),
        });
    }
    let anchor = anchors(design, global);
    let mut state = FlowState::with_geom(design, layout, grid, anchor.clone(), geom);
    for i in 0..design.num_cells() {
        let cell = CellId::new(i);
        let a = anchor[i];
        let mut placed = false;
        // Assigned die first, then the others.
        let mut order: Vec<DieId> = vec![dies[i]];
        order.extend(
            (0..design.num_dies())
                .map(DieId::new)
                .filter(|&d| d != dies[i]),
        );
        for die in order {
            let w = state.cell_width(cell, die);
            if let Some((seg, x)) = layout.nearest_position(design, die, a.x, a.y, w) {
                let hint = grid.bin_at(seg.id, x);
                state.insert_cell(cell, hint, x);
                dies[i] = die;
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(LegalizeError::NoPosition { cell });
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_db::{DesignBuilder, DieSpec, LibCellSpec, TechnologySpec};
    use flow3d_geom::FPoint;

    fn design(max_util: f64) -> Design {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("W50", 50, 12)))
            .die(DieSpec::new(
                "bottom",
                "T",
                (0, 0, 200, 24),
                12,
                1,
                max_util,
            ))
            .die(DieSpec::new("top", "T", (0, 0, 200, 24), 12, 1, max_util));
        for i in 0..6 {
            b = b.cell(format!("u{i}"), "W50");
        }
        b.build().unwrap()
    }

    fn global(affinities: &[f64]) -> Placement3d {
        let mut g = Placement3d::new(affinities.len());
        for (i, &z) in affinities.iter().enumerate() {
            g.set_pos(CellId::new(i), FPoint::new(10.0 * i as f64, 0.0));
            g.set_die_affinity(CellId::new(i), z);
        }
        g
    }

    #[test]
    fn partition_follows_affinity_when_feasible() {
        let d = design(1.0);
        let g = global(&[0.1, 0.2, 0.9, 0.8, 0.4, 0.6]);
        let dies = partition_dies(&d, &g).unwrap();
        assert_eq!(
            dies,
            vec![
                DieId::BOTTOM,
                DieId::BOTTOM,
                DieId::TOP,
                DieId::TOP,
                DieId::BOTTOM,
                DieId::TOP
            ]
        );
    }

    #[test]
    fn partition_rebalances_ambiguous_cells_first() {
        // Capacity: free area 200*24 = 4800/die; util 0.5 -> 2400 allowed;
        // each cell is 600. All 6 on bottom (3600) exceeds; 2 must move,
        // and the two most ambiguous (0.45, 0.4) move first.
        let d = design(0.5);
        let g = global(&[0.0, 0.1, 0.45, 0.2, 0.4, 0.05]);
        let dies = partition_dies(&d, &g).unwrap();
        let moved: Vec<usize> = (0..6).filter(|&i| dies[i] == DieId::TOP).collect();
        assert_eq!(moved, vec![2, 4]);
    }

    #[test]
    fn partition_errors_when_nothing_fits() {
        // util 0.2 -> 960/die; 6 cells of 600 = 3600 > 1920 total.
        let d = design(0.2);
        let g = global(&[0.0; 6]);
        assert!(matches!(
            partition_dies(&d, &g),
            Err(LegalizeError::DieOverflow { .. })
        ));
    }

    #[test]
    fn build_state_seeds_every_cell_near_anchor() {
        let d = design(1.0);
        let g = global(&[0.0, 0.0, 1.0, 1.0, 0.0, 1.0]);
        let layout = RowLayout::build(&d);
        let grid = BinGrid::build(&d, &layout, &[60, 60], true);
        let mut dies = partition_dies(&d, &g).unwrap();
        let st = build_state(&d, &layout, &grid, &g, &mut dies).unwrap();
        st.check_invariants().unwrap();
        for (i, &die) in dies.iter().enumerate() {
            let cell = CellId::new(i);
            assert_eq!(st.cell_die(cell), die);
            let total: i64 = st.cell_frags(cell).iter().map(|&(_, w)| w).sum();
            assert_eq!(total, 50);
        }
    }

    #[test]
    fn build_state_rejects_mismatched_placement() {
        let d = design(1.0);
        let g = Placement3d::new(2);
        let layout = RowLayout::build(&d);
        let grid = BinGrid::build(&d, &layout, &[60, 60], true);
        let mut dies = vec![DieId::BOTTOM; 6];
        assert!(matches!(
            build_state(&d, &layout, &grid, &g, &mut dies),
            Err(LegalizeError::PlacementMismatch { .. })
        ));
    }

    #[test]
    fn anchors_round_continuous_positions() {
        let d = design(1.0);
        let mut g = Placement3d::new(6);
        g.set_pos(CellId::new(0), FPoint::new(1.6, 2.4));
        let a = anchors(&d, &g);
        assert_eq!(a[0], Point::new(2, 2));
    }
}
