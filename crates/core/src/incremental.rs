//! Incremental (ECO) legalization.
//!
//! The paper notes that "our flow-based legalizer enables incremental
//! legalization inherently" (§III-E) — the post-optimization exploits it
//! internally. This module exposes the capability as a public API for the
//! classical use case: after legalization, a timing-optimization step
//! (gate sizing, buffer insertion, small moves) perturbs a few cells, and
//! the placement must be made legal again *with minimal disturbance to
//! everything else*.
//!
//! Unperturbed cells are seeded at — and anchored to — their current
//! legal positions, so the flow only moves them when the perturbation's
//! overflow forces it; perturbed cells are anchored to their requested
//! positions. A fine bin grid (the post-optimization width `5·w̄_c`) keeps
//! the cost model precise for the localized overflow.

use crate::config::Flow3dConfig;
use crate::driver::{
    bin_widths, flow_pass_threaded_pooled, placerow_all_threaded, Flow3dLegalizer,
};
use crate::error::LegalizeError;
use crate::grid::{BinGrid, BinId};
use crate::search::{SearchParams, SearchPool};
use crate::selection::SelectionParams;
use crate::state::{FlowState, GeomSource};
use crate::traits::{LegalizeOutcome, LegalizeStats};
use flow3d_db::{CellId, Design, DieId, LegalPlacement, RowLayout};
use flow3d_geom::Point;
use flow3d_obs::{Obs, ObsExt};

/// One requested cell change in an ECO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMove {
    /// The cell the optimization step touched.
    pub cell: CellId,
    /// Requested lower-left position (need not be legal; it becomes the
    /// cell's new displacement anchor).
    pub target: Point,
    /// Requested die, or `None` to keep the cell's current die.
    pub die: Option<DieId>,
}

impl Flow3dLegalizer {
    /// Re-legalizes `base` after the engineering changes in `moves`.
    ///
    /// Every cell not listed in `moves` is anchored to its position in
    /// `base`, so the result minimizes *perturbation* rather than
    /// displacement from the original global placement. The reported
    /// displacement stats of the outcome are therefore relative to
    /// `base`.
    ///
    /// # Errors
    ///
    /// [`LegalizeError::PlacementMismatch`] if `base` has the wrong cell
    /// count, [`LegalizeError::NoPosition`] if a requested target fits
    /// nowhere, and the usual flow errors for infeasible overflow.
    pub fn legalize_incremental(
        &self,
        design: &Design,
        base: &LegalPlacement,
        moves: &[CellMove],
    ) -> Result<LegalizeOutcome, LegalizeError> {
        self.legalize_incremental_observed(design, base, moves, None)
    }

    /// [`legalize_incremental`](Self::legalize_incremental) with an
    /// observability hook: records `"eco_seed"`, `"flow_pass"` and
    /// `"placerow"` phases plus the usual search counters into `obs` when
    /// it is `Some` (see [`flow3d_obs`]).
    ///
    /// # Errors
    ///
    /// Same as [`legalize_incremental`](Self::legalize_incremental).
    pub fn legalize_incremental_observed(
        &self,
        design: &Design,
        base: &LegalPlacement,
        moves: &[CellMove],
        obs: Obs<'_>,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        let n = design.num_cells();
        if base.num_cells() != n {
            return Err(LegalizeError::PlacementMismatch {
                design_cells: n,
                placement_cells: base.num_cells(),
            });
        }
        let cfg = self.config();
        let layout = RowLayout::build(design);
        let widths = bin_widths(design, cfg.post_bin_width_factor);
        let grid = BinGrid::build(design, &layout, &widths, cfg.allow_d2d);
        let threads = flow3d_par::resolve_threads(cfg.threads);
        let mut pool = SearchPool::new();
        let geom = if cfg.soa_view {
            GeomSource::Owned(flow3d_db::SoaView::geometry(design))
        } else {
            GeomSource::IdMap
        };
        let ctx = EcoContext {
            design,
            layout: &layout,
            grid: &grid,
            cfg,
            base,
            seed_cache: None,
            threads,
            geom,
        };
        run_eco(&ctx, moves, &mut pool, obs)
    }
}

/// Everything one ECO run reads but does not own: the design-derived
/// structures (resident in [`crate::EcoEngine`], rebuilt per call by
/// [`Flow3dLegalizer::legalize_incremental`]) plus the run knobs.
pub(crate) struct EcoContext<'a> {
    /// The design being legalized.
    pub design: &'a Design,
    /// Row layout of `design`.
    pub layout: &'a RowLayout,
    /// Bin grid built at the post-optimization width.
    pub grid: &'a BinGrid,
    /// Legalizer configuration (alpha, memo, row algorithm, …).
    pub cfg: &'a Flow3dConfig,
    /// The legal placement the ECO perturbs; anchors and the cross-die
    /// counter are relative to it.
    pub base: &'a LegalPlacement,
    /// Pre-resolved seed slot per cell at its *base* anchor and die
    /// (`None` entry = the base cell fits nowhere on its die). A resident
    /// engine computes this once so unmoved cells skip
    /// `nearest_position`; `None` resolves every cell fresh.
    pub seed_cache: Option<&'a [Option<(BinId, i64)>]>,
    /// Worker count for the flow and PlaceRow phases.
    pub threads: usize,
    /// Geometry source for the seeded state (a resident engine borrows
    /// its long-lived view; one-shot ECOs own a fresh one).
    pub geom: GeomSource<'a>,
}

/// Resolves the seed slot for `cell` anchored at `a` on `die`: the
/// nearest legal position and the bin that contains it.
pub(crate) fn resolve_seed(
    design: &Design,
    layout: &RowLayout,
    grid: &BinGrid,
    geom: &GeomSource<'_>,
    die: DieId,
    a: Point,
    cell: CellId,
) -> Option<(BinId, i64)> {
    let w = geom.cell_width(design, cell, die);
    layout
        .nearest_position(design, die, a.x, a.y, w)
        .map(|(seg, x)| (grid.bin_at(seg.id, x), x))
}

/// The shared ECO pipeline: seed a fresh [`FlowState`] from `ctx.base`
/// with `moves` applied, drain the overflow, and run PlaceRow.
///
/// Both the one-shot [`Flow3dLegalizer::legalize_incremental`] and the
/// resident [`crate::EcoEngine`] funnel through this function, which is
/// what makes their placements bit-identical by construction: the state
/// is always built by the same insert loop in cell order (cached seeds
/// replay exactly what `resolve_seed` would recompute), and everything
/// downstream is deterministic in the seeded state.
pub(crate) fn run_eco(
    ctx: &EcoContext<'_>,
    moves: &[CellMove],
    pool: &mut SearchPool,
    mut obs: Obs<'_>,
) -> Result<LegalizeOutcome, LegalizeError> {
    let (design, layout, grid, cfg) = (ctx.design, ctx.layout, ctx.grid, ctx.cfg);
    let n = design.num_cells();

    // Anchors: base positions, overridden by the requested targets.
    obs.begin("eco_seed");
    let mut anchors: Vec<Point> = (0..n).map(|i| ctx.base.pos(CellId::new(i))).collect();
    let mut target_die: Vec<DieId> = (0..n).map(|i| ctx.base.die(CellId::new(i))).collect();
    let mut is_moved = vec![false; n];
    for mv in moves {
        anchors[mv.cell.index()] = mv.target;
        is_moved[mv.cell.index()] = true;
        if let Some(die) = mv.die {
            target_die[mv.cell.index()] = die;
        }
    }

    let mut state = FlowState::with_geom(design, layout, grid, anchors.clone(), ctx.geom.clone());
    for i in 0..n {
        let cell = CellId::new(i);
        let seeded = if !is_moved[i] {
            // Unmoved cell: its anchor and die are exactly the base's, so
            // a resident seed cache replays the same resolution. No die
            // fallback — an unmoved cell that fails to seed means the
            // base placement is not legal on its own die; silently
            // relocating it would hide the corruption, so let it surface
            // as `NoPosition` below.
            match ctx.seed_cache {
                Some(cache) => cache[i],
                None => resolve_seed(
                    design,
                    layout,
                    grid,
                    &ctx.geom,
                    target_die[i],
                    anchors[i],
                    cell,
                ),
            }
        } else {
            // Moved cell: resolve the requested target fresh; if the
            // requested die cannot host the cell at all, fall back to any
            // die that can.
            resolve_seed(
                design,
                layout,
                grid,
                &ctx.geom,
                target_die[i],
                anchors[i],
                cell,
            )
            .or_else(|| {
                (0..design.num_dies()).map(DieId::new).find_map(|d| {
                    resolve_seed(design, layout, grid, &ctx.geom, d, anchors[i], cell)
                })
            })
        };
        match seeded {
            Some((hint, x)) => state.insert_cell(cell, hint, x),
            None => {
                obs.end("eco_seed");
                return Err(LegalizeError::NoPosition { cell });
            }
        }
    }
    obs.end("eco_seed");

    let slack = design
        .dies()
        .iter()
        .map(|d| d.row_height)
        .min()
        .unwrap_or(1) as f64;
    let d2d_penalty = design
        .dies()
        .iter()
        .map(|d| d.row_height)
        .max()
        .unwrap_or(1) as f64;
    let params = SearchParams {
        alpha: cfg.alpha,
        slack,
        dijkstra: false,
        use_memo: cfg.selection_memo,
        memo_slots: cfg.memo_slots,
        selection: SelectionParams {
            clamp_negative: false,
            d2d_congestion_cost: cfg.d2d_congestion_cost,
            d2d_penalty,
        },
    };
    let mut stats = LegalizeStats::default();
    obs.begin("flow_pass");
    let flowed = flow_pass_threaded_pooled(
        &mut state,
        &params,
        ctx.threads,
        &mut stats,
        obs.reborrow(),
        pool,
    );
    obs.end("flow_pass");
    flowed?;
    obs.begin("placerow");
    let placed = placerow_all_threaded(&state, cfg.row_algo, ctx.threads, obs.reborrow());
    obs.end("placerow");
    let placement = placed?;

    // Cross-die counter relative to the *base* placement here.
    stats.cross_die_moves = (0..n)
        .filter(|&i| placement.die(CellId::new(i)) != ctx.base.die(CellId::new(i)))
        .count();
    Ok(LegalizeOutcome { placement, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Legalizer;
    use flow3d_db::{DesignBuilder, DieSpec, LibCellSpec, Placement3d, TechnologySpec};
    use flow3d_geom::FPoint;
    use flow3d_metrics::check_legal;

    fn design(n: usize) -> Design {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 30, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 400, 40), 10, 1, 1.0));
        for i in 0..n {
            b = b.cell(format!("u{i}"), "C");
        }
        b.build().unwrap()
    }

    fn base_placement(d: &Design) -> LegalPlacement {
        let n = d.num_cells();
        let mut gp = Placement3d::new(n);
        for i in 0..n {
            gp.set_pos(
                CellId::new(i),
                FPoint::new((i as f64 * 35.0) % 350.0, 10.0 * ((i / 10) as f64)),
            );
        }
        Flow3dLegalizer::default()
            .legalize(d, &gp)
            .unwrap()
            .placement
    }

    #[test]
    fn noop_eco_changes_nothing() {
        let d = design(12);
        let base = base_placement(&d);
        let outcome = Flow3dLegalizer::default()
            .legalize_incremental(&d, &base, &[])
            .unwrap();
        assert_eq!(outcome.placement, base);
        assert_eq!(outcome.stats.augmentations, 0);
    }

    #[test]
    fn single_move_into_occupied_spot_perturbs_locally() {
        let d = design(12);
        let base = base_placement(&d);
        // Ask cell 0 to sit exactly where cell 1 is.
        let clash = base.pos(CellId::new(1));
        let mv = CellMove {
            cell: CellId::new(0),
            target: clash,
            die: Some(base.die(CellId::new(1))),
        };
        let outcome = Flow3dLegalizer::default()
            .legalize_incremental(&d, &base, &[mv])
            .unwrap();
        assert!(check_legal(&d, &outcome.placement).is_legal());
        // Cell 0 landed near its request.
        let p0 = outcome.placement.pos(CellId::new(0));
        assert!(p0.manhattan(clash) <= 60, "{p0} vs {clash}");
        // Most cells did not move at all.
        let unmoved = (0..12)
            .filter(|&i| {
                outcome.placement.pos(CellId::new(i)) == base.pos(CellId::new(i))
                    && outcome.placement.die(CellId::new(i)) == base.die(CellId::new(i))
            })
            .count();
        assert!(unmoved >= 8, "only {unmoved}/12 cells untouched");
    }

    #[test]
    fn cross_die_eco_request_is_honored() {
        let d = design(6);
        let base = base_placement(&d);
        let from = base.die(CellId::new(2));
        let to = DieId::new(1 - from.index());
        let mv = CellMove {
            cell: CellId::new(2),
            target: base.pos(CellId::new(2)),
            die: Some(to),
        };
        let outcome = Flow3dLegalizer::default()
            .legalize_incremental(&d, &base, &[mv])
            .unwrap();
        assert!(check_legal(&d, &outcome.placement).is_legal());
        assert_eq!(outcome.placement.die(CellId::new(2)), to);
        assert!(outcome.stats.cross_die_moves >= 1);
    }

    /// Two-die design whose top die is too narrow to host a single
    /// width-30 cell: any cell "on top" is there illegally.
    fn narrow_top_design(n: usize) -> Design {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 30, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 20, 40), 10, 1, 1.0));
        for i in 0..n {
            b = b.cell(format!("u{i}"), "C");
        }
        b.build().unwrap()
    }

    #[test]
    fn corrupt_base_surfaces_no_position_instead_of_silent_relocation() {
        // Cell 0 sits on a die that cannot host it, and the ECO does not
        // touch it: the die fallback is documented as "moved cells only",
        // so the corruption must surface as NoPosition, not be papered
        // over by quietly relocating the cell to another die.
        let d = narrow_top_design(2);
        let mut base = flow3d_db::LegalPlacement::new(2);
        base.place(CellId::new(0), Point::new(0, 0), DieId::new(1));
        base.place(CellId::new(1), Point::new(0, 0), DieId::new(0));
        let err = Flow3dLegalizer::default()
            .legalize_incremental(&d, &base, &[])
            .unwrap_err();
        assert!(
            matches!(err, LegalizeError::NoPosition { cell } if cell == CellId::new(0)),
            "expected NoPosition for the corrupt cell, got {err:?}"
        );
    }

    #[test]
    fn moved_cell_keeps_the_any_die_fallback() {
        // The same impossible die, but *requested by the ECO*: here the
        // fallback applies — the cell seeds on a die that fits and the
        // run succeeds.
        let d = narrow_top_design(3);
        let mut base = flow3d_db::LegalPlacement::new(3);
        for i in 0..3 {
            base.place(CellId::new(i), Point::new(30 * i as i64, 0), DieId::new(0));
        }
        let mv = CellMove {
            cell: CellId::new(1),
            target: Point::new(0, 0),
            die: Some(DieId::new(1)),
        };
        let outcome = Flow3dLegalizer::default()
            .legalize_incremental(&d, &base, &[mv])
            .unwrap();
        assert!(check_legal(&d, &outcome.placement).is_legal());
        assert_eq!(
            outcome.placement.die(CellId::new(1)),
            DieId::new(0),
            "the unhostable die request falls back to one that fits"
        );
    }

    #[test]
    fn mismatched_base_is_rejected() {
        let d = design(4);
        let wrong = LegalPlacement::new(2);
        let err = Flow3dLegalizer::default()
            .legalize_incremental(&d, &wrong, &[])
            .unwrap_err();
        assert!(matches!(err, LegalizeError::PlacementMismatch { .. }));
    }
}
