//! Incremental (ECO) legalization.
//!
//! The paper notes that "our flow-based legalizer enables incremental
//! legalization inherently" (§III-E) — the post-optimization exploits it
//! internally. This module exposes the capability as a public API for the
//! classical use case: after legalization, a timing-optimization step
//! (gate sizing, buffer insertion, small moves) perturbs a few cells, and
//! the placement must be made legal again *with minimal disturbance to
//! everything else*.
//!
//! Unperturbed cells are seeded at — and anchored to — their current
//! legal positions, so the flow only moves them when the perturbation's
//! overflow forces it; perturbed cells are anchored to their requested
//! positions. A fine bin grid (the post-optimization width `5·w̄_c`) keeps
//! the cost model precise for the localized overflow.

use crate::driver::{bin_widths, flow_pass_threaded, placerow_all_threaded, Flow3dLegalizer};
use crate::error::LegalizeError;
use crate::grid::BinGrid;
use crate::search::SearchParams;
use crate::selection::SelectionParams;
use crate::state::FlowState;
use crate::traits::{LegalizeOutcome, LegalizeStats};
use flow3d_db::{CellId, Design, DieId, LegalPlacement, RowLayout};
use flow3d_geom::Point;
use flow3d_obs::{Obs, ObsExt};

/// One requested cell change in an ECO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMove {
    /// The cell the optimization step touched.
    pub cell: CellId,
    /// Requested lower-left position (need not be legal; it becomes the
    /// cell's new displacement anchor).
    pub target: Point,
    /// Requested die, or `None` to keep the cell's current die.
    pub die: Option<DieId>,
}

impl Flow3dLegalizer {
    /// Re-legalizes `base` after the engineering changes in `moves`.
    ///
    /// Every cell not listed in `moves` is anchored to its position in
    /// `base`, so the result minimizes *perturbation* rather than
    /// displacement from the original global placement. The reported
    /// displacement stats of the outcome are therefore relative to
    /// `base`.
    ///
    /// # Errors
    ///
    /// [`LegalizeError::PlacementMismatch`] if `base` has the wrong cell
    /// count, [`LegalizeError::NoPosition`] if a requested target fits
    /// nowhere, and the usual flow errors for infeasible overflow.
    pub fn legalize_incremental(
        &self,
        design: &Design,
        base: &LegalPlacement,
        moves: &[CellMove],
    ) -> Result<LegalizeOutcome, LegalizeError> {
        self.legalize_incremental_observed(design, base, moves, None)
    }

    /// [`legalize_incremental`](Self::legalize_incremental) with an
    /// observability hook: records `"eco_seed"`, `"flow_pass"` and
    /// `"placerow"` phases plus the usual search counters into `obs` when
    /// it is `Some` (see [`flow3d_obs`]).
    ///
    /// # Errors
    ///
    /// Same as [`legalize_incremental`](Self::legalize_incremental).
    pub fn legalize_incremental_observed(
        &self,
        design: &Design,
        base: &LegalPlacement,
        moves: &[CellMove],
        mut obs: Obs<'_>,
    ) -> Result<LegalizeOutcome, LegalizeError> {
        let n = design.num_cells();
        if base.num_cells() != n {
            return Err(LegalizeError::PlacementMismatch {
                design_cells: n,
                placement_cells: base.num_cells(),
            });
        }
        let cfg = &self.config();
        let layout = RowLayout::build(design);
        let widths = bin_widths(design, cfg.post_bin_width_factor);
        let grid = BinGrid::build(design, &layout, &widths, cfg.allow_d2d);

        // Anchors: base positions, overridden by the requested targets.
        obs.begin("eco_seed");
        let mut anchors: Vec<Point> = (0..n).map(|i| base.pos(CellId::new(i))).collect();
        let mut target_die: Vec<DieId> = (0..n).map(|i| base.die(CellId::new(i))).collect();
        let mut is_moved = vec![false; n];
        for mv in moves {
            anchors[mv.cell.index()] = mv.target;
            is_moved[mv.cell.index()] = true;
            if let Some(die) = mv.die {
                target_die[mv.cell.index()] = die;
            }
        }

        let mut state = FlowState::new(design, &layout, &grid, anchors.clone());
        for i in 0..n {
            let cell = CellId::new(i);
            let die = target_die[i];
            let a = anchors[i];
            let w = design.cell_width(cell, die);
            let seeded = layout
                .nearest_position(design, die, a.x, a.y, w)
                .or_else(|| {
                    // Requested die cannot host the cell at all: fall back
                    // to any die — but only for cells the ECO actually
                    // moved. An unmoved cell that fails to seed means the
                    // base placement is not legal on its own die; silently
                    // relocating it would hide the corruption, so let it
                    // surface as `NoPosition` below.
                    if !is_moved[i] {
                        return None;
                    }
                    (0..design.num_dies()).map(DieId::new).find_map(|d| {
                        layout.nearest_position(design, d, a.x, a.y, design.cell_width(cell, d))
                    })
                });
            match seeded {
                Some((seg, x)) => {
                    let hint = grid.bin_at(seg.id, x);
                    state.insert_cell(cell, hint, x);
                }
                None => {
                    obs.end("eco_seed");
                    return Err(LegalizeError::NoPosition { cell });
                }
            }
        }
        obs.end("eco_seed");

        let slack = design
            .dies()
            .iter()
            .map(|d| d.row_height)
            .min()
            .unwrap_or(1) as f64;
        let d2d_penalty = design
            .dies()
            .iter()
            .map(|d| d.row_height)
            .max()
            .unwrap_or(1) as f64;
        let params = SearchParams {
            alpha: cfg.alpha,
            slack,
            dijkstra: false,
            use_memo: cfg.selection_memo,
            selection: SelectionParams {
                clamp_negative: false,
                d2d_congestion_cost: cfg.d2d_congestion_cost,
                d2d_penalty,
            },
        };
        let mut stats = LegalizeStats::default();
        let threads = flow3d_par::resolve_threads(cfg.threads);
        obs.begin("flow_pass");
        let flowed = flow_pass_threaded(&mut state, &params, threads, &mut stats, obs.reborrow());
        obs.end("flow_pass");
        flowed?;
        obs.begin("placerow");
        let placed = placerow_all_threaded(&state, cfg.row_algo, threads, obs.reborrow());
        obs.end("placerow");
        let placement = placed?;

        // Cross-die counter relative to the *base* placement here.
        stats.cross_die_moves = (0..n)
            .filter(|&i| placement.die(CellId::new(i)) != base.die(CellId::new(i)))
            .count();
        Ok(LegalizeOutcome { placement, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Legalizer;
    use flow3d_db::{DesignBuilder, DieSpec, LibCellSpec, Placement3d, TechnologySpec};
    use flow3d_geom::FPoint;
    use flow3d_metrics::check_legal;

    fn design(n: usize) -> Design {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 30, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 400, 40), 10, 1, 1.0));
        for i in 0..n {
            b = b.cell(format!("u{i}"), "C");
        }
        b.build().unwrap()
    }

    fn base_placement(d: &Design) -> LegalPlacement {
        let n = d.num_cells();
        let mut gp = Placement3d::new(n);
        for i in 0..n {
            gp.set_pos(
                CellId::new(i),
                FPoint::new((i as f64 * 35.0) % 350.0, 10.0 * ((i / 10) as f64)),
            );
        }
        Flow3dLegalizer::default()
            .legalize(d, &gp)
            .unwrap()
            .placement
    }

    #[test]
    fn noop_eco_changes_nothing() {
        let d = design(12);
        let base = base_placement(&d);
        let outcome = Flow3dLegalizer::default()
            .legalize_incremental(&d, &base, &[])
            .unwrap();
        assert_eq!(outcome.placement, base);
        assert_eq!(outcome.stats.augmentations, 0);
    }

    #[test]
    fn single_move_into_occupied_spot_perturbs_locally() {
        let d = design(12);
        let base = base_placement(&d);
        // Ask cell 0 to sit exactly where cell 1 is.
        let clash = base.pos(CellId::new(1));
        let mv = CellMove {
            cell: CellId::new(0),
            target: clash,
            die: Some(base.die(CellId::new(1))),
        };
        let outcome = Flow3dLegalizer::default()
            .legalize_incremental(&d, &base, &[mv])
            .unwrap();
        assert!(check_legal(&d, &outcome.placement).is_legal());
        // Cell 0 landed near its request.
        let p0 = outcome.placement.pos(CellId::new(0));
        assert!(p0.manhattan(clash) <= 60, "{p0} vs {clash}");
        // Most cells did not move at all.
        let unmoved = (0..12)
            .filter(|&i| {
                outcome.placement.pos(CellId::new(i)) == base.pos(CellId::new(i))
                    && outcome.placement.die(CellId::new(i)) == base.die(CellId::new(i))
            })
            .count();
        assert!(unmoved >= 8, "only {unmoved}/12 cells untouched");
    }

    #[test]
    fn cross_die_eco_request_is_honored() {
        let d = design(6);
        let base = base_placement(&d);
        let from = base.die(CellId::new(2));
        let to = DieId::new(1 - from.index());
        let mv = CellMove {
            cell: CellId::new(2),
            target: base.pos(CellId::new(2)),
            die: Some(to),
        };
        let outcome = Flow3dLegalizer::default()
            .legalize_incremental(&d, &base, &[mv])
            .unwrap();
        assert!(check_legal(&d, &outcome.placement).is_legal());
        assert_eq!(outcome.placement.die(CellId::new(2)), to);
        assert!(outcome.stats.cross_die_moves >= 1);
    }

    /// Two-die design whose top die is too narrow to host a single
    /// width-30 cell: any cell "on top" is there illegally.
    fn narrow_top_design(n: usize) -> Design {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 30, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 20, 40), 10, 1, 1.0));
        for i in 0..n {
            b = b.cell(format!("u{i}"), "C");
        }
        b.build().unwrap()
    }

    #[test]
    fn corrupt_base_surfaces_no_position_instead_of_silent_relocation() {
        // Cell 0 sits on a die that cannot host it, and the ECO does not
        // touch it: the die fallback is documented as "moved cells only",
        // so the corruption must surface as NoPosition, not be papered
        // over by quietly relocating the cell to another die.
        let d = narrow_top_design(2);
        let mut base = flow3d_db::LegalPlacement::new(2);
        base.place(CellId::new(0), Point::new(0, 0), DieId::new(1));
        base.place(CellId::new(1), Point::new(0, 0), DieId::new(0));
        let err = Flow3dLegalizer::default()
            .legalize_incremental(&d, &base, &[])
            .unwrap_err();
        assert!(
            matches!(err, LegalizeError::NoPosition { cell } if cell == CellId::new(0)),
            "expected NoPosition for the corrupt cell, got {err:?}"
        );
    }

    #[test]
    fn moved_cell_keeps_the_any_die_fallback() {
        // The same impossible die, but *requested by the ECO*: here the
        // fallback applies — the cell seeds on a die that fits and the
        // run succeeds.
        let d = narrow_top_design(3);
        let mut base = flow3d_db::LegalPlacement::new(3);
        for i in 0..3 {
            base.place(CellId::new(i), Point::new(30 * i as i64, 0), DieId::new(0));
        }
        let mv = CellMove {
            cell: CellId::new(1),
            target: Point::new(0, 0),
            die: Some(DieId::new(1)),
        };
        let outcome = Flow3dLegalizer::default()
            .legalize_incremental(&d, &base, &[mv])
            .unwrap();
        assert!(check_legal(&d, &outcome.placement).is_legal());
        assert_eq!(
            outcome.placement.die(CellId::new(1)),
            DieId::new(0),
            "the unhostable die request falls back to one that fits"
        );
    }

    #[test]
    fn mismatched_base_is_rejected() {
        let d = design(4);
        let wrong = LegalPlacement::new(2);
        let err = Flow3dLegalizer::default()
            .legalize_incremental(&d, &wrong, &[])
            .unwrap_err();
        assert!(matches!(err, LegalizeError::PlacementMismatch { .. }));
    }
}
