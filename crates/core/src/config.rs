//! Configuration of the 3D-Flow legalizer.

use crate::placerow::RowAlgo;

/// Tunable parameters of [`Flow3dLegalizer`](crate::Flow3dLegalizer).
///
/// The defaults are the paper's settings: `α = 0.1`, flow-phase bin width
/// `10·w̄_c`, post-optimization bin width `5·w̄_c`, D2D movement and
/// cycle-canceling post-optimization enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow3dConfig {
    /// Branch-and-bound slack `α ≥ 0` (§III-B): branches costlier than
    /// `(1 + α)·cost(p_best)` are pruned. `0` degenerates to greedy
    /// search; `f64::INFINITY` explores the full tree.
    pub alpha: f64,
    /// Flow-phase bin width as a multiple of the mean cell width (§III-F).
    pub bin_width_factor: f64,
    /// Post-optimization bin width as a multiple of the mean cell width.
    pub post_bin_width_factor: f64,
    /// Allow die-to-die cell movement (disable for the Table V ablation).
    pub allow_d2d: bool,
    /// Apply the Eq. (7) congestion term `sup(v) − dem(v)` on D2D edges.
    pub d2d_congestion_cost: bool,
    /// Run the cycle-canceling post-optimization (§III-E).
    pub post_opt: bool,
    /// Maximum post-optimization passes; each pass stops early when the
    /// maximum displacement no longer improves.
    pub post_passes: usize,
    /// Row-legalization algorithm (§III-D): the paper's Abacus clustering
    /// or the L1-optimal isotonic variant.
    pub row_algo: RowAlgo,
    /// Reuse `select_moves` results across the searches of one source's
    /// retry ladder via the per-scratch
    /// [`SelectionMemo`](crate::selection::SelectionMemo). Pure caching:
    /// the legalizer's output is bit-identical with the memo on or off
    /// (enforced by `tests/differential.rs`); disable only to measure the
    /// cache's effect (`--no-memo` in the CLI, the `kernel` bench group).
    pub selection_memo: bool,
    /// Slot capacity of the shared selection memo. `0` (the default)
    /// sizes it automatically from the flow-source count
    /// ([`SelectionMemo::auto_slots`](crate::selection::SelectionMemo::auto_slots));
    /// a nonzero value pins the capacity (rounded up to a power-of-two
    /// set count of the 2-way table). Pure capacity knob: like
    /// `selection_memo` itself it can change only hit/miss telemetry and
    /// wall-clock, never the output (`--memo-slots` in the CLI).
    pub memo_slots: usize,
    /// Worker threads for the parallel phases (flow-pass search batches,
    /// per-segment `PlaceRow`). `0` means auto: the `FLOW3D_THREADS`
    /// environment variable if set, otherwise all available cores (see
    /// [`flow3d_par::resolve_threads`]). The legalizer's output is
    /// bit-identical for every thread count — the searches of one batch
    /// run against a frozen state snapshot and their results are applied
    /// in a fixed order (see [`crate::driver::flow_pass_threaded`]) — so
    /// this knob trades wall-clock only, never quality or reproducibility.
    pub threads: usize,
    /// Read cell geometry through the flat [`SoaView`](flow3d_db::SoaView)
    /// columns instead of chasing the `Design` id maps. Pure data-layout
    /// choice: the view copies its values out of the design, so the
    /// output is bit-identical either way (enforced by
    /// `tests/soa_equivalence.rs`); disable only to benchmark the layout
    /// or as the differential-testing reference path.
    pub soa_view: bool,
}

impl Default for Flow3dConfig {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            bin_width_factor: 10.0,
            post_bin_width_factor: 5.0,
            allow_d2d: true,
            d2d_congestion_cost: true,
            post_opt: true,
            post_passes: 3,
            row_algo: RowAlgo::default(),
            selection_memo: true,
            memo_slots: 0,
            threads: 0,
            soa_view: true,
        }
    }
}

impl Flow3dConfig {
    /// The paper's Table V ablation: 3D-Flow restricted to 2D movement
    /// (no die-to-die edges); everything else unchanged.
    pub fn without_d2d() -> Self {
        Self {
            allow_d2d: false,
            ..Self::default()
        }
    }

    /// Greedy variant (`α = 0`): only strictly improving branches are
    /// explored.
    pub fn greedy() -> Self {
        Self {
            alpha: 0.0,
            ..Self::default()
        }
    }

    /// Exhaustive variant (`α = ∞`): the full search tree is explored.
    pub fn exhaustive() -> Self {
        Self {
            alpha: f64::INFINITY,
            ..Self::default()
        }
    }

    /// Default settings with an explicit worker-pool size (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = Flow3dConfig::default();
        assert_eq!(c.alpha, 0.1);
        assert_eq!(c.bin_width_factor, 10.0);
        assert_eq!(c.post_bin_width_factor, 5.0);
        assert!(c.allow_d2d);
        assert!(c.post_opt);
        assert!(c.selection_memo, "memo is pure caching, on by default");
        assert_eq!(c.memo_slots, 0, "memo capacity is auto-sized by default");
        assert_eq!(c.threads, 0, "default is auto-sized");
        assert!(c.soa_view, "SoA layout is pure caching, on by default");
    }

    #[test]
    fn with_threads_changes_only_the_pool_size() {
        let c = Flow3dConfig::with_threads(4);
        assert_eq!(c.threads, 4);
        let d = Flow3dConfig {
            threads: 0,
            ..c.clone()
        };
        assert_eq!(d, Flow3dConfig::default());
    }

    #[test]
    fn ablation_presets() {
        assert!(!Flow3dConfig::without_d2d().allow_d2d);
        assert_eq!(Flow3dConfig::greedy().alpha, 0.0);
        assert!(Flow3dConfig::exhaustive().alpha.is_infinite());
    }
}
