//! Integration tests for the observability hooks: the instrumented run
//! must agree with the plain run and with its own always-on counters.

use flow3d_core::{Flow3dConfig, Flow3dLegalizer, Legalizer};
use flow3d_db::{CellId, Design, DesignBuilder, DieSpec, LibCellSpec, Placement3d, TechnologySpec};
use flow3d_geom::FPoint;
use flow3d_obs::{keys, Profile, RunReport};

/// A dense clump that forces real flow work (augmenting paths, several
/// bins, post-optimization candidates).
fn dense_case(n: usize) -> (Design, Placement3d) {
    let mut b = DesignBuilder::new("obs-test")
        .technology(TechnologySpec::new("TA").lib_cell(LibCellSpec::std_cell("W40", 40, 12)))
        .technology(TechnologySpec::new("TB").lib_cell(LibCellSpec::std_cell("W40", 30, 16)))
        .die(DieSpec::new("bottom", "TA", (0, 0, 800, 48), 12, 1, 1.0))
        .die(DieSpec::new("top", "TB", (0, 0, 800, 48), 16, 1, 1.0));
    for i in 0..n {
        b = b.cell(format!("u{i}"), "W40");
    }
    let design = b.build().unwrap();
    let mut gp = Placement3d::new(n);
    for i in 0..n {
        let c = CellId::new(i);
        gp.set_pos(c, FPoint::new(100.0 + (i % 7) as f64 * 13.0, 6.0));
        gp.set_die_affinity(c, if i % 4 == 0 { 0.6 } else { 0.2 });
    }
    (design, gp)
}

#[test]
fn observed_run_matches_plain_run() {
    let (design, gp) = dense_case(30);
    let lg = Flow3dLegalizer::default();
    let plain = lg.legalize(&design, &gp).unwrap();
    let mut profile = Profile::new();
    let observed = lg
        .legalize_observed(&design, &gp, Some(&mut profile))
        .unwrap();
    assert_eq!(plain.placement, observed.placement);
    assert_eq!(plain.stats, observed.stats);
}

#[test]
fn phase_durations_nest_and_sum_consistently() {
    let (design, gp) = dense_case(30);
    let mut profile = Profile::new();
    Flow3dLegalizer::default()
        .legalize_observed(&design, &gp, Some(&mut profile))
        .unwrap();

    let top = profile.phase("legalize").expect("top-level phase");
    assert_eq!(top.calls, 1);
    assert!(top.total <= profile.total_elapsed());

    // Direct children of "legalize" can never account for more time than
    // the scope that contains them.
    let child_sum: std::time::Duration = profile
        .phases()
        .filter(|(path, _)| {
            path.starts_with("legalize/") && !path["legalize/".len()..].contains('/')
        })
        .map(|(_, stats)| stats.total)
        .sum();
    assert!(
        child_sum <= top.total,
        "children {child_sum:?} exceed parent {:?}",
        top.total
    );

    // The pipeline phases the paper's Algorithm 2 names must all appear.
    for phase in [
        "legalize/grid_build",
        "legalize/flow_pass",
        "legalize/placerow",
        "legalize/post_opt",
    ] {
        assert!(profile.phase(phase).is_some(), "missing phase {phase}");
    }
    assert!(profile.phases().count() >= 4);
}

#[test]
fn counters_match_always_on_stats() {
    let (design, gp) = dense_case(30);
    let mut profile = Profile::new();
    let outcome = Flow3dLegalizer::default()
        .legalize_observed(&design, &gp, Some(&mut profile))
        .unwrap();

    let counters = profile.counters();
    assert_eq!(
        counters.get(keys::CELLS_MOVED),
        outcome.stats.cells_moved as u64
    );
    assert_eq!(
        counters.get(keys::AUGMENTING_PATHS),
        outcome.stats.augmentations as u64
    );
    assert_eq!(
        counters.get(keys::NODES_EXPANDED),
        outcome.stats.nodes_expanded as u64
    );
    assert_eq!(
        counters.get(keys::FALLBACK_MOVES),
        outcome.stats.fallback_moves as u64
    );
    assert!(counters.get(keys::NODES_EXPANDED) > 0);
    assert!(counters.get(keys::CELLS_MOVED) > 0);
    assert!(counters.get(keys::PLACEROW_CALLS) > 0);
}

#[test]
fn run_report_round_trips_through_json() {
    let (design, gp) = dense_case(30);
    let mut profile = Profile::new();
    Flow3dLegalizer::default()
        .legalize_observed(&design, &gp, Some(&mut profile))
        .unwrap();
    let report = RunReport::from_profile("obs-test", "3d-flow", &profile);
    assert!(report.phases.len() >= 4);
    let parsed = RunReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
}

#[test]
fn no_post_opt_config_omits_post_opt_phase() {
    let (design, gp) = dense_case(30);
    let mut profile = Profile::new();
    Flow3dLegalizer::new(Flow3dConfig {
        post_opt: false,
        ..Default::default()
    })
    .legalize_observed(&design, &gp, Some(&mut profile))
    .unwrap();
    assert!(profile.phase("legalize/post_opt").is_none());
    assert!(profile.phase("legalize/flow_pass").is_some());
}
