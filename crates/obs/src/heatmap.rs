//! Spatial heatmaps: dense row-major grids of per-bin values captured
//! during a run (supply, demand, overflow, moves per bin), serialized
//! as JSON sidecars that `flow3d-viz` renders.

use crate::json::{Json, JsonError};

/// A named dense grid of `f64` cell values in row-major order.
///
/// Missing cells (a die row with fewer bins than the widest row) are
/// `NaN`, which serializes as JSON `null` and renders as "no bin".
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    /// Identifier, e.g. `"flow_pass0/die0/overflow"`.
    pub name: String,
    /// Number of grid rows.
    pub rows: usize,
    /// Number of grid columns.
    pub cols: usize,
    /// `rows * cols` values, row-major.
    pub values: Vec<f64>,
}

impl Heatmap {
    /// A grid of the given shape filled with `NaN` ("no bin").
    pub fn new(name: &str, rows: usize, cols: usize) -> Self {
        Self {
            name: name.to_string(),
            rows,
            cols,
            values: vec![f64::NAN; rows * cols],
        }
    }

    /// The value at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.values[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.values[row * self.cols + col] = value;
    }

    /// The extreme finite values, if any cell is finite.
    pub fn finite_range(&self) -> Option<(f64, f64)> {
        let mut range: Option<(f64, f64)> = None;
        for &v in &self.values {
            if v.is_finite() {
                range = Some(match range {
                    None => (v, v),
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                });
            }
        }
        range
    }

    fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("rows".to_string(), Json::Num(self.rows as f64)),
            ("cols".to_string(), Json::Num(self.cols as f64)),
            (
                "values".to_string(),
                // Json::num maps NaN to null.
                Json::Arr(self.values.iter().map(|&v| Json::num(v)).collect()),
            ),
        ])
    }

    fn from_json_value(doc: &Json) -> Result<Self, JsonError> {
        let missing = |field: &str| JsonError {
            message: format!("heatmap: missing or ill-typed field '{field}'"),
            offset: 0,
        };
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| missing("name"))?
            .to_string();
        let rows = doc
            .get("rows")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("rows"))? as usize;
        let cols = doc
            .get("cols")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("cols"))? as usize;
        let raw = doc
            .get("values")
            .and_then(Json::as_array)
            .ok_or_else(|| missing("values"))?;
        if raw.len() != rows * cols {
            return Err(JsonError {
                message: format!(
                    "heatmap '{name}': {} values for a {rows}x{cols} grid",
                    raw.len()
                ),
                offset: 0,
            });
        }
        let values = raw
            .iter()
            .map(|v| match v {
                Json::Null => Ok(f64::NAN),
                other => other.as_f64().ok_or_else(|| missing("values[]")),
            })
            .collect::<Result<Vec<f64>, JsonError>>()?;
        Ok(Self {
            name,
            rows,
            cols,
            values,
        })
    }
}

/// Serializes a heatmap collection as one JSON sidecar document
/// (`{"heatmaps": [...]}`).
pub fn heatmaps_to_json(maps: &[Heatmap]) -> String {
    Json::Obj(vec![(
        "heatmaps".to_string(),
        Json::Arr(maps.iter().map(Heatmap::to_json_value).collect()),
    )])
    .to_string()
}

/// Parses a sidecar previously produced by [`heatmaps_to_json`].
pub fn heatmaps_from_json(text: &str) -> Result<Vec<Heatmap>, JsonError> {
    let doc = Json::parse(text)?;
    let arr = doc
        .get("heatmaps")
        .and_then(Json::as_array)
        .ok_or(JsonError {
            message: "missing 'heatmaps' array".to_string(),
            offset: 0,
        })?;
    arr.iter().map(Heatmap::from_json_value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Heatmap {
        let mut h = Heatmap::new("pass0/die0/overflow", 2, 3);
        h.set(0, 0, 1.5);
        h.set(0, 2, -2.0);
        h.set(1, 1, 0.0);
        h
    }

    #[test]
    fn get_set_round_trip_and_nan_fill() {
        let h = sample();
        assert_eq!(h.get(0, 0), 1.5);
        assert_eq!(h.get(0, 2), -2.0);
        assert!(h.get(1, 0).is_nan());
        assert_eq!(h.finite_range(), Some((-2.0, 1.5)));
        assert_eq!(Heatmap::new("empty", 1, 1).finite_range(), None);
    }

    #[test]
    fn json_round_trips_with_nan_as_null() {
        let maps = vec![sample(), Heatmap::new("blank", 1, 2)];
        let text = heatmaps_to_json(&maps);
        assert!(text.contains("null"), "NaN cells serialize as null: {text}");
        let back = heatmaps_from_json(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, maps[0].name);
        assert_eq!(back[0].rows, 2);
        assert_eq!(back[0].cols, 3);
        for (a, b) in back[0].values.iter().zip(&maps[0].values) {
            assert!(a == b || (a.is_nan() && b.is_nan()));
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let text = r#"{"heatmaps":[{"name":"x","rows":2,"cols":2,"values":[1]}]}"#;
        assert!(heatmaps_from_json(text).is_err());
        assert!(heatmaps_from_json("{}").is_err());
    }
}
