//! Structured, leveled JSONL event logging for the resident service.
//!
//! Each event is one JSON object per line:
//!
//! ```text
//! {"seq":3,"t_micros":18234,"level":"info","event":"request_completed","span":3,"ok":true}
//! ```
//!
//! `seq` is a monotonic line number assigned by the sink, `t_micros` is
//! the caller's monotonic timestamp (the server uses microseconds since
//! start), and the remaining fields are event-specific. Events below
//! the sink's [`LogLevel`] are dropped before serialization.
//!
//! The log is designed to cost nothing when disabled: callers hold an
//! `Option<EventLog>` and skip event construction entirely when it is
//! `None`. The records themselves are [`Json`] values so the same
//! object can feed both the log and the in-memory
//! [`FlightRecorder`](crate::FlightRecorder) without re-serialization.

use crate::json::Json;
use std::io::{self, Write};
use std::sync::Mutex;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// High-volume diagnostics (per-wave boundaries).
    Debug,
    /// Normal request lifecycle events.
    Info,
    /// Recoverable oddities (refused admissions, dump failures).
    Warn,
    /// Request or server failures.
    Error,
}

impl LogLevel {
    /// The lowercase name used on the wire and in `--log-level`.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }

    /// Parses a lowercase level name.
    pub fn parse(text: &str) -> Option<LogLevel> {
        match text {
            "debug" => Some(LogLevel::Debug),
            "info" => Some(LogLevel::Info),
            "warn" => Some(LogLevel::Warn),
            "error" => Some(LogLevel::Error),
            _ => None,
        }
    }
}

/// Builds one event record. `fields` are appended after the standard
/// `seq` / `t_micros` / `level` / `event` header, in the given order.
pub fn log_record(
    seq: u64,
    t_micros: u64,
    level: LogLevel,
    event: &str,
    fields: Vec<(String, Json)>,
) -> Json {
    let mut pairs = Vec::with_capacity(4 + fields.len());
    pairs.push(("seq".to_string(), Json::num(seq as f64)));
    pairs.push(("t_micros".to_string(), Json::num(t_micros as f64)));
    pairs.push(("level".to_string(), Json::Str(level.as_str().to_string())));
    pairs.push(("event".to_string(), Json::Str(event.to_string())));
    pairs.extend(fields);
    Json::Obj(pairs)
}

/// A thread-safe JSONL sink with a minimum severity.
///
/// Writes are line-buffered and flushed per event so the file is
/// always complete up to the last event — a log tailed mid-run or
/// collected after a crash never ends mid-record. Write errors are
/// counted rather than propagated: observability must not take the
/// service down.
pub struct EventLog {
    level: LogLevel,
    inner: Mutex<LogInner>,
}

struct LogInner {
    sink: Box<dyn Write + Send>,
    written: u64,
    write_errors: u64,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("level", &self.level)
            .finish_non_exhaustive()
    }
}

impl EventLog {
    /// A log writing to an arbitrary sink.
    pub fn new(sink: Box<dyn Write + Send>, level: LogLevel) -> EventLog {
        EventLog {
            level,
            inner: Mutex::new(LogInner {
                sink,
                written: 0,
                write_errors: 0,
            }),
        }
    }

    /// A log writing to `path` (created or truncated).
    pub fn to_file(path: &str, level: LogLevel) -> io::Result<EventLog> {
        let file = std::fs::File::create(path)?;
        Ok(EventLog::new(Box::new(file), level))
    }

    /// The minimum severity this sink records.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// Whether an event at `level` would be written — lets callers
    /// skip building records for filtered levels.
    pub fn enabled(&self, level: LogLevel) -> bool {
        level >= self.level
    }

    /// Writes one record as a JSONL line if `level` passes the filter.
    pub fn write(&self, level: LogLevel, record: &Json) {
        if level < self.level {
            return;
        }
        let line = record.to_string();
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let status = writeln!(inner.sink, "{line}").and_then(|_| inner.sink.flush());
        match status {
            Ok(()) => inner.written += 1,
            Err(_) => inner.write_errors += 1,
        }
    }

    /// Lines successfully written so far.
    pub fn written(&self) -> u64 {
        let inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.written
    }

    /// Write or flush failures so far.
    pub fn write_errors(&self) -> u64 {
        let inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.write_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A `Write` handle into a shared buffer the test can inspect.
    #[derive(Clone)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn capture(level: LogLevel) -> (EventLog, Arc<StdMutex<Vec<u8>>>) {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        let log = EventLog::new(Box::new(SharedBuf(buf.clone())), level);
        (log, buf)
    }

    #[test]
    fn records_round_trip_as_jsonl() {
        let (log, buf) = capture(LogLevel::Info);
        let record = log_record(
            7,
            1234,
            LogLevel::Info,
            "request_admitted",
            vec![("span".to_string(), Json::num(7.0))],
        );
        log.write(LogLevel::Info, &record);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let line = text.lines().next().unwrap();
        let back = Json::parse(line).unwrap();
        assert_eq!(back.get("seq").and_then(Json::as_u64), Some(7));
        assert_eq!(back.get("t_micros").and_then(Json::as_u64), Some(1234));
        assert_eq!(
            back.get("event").and_then(Json::as_str),
            Some("request_admitted")
        );
        assert_eq!(back.get("span").and_then(Json::as_u64), Some(7));
        assert_eq!(log.written(), 1);
    }

    #[test]
    fn levels_below_the_filter_are_dropped() {
        let (log, buf) = capture(LogLevel::Warn);
        assert!(!log.enabled(LogLevel::Info));
        assert!(log.enabled(LogLevel::Error));
        log.write(
            LogLevel::Debug,
            &log_record(0, 0, LogLevel::Debug, "wave_start", vec![]),
        );
        log.write(
            LogLevel::Info,
            &log_record(1, 0, LogLevel::Info, "request_admitted", vec![]),
        );
        log.write(
            LogLevel::Error,
            &log_record(2, 0, LogLevel::Error, "request_failed", vec![]),
        );
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("request_failed"));
        assert_eq!(log.written(), 1);
    }

    #[test]
    fn level_names_parse_and_order() {
        assert_eq!(LogLevel::parse("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("error"), Some(LogLevel::Error));
        assert_eq!(LogLevel::parse("loud"), None);
        assert!(LogLevel::Debug < LogLevel::Info);
        assert!(LogLevel::Warn < LogLevel::Error);
        assert_eq!(LogLevel::Info.as_str(), "info");
    }

    #[test]
    fn write_failures_are_counted_not_fatal() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("sink gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let log = EventLog::new(Box::new(Broken), LogLevel::Info);
        log.write(
            LogLevel::Info,
            &log_record(0, 0, LogLevel::Info, "request_admitted", vec![]),
        );
        assert_eq!(log.written(), 0);
        assert_eq!(log.write_errors(), 1);
    }
}
