//! Report diffing: compares two [`RunReport`]s metric by metric against
//! configurable tolerances — the engine behind `flow3d report diff` and
//! the CI perf-regression gate.
//!
//! Only *regressions* (a metric increasing over the baseline) are
//! penalized; improvements always pass. Runtime metrics get loose
//! tolerances (wall time varies across machines), while quality metrics
//! and counters are deterministic per case and can be held tight.

use crate::report::RunReport;
use std::fmt;

/// Severity of one compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiffStatus {
    /// Within the warn tolerance (or improved).
    Pass,
    /// Beyond the warn tolerance but within the fail tolerance, or a
    /// structural mismatch that does not invalidate the comparison
    /// (metric present on only one side).
    Warn,
    /// Beyond the fail tolerance, or reports that are not comparable at
    /// all (different case / legalizer).
    Fail,
}

impl fmt::Display for DiffStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DiffStatus::Pass => "pass",
            DiffStatus::Warn => "WARN",
            DiffStatus::Fail => "FAIL",
        })
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub struct DiffItem {
    /// Metric identifier, e.g. `"phase/legalize/flow_pass"` or
    /// `"quality/avg_disp"`.
    pub metric: String,
    /// Baseline value (`NaN` when absent on that side).
    pub baseline: f64,
    /// Current value (`NaN` when absent on that side).
    pub current: f64,
    /// Relative change in percent (positive = regression); `NaN` for
    /// structural items.
    pub delta_pct: f64,
    /// Verdict under the tolerances the diff ran with.
    pub status: DiffStatus,
}

/// Tolerances for [`diff_reports`], as percent increases over baseline.
///
/// `warn < fail` for each pair; a delta strictly greater than the fail
/// threshold fails, strictly greater than the warn threshold warns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffTolerances {
    /// Warn threshold for runtime metrics (total and per-phase seconds).
    pub rt_warn_pct: f64,
    /// Fail threshold for runtime metrics.
    pub rt_fail_pct: f64,
    /// Warn threshold for quality metrics (displacement, dHPWL) and
    /// histogram percentiles.
    pub disp_warn_pct: f64,
    /// Fail threshold for quality metrics.
    pub disp_fail_pct: f64,
    /// Warn threshold for counter deltas.
    pub counter_warn_pct: f64,
    /// Fail threshold for counter deltas.
    pub counter_fail_pct: f64,
    /// Runtime metrics where both sides are below this many seconds are
    /// skipped — sub-millisecond phases are pure noise.
    pub min_seconds: f64,
}

impl Default for DiffTolerances {
    /// Loose on runtime (machines differ), tight on deterministic
    /// quality and counter metrics.
    fn default() -> Self {
        Self {
            rt_warn_pct: 25.0,
            rt_fail_pct: 100.0,
            disp_warn_pct: 0.5,
            disp_fail_pct: 2.0,
            counter_warn_pct: 5.0,
            counter_fail_pct: 25.0,
            min_seconds: 0.005,
        }
    }
}

/// Counters whose regressions never fail a diff, only warn.
///
/// These are kernel-internal efficiency measures (cache hits, pop-time
/// frontier drops): their values shift whenever search internals are
/// retuned while the *placement* stays bit-identical, so gating CI on
/// them would punish exactly the optimizations they exist to observe.
/// The outcome-facing counters (paths, moves, retries) stay under the
/// full counter tolerances.
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub const ADVISORY_COUNTERS: &[&str] = &[
    crate::counters::keys::BRANCHES_PRUNED_STALE,
    crate::counters::keys::SELECTION_MEMO_HITS,
    crate::counters::keys::SELECTION_MEMO_MISSES,
];

/// The outcome of comparing two reports.
#[derive(Debug, Clone, PartialEq)]
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub struct ReportDiff {
    /// Every compared metric, in comparison order.
    pub items: Vec<DiffItem>,
}

impl ReportDiff {
    /// The most severe status across all items ([`DiffStatus::Pass`]
    /// for an empty diff).
    pub fn worst(&self) -> DiffStatus {
        self.items
            .iter()
            .map(|i| i.status)
            .max()
            .unwrap_or(DiffStatus::Pass)
    }

    /// Items at or above a given severity.
    pub fn at_least(&self, status: DiffStatus) -> impl Iterator<Item = &DiffItem> {
        self.items.iter().filter(move |i| i.status >= status)
    }

    /// Renders an aligned, human-readable verdict table.
    pub fn to_pretty(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let width = self
            .items
            .iter()
            .map(|i| i.metric.len())
            .max()
            .unwrap_or(0)
            .max("metric".len());
        let _ = writeln!(
            out,
            "{:<width$}  {:>12}  {:>12}  {:>9}  status",
            "metric", "baseline", "current", "delta"
        );
        for i in &self.items {
            let delta = if i.delta_pct.is_nan() {
                "-".to_string()
            } else {
                format!("{:+.2} %", i.delta_pct)
            };
            let _ = writeln!(
                out,
                "{:<width$}  {:>12}  {:>12}  {:>9}  {}",
                i.metric,
                fmt_val(i.baseline),
                fmt_val(i.current),
                delta,
                i.status
            );
        }
        let _ = writeln!(out, "\nverdict: {}", self.worst());
        out
    }
}

fn fmt_val(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e12 {
        format!("{v}")
    } else {
        format!("{v:.4}")
    }
}

/// Relative increase of `cur` over `base` in percent; positive means a
/// regression. A zero baseline with a non-zero current reads as an
/// infinite regression.
fn rel_delta_pct(base: f64, cur: f64) -> f64 {
    if base.abs() < 1e-12 {
        if cur.abs() < 1e-12 {
            0.0
        } else if cur > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    } else {
        (cur - base) / base.abs() * 100.0
    }
}

fn classify(delta_pct: f64, warn: f64, fail: f64) -> DiffStatus {
    if delta_pct > fail {
        DiffStatus::Fail
    } else if delta_pct > warn {
        DiffStatus::Warn
    } else {
        DiffStatus::Pass
    }
}

/// Compares `current` against `baseline` under `tol`.
///
/// Compared metrics, in order: report identity (case / legalizer must
/// match), total and per-phase runtime, quality (avg/max displacement,
/// dHPWL), counters, and histogram p99/max. Metrics present on only one
/// side produce [`DiffStatus::Warn`] structural items — they make the
/// diff visible without failing CI on intentional instrumentation
/// changes.
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub fn diff_reports(baseline: &RunReport, current: &RunReport, tol: &DiffTolerances) -> ReportDiff {
    diff_reports_phase(baseline, current, tol, None)
}

/// [`diff_reports`] restricted to the phases whose path contains
/// `phase_filter`.
///
/// With `Some(filter)`, only per-phase runtime metrics matching the
/// filter are compared — identity is still checked, but total runtime,
/// quality, counters, and histograms are skipped. This is the engine
/// behind `flow3d report diff --phase …`: a CI gate can hold one hot
/// phase (e.g. `flow_pass/search_batch`) to a tight wall-clock tolerance
/// without the noise of every other metric. `None` is the full diff.
pub fn diff_reports_phase(
    baseline: &RunReport,
    current: &RunReport,
    tol: &DiffTolerances,
    phase_filter: Option<&str>,
) -> ReportDiff {
    let mut items = Vec::new();
    let structural = |metric: String, base: f64, cur: f64, status: DiffStatus| DiffItem {
        metric,
        baseline: base,
        current: cur,
        delta_pct: f64::NAN,
        status,
    };

    if baseline.case != current.case || baseline.legalizer != current.legalizer {
        items.push(structural(
            format!(
                "identity ({}/{} vs {}/{})",
                baseline.case, baseline.legalizer, current.case, current.legalizer
            ),
            f64::NAN,
            f64::NAN,
            DiffStatus::Fail,
        ));
        return ReportDiff { items };
    }

    let runtime = |metric: String, base: f64, cur: f64, items: &mut Vec<DiffItem>| {
        if base < tol.min_seconds && cur < tol.min_seconds {
            return;
        }
        let delta = rel_delta_pct(base, cur);
        items.push(DiffItem {
            metric,
            baseline: base,
            current: cur,
            delta_pct: delta,
            status: classify(delta, tol.rt_warn_pct, tol.rt_fail_pct),
        });
    };
    if phase_filter.is_none() {
        runtime(
            "total_seconds".to_string(),
            baseline.total_seconds,
            current.total_seconds,
            &mut items,
        );
    }
    let phase_matches = |path: &str| phase_filter.is_none_or(|f| path.contains(f));
    for bp in &baseline.phases {
        if !phase_matches(&bp.path) {
            continue;
        }
        match current.phases.iter().find(|cp| cp.path == bp.path) {
            Some(cp) => runtime(
                format!("phase/{}", bp.path),
                bp.seconds,
                cp.seconds,
                &mut items,
            ),
            None => items.push(structural(
                format!("phase/{} (missing in current)", bp.path),
                bp.seconds,
                f64::NAN,
                DiffStatus::Warn,
            )),
        }
    }
    for cp in &current.phases {
        if !phase_matches(&cp.path) {
            continue;
        }
        if !baseline.phases.iter().any(|bp| bp.path == cp.path) {
            items.push(structural(
                format!("phase/{} (new in current)", cp.path),
                f64::NAN,
                cp.seconds,
                DiffStatus::Warn,
            ));
        }
    }
    if phase_filter.is_some() {
        // A phase-scoped diff compares only the wall-clock of the
        // selected phases; everything else belongs to the full diff.
        return ReportDiff { items };
    }

    let quality = |metric: String, base: f64, cur: f64, items: &mut Vec<DiffItem>| {
        let delta = rel_delta_pct(base, cur);
        items.push(DiffItem {
            metric,
            baseline: base,
            current: cur,
            delta_pct: delta,
            status: classify(delta, tol.disp_warn_pct, tol.disp_fail_pct),
        });
    };
    match (&baseline.quality, &current.quality) {
        (Some(b), Some(c)) => {
            quality(
                "quality/avg_disp".to_string(),
                b.avg_disp,
                c.avg_disp,
                &mut items,
            );
            quality(
                "quality/max_disp".to_string(),
                b.max_disp,
                c.max_disp,
                &mut items,
            );
            quality(
                "quality/dhpwl_pct".to_string(),
                b.dhpwl_pct,
                c.dhpwl_pct,
                &mut items,
            );
        }
        (Some(_), None) => items.push(structural(
            "quality (missing in current)".to_string(),
            f64::NAN,
            f64::NAN,
            DiffStatus::Warn,
        )),
        _ => {}
    }

    for (name, base) in &baseline.counters {
        match current.counters.iter().find(|(n, _)| n == name) {
            Some((_, cur)) => {
                let delta = rel_delta_pct(*base as f64, *cur as f64);
                let mut status = classify(delta, tol.counter_warn_pct, tol.counter_fail_pct);
                if ADVISORY_COUNTERS.contains(&name.as_str()) {
                    status = status.min(DiffStatus::Warn);
                }
                items.push(DiffItem {
                    metric: format!("counter/{name}"),
                    baseline: *base as f64,
                    current: *cur as f64,
                    delta_pct: delta,
                    status,
                });
            }
            None => items.push(structural(
                format!("counter/{name} (missing in current)"),
                *base as f64,
                f64::NAN,
                DiffStatus::Warn,
            )),
        }
    }
    for (name, cur) in &current.counters {
        if !baseline.counters.iter().any(|(n, _)| n == name) {
            items.push(structural(
                format!("counter/{name} (new in current)"),
                f64::NAN,
                *cur as f64,
                DiffStatus::Warn,
            ));
        }
    }

    for bh in &baseline.hists {
        match current.hists.iter().find(|ch| ch.name == bh.name) {
            Some(ch) => {
                quality(format!("hist/{}/p99", bh.name), bh.p99, ch.p99, &mut items);
                quality(format!("hist/{}/max", bh.name), bh.max, ch.max, &mut items);
            }
            None => items.push(structural(
                format!("hist/{} (missing in current)", bh.name),
                f64::NAN,
                f64::NAN,
                DiffStatus::Warn,
            )),
        }
    }
    for ch in &current.hists {
        if !baseline.hists.iter().any(|bh| bh.name == ch.name) {
            items.push(structural(
                format!("hist/{} (new in current)", ch.name),
                f64::NAN,
                f64::NAN,
                DiffStatus::Warn,
            ));
        }
    }

    ReportDiff { items }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{HistReport, PhaseReport, Quality};

    fn report() -> RunReport {
        RunReport {
            case: "case".to_string(),
            legalizer: "flow3d".to_string(),
            total_seconds: 10.0,
            phases: vec![PhaseReport {
                path: "legalize".to_string(),
                seconds: 8.0,
                calls: 1,
            }],
            counters: vec![("cells_moved".to_string(), 1000)],
            hists: vec![HistReport {
                name: "cell_displacement".to_string(),
                count: 100,
                sum: 5000.0,
                min: 1.0,
                max: 200.0,
                p50: 40.0,
                p90: 90.0,
                p99: 150.0,
            }],
            quality: Some(Quality {
                avg_disp: 50.0,
                max_disp: 200.0,
                dhpwl_pct: 0.5,
            }),
            peak_rss_bytes: None,
        }
    }

    fn status_of<'d>(diff: &'d ReportDiff, metric: &str) -> &'d DiffItem {
        diff.items
            .iter()
            .find(|i| i.metric == metric)
            .unwrap_or_else(|| panic!("no item {metric:?} in {:?}", diff.items))
    }

    #[test]
    fn identical_reports_pass_everything() {
        let r = report();
        let diff = diff_reports(&r, &r, &DiffTolerances::default());
        assert_eq!(diff.worst(), DiffStatus::Pass);
        assert!(!diff.items.is_empty());
    }

    #[test]
    fn improvements_always_pass() {
        let base = report();
        let mut cur = report();
        cur.total_seconds = 1.0;
        cur.quality.as_mut().unwrap().avg_disp = 10.0;
        cur.counters[0].1 = 1;
        let diff = diff_reports(&base, &cur, &DiffTolerances::default());
        assert_eq!(diff.worst(), DiffStatus::Pass);
    }

    #[test]
    fn runtime_tolerance_boundaries() {
        let tol = DiffTolerances::default(); // warn 25, fail 100
        let base = report();

        // Exactly at the warn threshold: +25.0 % is not > 25.0 → Pass.
        let mut cur = report();
        cur.total_seconds = 12.5;
        let diff = diff_reports(&base, &cur, &tol);
        assert_eq!(status_of(&diff, "total_seconds").status, DiffStatus::Pass);

        // Just beyond warn, within fail → Warn.
        cur.total_seconds = 12.6;
        let diff = diff_reports(&base, &cur, &tol);
        assert_eq!(status_of(&diff, "total_seconds").status, DiffStatus::Warn);
        assert_eq!(diff.worst(), DiffStatus::Warn);

        // Exactly at fail (+100 %) → still Warn; beyond → Fail.
        cur.total_seconds = 20.0;
        let diff = diff_reports(&base, &cur, &tol);
        assert_eq!(status_of(&diff, "total_seconds").status, DiffStatus::Warn);
        cur.total_seconds = 20.1;
        let diff = diff_reports(&base, &cur, &tol);
        assert_eq!(status_of(&diff, "total_seconds").status, DiffStatus::Fail);
        assert_eq!(diff.worst(), DiffStatus::Fail);
    }

    #[test]
    fn quality_regression_fails_tight_tolerance() {
        let base = report();
        let mut cur = report();
        // +3 % average displacement: beyond the 2 % fail threshold.
        cur.quality.as_mut().unwrap().avg_disp = 51.5;
        let diff = diff_reports(&base, &cur, &DiffTolerances::default());
        assert_eq!(
            status_of(&diff, "quality/avg_disp").status,
            DiffStatus::Fail
        );
    }

    #[test]
    fn hist_percentile_regression_is_detected() {
        let base = report();
        let mut cur = report();
        cur.hists[0].p99 = 200.0; // +33 %
        let diff = diff_reports(&base, &cur, &DiffTolerances::default());
        assert_eq!(
            status_of(&diff, "hist/cell_displacement/p99").status,
            DiffStatus::Fail
        );
    }

    #[test]
    fn tiny_runtimes_are_skipped() {
        let mut base = report();
        let mut cur = report();
        base.phases[0].seconds = 0.0001;
        cur.phases[0].seconds = 0.004; // 40x, but both under min_seconds
        base.total_seconds = 0.004;
        cur.total_seconds = 0.004;
        let diff = diff_reports(&base, &cur, &DiffTolerances::default());
        assert!(diff.items.iter().all(|i| !i.metric.starts_with("phase/")));
        assert_eq!(diff.worst(), DiffStatus::Pass);
    }

    #[test]
    fn structural_mismatches_warn_not_fail() {
        let base = report();
        let mut cur = report();
        cur.phases.push(PhaseReport {
            path: "legalize/new_phase".to_string(),
            seconds: 1.0,
            calls: 1,
        });
        cur.counters.clear();
        cur.hists.clear();
        let diff = diff_reports(&base, &cur, &DiffTolerances::default());
        assert_eq!(diff.worst(), DiffStatus::Warn);
        assert!(diff.at_least(DiffStatus::Warn).count() >= 3);
    }

    #[test]
    fn mismatched_identity_fails_immediately() {
        let base = report();
        let mut cur = report();
        cur.case = "other_case".to_string();
        let diff = diff_reports(&base, &cur, &DiffTolerances::default());
        assert_eq!(diff.worst(), DiffStatus::Fail);
        assert_eq!(diff.items.len(), 1);
    }

    #[test]
    fn zero_baseline_regression_is_infinite() {
        let mut base = report();
        let mut cur = report();
        base.counters[0].1 = 0;
        cur.counters[0].1 = 5;
        let diff = diff_reports(&base, &cur, &DiffTolerances::default());
        assert_eq!(
            status_of(&diff, "counter/cells_moved").status,
            DiffStatus::Fail
        );
    }

    #[test]
    fn advisory_counters_warn_but_never_fail() {
        let mut base = report();
        let mut cur = report();
        base.counters.push(("selection_memo_hits".to_string(), 100));
        cur.counters.push(("selection_memo_hits".to_string(), 500)); // +400 %
        let diff = diff_reports(&base, &cur, &DiffTolerances::default());
        assert_eq!(
            status_of(&diff, "counter/selection_memo_hits").status,
            DiffStatus::Warn,
            "advisory counters cap at Warn"
        );
        // A regular counter with the same regression still fails.
        cur.counters[0].1 = 5000;
        let diff = diff_reports(&base, &cur, &DiffTolerances::default());
        assert_eq!(
            status_of(&diff, "counter/cells_moved").status,
            DiffStatus::Fail
        );
    }

    #[test]
    fn phase_filter_scopes_the_diff_to_matching_phases() {
        let mut base = report();
        let mut cur = report();
        base.phases.push(PhaseReport {
            path: "legalize/flow_pass/search_batch".to_string(),
            seconds: 2.0,
            calls: 1,
        });
        cur.phases.push(PhaseReport {
            path: "legalize/flow_pass/search_batch".to_string(),
            seconds: 5.0, // +150 %: beyond the default fail threshold
            calls: 1,
        });
        // Unfiltered items the scoped diff must ignore: a huge total
        // regression and a counter regression.
        cur.total_seconds = 100.0;
        cur.counters[0].1 = 100_000;

        let tol = DiffTolerances {
            min_seconds: 0.0,
            ..DiffTolerances::default()
        };
        let diff = diff_reports_phase(&base, &cur, &tol, Some("flow_pass/search_batch"));
        assert_eq!(diff.items.len(), 1, "{:?}", diff.items);
        assert_eq!(
            status_of(&diff, "phase/legalize/flow_pass/search_batch").status,
            DiffStatus::Fail
        );
        // The same inputs with no filter still see the other regressions.
        let full = diff_reports(&base, &cur, &tol);
        assert!(full.items.len() > 1);
    }

    #[test]
    fn phase_filter_still_rejects_mismatched_identity() {
        let base = report();
        let mut cur = report();
        cur.case = "other_case".to_string();
        let diff = diff_reports_phase(
            &base,
            &cur,
            &DiffTolerances::default(),
            Some("search_batch"),
        );
        assert_eq!(diff.worst(), DiffStatus::Fail);
    }

    #[test]
    fn missing_rows_warn_in_both_directions() {
        let mut base = report();
        let mut cur = report();
        base.phases.push(PhaseReport {
            path: "legalize/retired".to_string(),
            seconds: 1.0,
            calls: 1,
        });
        cur.phases.push(PhaseReport {
            path: "serve/load".to_string(),
            seconds: 1.0,
            calls: 1,
        });
        let diff = diff_reports(&base, &cur, &DiffTolerances::default());
        let gone = status_of(&diff, "phase/legalize/retired (missing in current)");
        assert_eq!(gone.status, DiffStatus::Warn);
        assert!(gone.delta_pct.is_nan(), "structural items carry no delta");
        assert_eq!(
            status_of(&diff, "phase/serve/load (new in current)").status,
            DiffStatus::Warn
        );
        assert_eq!(diff.worst(), DiffStatus::Warn);
    }

    #[test]
    fn zero_valued_baseline_phase_reads_as_infinite_regression() {
        let mut base = report();
        let mut cur = report();
        base.phases[0].seconds = 0.0;
        cur.phases[0].seconds = 8.0;
        let diff = diff_reports(&base, &cur, &DiffTolerances::default());
        let item = status_of(&diff, "phase/legalize");
        assert!(item.delta_pct.is_infinite() && item.delta_pct > 0.0);
        assert_eq!(item.status, DiffStatus::Fail);

        // Zero on both sides sits under the min-seconds floor: skipped.
        cur.phases[0].seconds = 0.0;
        let diff = diff_reports(&base, &cur, &DiffTolerances::default());
        assert!(!diff.items.iter().any(|i| i.metric == "phase/legalize"));
    }

    #[test]
    fn histogram_added_in_candidate_only_warns() {
        let base = report();
        let mut cur = report();
        cur.hists.push(HistReport {
            name: "serve_request_micros".to_string(),
            count: 5,
            sum: 50.0,
            min: 1.0,
            max: 20.0,
            p50: 8.0,
            p90: 15.0,
            p99: 19.0,
        });
        let diff = diff_reports(&base, &cur, &DiffTolerances::default());
        assert_eq!(
            status_of(&diff, "hist/serve_request_micros (new in current)").status,
            DiffStatus::Warn
        );
        assert_eq!(diff.worst(), DiffStatus::Warn);
    }

    #[test]
    fn serve_latency_regression_fails_the_scoped_gate() {
        // The CI serve gate in miniature: `--phase serve/eco_request
        // --rt-warn-pct 5 --rt-fail-pct 10`. An injected 12 % latency
        // inflation must fail while nothing else is even compared.
        let mut base = report();
        base.phases.push(PhaseReport {
            path: "serve/eco_request".to_string(),
            seconds: 0.5,
            calls: 16,
        });
        let mut cur = base.clone();
        cur.phases.last_mut().unwrap().seconds = 0.56; // +12 %
        cur.counters[0].1 = 100_000; // out of scope for the gate
        let tol = DiffTolerances {
            rt_warn_pct: 5.0,
            rt_fail_pct: 10.0,
            min_seconds: 0.0,
            ..DiffTolerances::default()
        };
        let diff = diff_reports_phase(&base, &cur, &tol, Some("serve/eco_request"));
        assert_eq!(diff.items.len(), 1, "{:?}", diff.items);
        assert_eq!(
            status_of(&diff, "phase/serve/eco_request").status,
            DiffStatus::Fail
        );
        // An unchanged serve row passes the same gate.
        let diff = diff_reports_phase(&base, &base.clone(), &tol, Some("serve/eco_request"));
        assert_eq!(diff.worst(), DiffStatus::Pass);
    }

    #[test]
    fn pretty_output_names_metrics_and_verdict() {
        let base = report();
        let mut cur = report();
        cur.total_seconds = 25.0;
        let diff = diff_reports(&base, &cur, &DiffTolerances::default());
        let text = diff.to_pretty();
        assert!(text.contains("total_seconds"));
        assert!(text.contains("verdict: FAIL"));
    }
}
