//! [`RunReport`]: the serializable summary of one instrumented run —
//! phase timings, counters, and solution-quality metrics.

use crate::json::{Json, JsonError};
use crate::profile::Profile;
use std::fmt::Write as _;

/// Timing of one phase path within a run.
#[derive(Debug, Clone, PartialEq)]
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub struct PhaseReport {
    /// Slash-separated phase path, e.g. `"legalize/flow_pass"`.
    pub path: String,
    /// Total wall time in seconds, summed over calls.
    pub seconds: f64,
    /// How many times the phase was entered.
    pub calls: u64,
}

/// Summary of one named histogram within a run (see
/// [`Histogram::summary`](crate::Histogram::summary)).
#[derive(Debug, Clone, PartialEq)]
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub struct HistReport {
    /// Histogram name, e.g. `"cell_displacement"`.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Estimated 50th percentile.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// Solution-quality metrics attached to a run (the paper's Table III/IV
/// columns).
#[derive(Debug, Clone, PartialEq)]
pub struct Quality {
    /// Mean cell displacement between global and legalized placement, in
    /// database units.
    pub avg_disp: f64,
    /// Maximum cell displacement, in database units.
    pub max_disp: f64,
    /// HPWL degradation of the legalized placement relative to the
    /// global placement, in percent.
    pub dhpwl_pct: f64,
}

/// A complete run summary, serializable to JSON and to an aligned text
/// table.
///
/// Build one from a finished [`Profile`] with
/// [`from_profile`](RunReport::from_profile), optionally attach
/// [`Quality`], then emit with [`to_json`](RunReport::to_json) or
/// [`to_pretty`](RunReport::to_pretty). [`from_json`](RunReport::from_json)
/// inverts `to_json` exactly (up to float round-tripping, which Rust's
/// shortest-repr formatting makes lossless).
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Benchmark case name, e.g. `"iccad2022_case2"`.
    pub case: String,
    /// Legalizer name, e.g. `"flow3d"`.
    pub legalizer: String,
    /// Wall time of the whole run in seconds (phase times are nested
    /// inside this).
    pub total_seconds: f64,
    /// Per-phase timings, in first-entry order.
    pub phases: Vec<PhaseReport>,
    /// Counter values, in name order.
    pub counters: Vec<(String, u64)>,
    /// Histogram summaries, in name order (non-empty histograms only).
    pub hists: Vec<HistReport>,
    /// Quality metrics, when the caller computed them.
    pub quality: Option<Quality>,
    /// Peak resident set size of the process in bytes, when the caller
    /// sampled it (see [`peak_rss_bytes`](crate::peak_rss_bytes)).
    /// Machine-dependent, so the report diff ignores it.
    pub peak_rss_bytes: Option<u64>,
}

impl RunReport {
    /// Snapshots a profile into a report.
    pub fn from_profile(case: &str, legalizer: &str, profile: &Profile) -> Self {
        Self {
            case: case.to_string(),
            legalizer: legalizer.to_string(),
            total_seconds: profile.total_elapsed().as_secs_f64(),
            phases: profile
                .phases()
                .map(|(path, stats)| PhaseReport {
                    path: path.to_string(),
                    seconds: stats.total.as_secs_f64(),
                    calls: stats.calls,
                })
                .collect(),
            counters: profile
                .counters()
                .iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            hists: profile
                .hists()
                .iter()
                .filter(|(_, h)| h.count() > 0)
                .map(|(name, h)| {
                    let s = h.summary();
                    HistReport {
                        name: name.to_string(),
                        count: s.count,
                        sum: s.sum,
                        min: s.min,
                        max: s.max,
                        p50: s.p50,
                        p90: s.p90,
                        p99: s.p99,
                    }
                })
                .collect(),
            quality: None,
            peak_rss_bytes: None,
        }
    }

    /// Attaches quality metrics (builder style).
    pub fn with_quality(mut self, quality: Quality) -> Self {
        self.quality = Some(quality);
        self
    }

    /// Value of a named counter, when the run recorded it.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Selection-memo hit rate `hits / (hits + misses)` over the run's
    /// counters, or `None` when the memo was **disabled** (neither
    /// counter recorded — the flow pass bumps them only with
    /// `selection_memo` on, even for zero values). A run that had the
    /// memo enabled but took no hits reports `Some(0.0)`, so "cold this
    /// request" and "memo off" stay distinguishable downstream
    /// (serve `stats`, `repro bench`).
    pub fn selection_memo_hit_rate(&self) -> Option<f64> {
        let hits = self.counter(crate::keys::SELECTION_MEMO_HITS);
        let misses = self.counter(crate::keys::SELECTION_MEMO_MISSES);
        if hits.is_none() && misses.is_none() {
            return None;
        }
        let hits = hits.unwrap_or(0);
        let total = hits + misses.unwrap_or(0);
        if total == 0 {
            // Enabled but no lookups ran (e.g. no overflow, so no
            // searches): a defined 0.0, not "disabled".
            return Some(0.0);
        }
        Some(hits as f64 / total as f64)
    }

    /// Attaches a peak-RSS sample in bytes (builder style). Not filled
    /// in by [`from_profile`](Self::from_profile) — the gauge is a
    /// process-wide high-water mark, so sampling is an explicit caller
    /// decision, taken right after the work being measured.
    pub fn with_peak_rss(mut self, bytes: u64) -> Self {
        self.peak_rss_bytes = Some(bytes);
        self
    }

    /// Serializes to a compact JSON document.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("case".to_string(), Json::Str(self.case.clone())),
            ("legalizer".to_string(), Json::Str(self.legalizer.clone())),
            ("total_seconds".to_string(), Json::num(self.total_seconds)),
            (
                "phases".to_string(),
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("path".to_string(), Json::Str(p.path.clone())),
                                ("seconds".to_string(), Json::num(p.seconds)),
                                ("calls".to_string(), Json::Num(p.calls as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
        ];
        if !self.hists.is_empty() {
            fields.push((
                "histograms".to_string(),
                Json::Arr(
                    self.hists
                        .iter()
                        .map(|h| {
                            Json::Obj(vec![
                                ("name".to_string(), Json::Str(h.name.clone())),
                                ("count".to_string(), Json::Num(h.count as f64)),
                                ("sum".to_string(), Json::num(h.sum)),
                                ("min".to_string(), Json::num(h.min)),
                                ("max".to_string(), Json::num(h.max)),
                                ("p50".to_string(), Json::num(h.p50)),
                                ("p90".to_string(), Json::num(h.p90)),
                                ("p99".to_string(), Json::num(h.p99)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(q) = &self.quality {
            fields.push((
                "quality".to_string(),
                Json::Obj(vec![
                    ("avg_disp".to_string(), Json::num(q.avg_disp)),
                    ("max_disp".to_string(), Json::num(q.max_disp)),
                    ("dhpwl_pct".to_string(), Json::num(q.dhpwl_pct)),
                ]),
            ));
        }
        if let Some(rss) = self.peak_rss_bytes {
            fields.push(("peak_rss_bytes".to_string(), Json::Num(rss as f64)));
        }
        Json::Obj(fields).to_string()
    }

    /// Parses a report previously produced by [`to_json`](Self::to_json).
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let doc = Json::parse(text)?;
        let missing = |field: &str| JsonError {
            message: format!("missing or ill-typed field '{field}'"),
            offset: 0,
        };
        let case = doc
            .get("case")
            .and_then(Json::as_str)
            .ok_or_else(|| missing("case"))?
            .to_string();
        let legalizer = doc
            .get("legalizer")
            .and_then(Json::as_str)
            .ok_or_else(|| missing("legalizer"))?
            .to_string();
        let total_seconds = doc
            .get("total_seconds")
            .and_then(Json::as_f64)
            .ok_or_else(|| missing("total_seconds"))?;
        let mut phases = Vec::new();
        for p in doc
            .get("phases")
            .and_then(Json::as_array)
            .ok_or_else(|| missing("phases"))?
        {
            phases.push(PhaseReport {
                path: p
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("phases[].path"))?
                    .to_string(),
                seconds: p
                    .get("seconds")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| missing("phases[].seconds"))?,
                calls: p
                    .get("calls")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| missing("phases[].calls"))?,
            });
        }
        let mut counters = Vec::new();
        match doc.get("counters") {
            Some(Json::Obj(pairs)) => {
                for (k, v) in pairs {
                    counters.push((
                        k.clone(),
                        v.as_u64().ok_or_else(|| missing("counters values"))?,
                    ));
                }
            }
            _ => return Err(missing("counters")),
        }
        let mut hists = Vec::new();
        // "histograms" is optional: pre-telemetry reports omit it.
        if let Some(arr) = doc.get("histograms").and_then(Json::as_array) {
            for h in arr {
                let num = |field: &'static str| {
                    h.get(field)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| missing(&format!("histograms[].{field}")))
                };
                hists.push(HistReport {
                    name: h
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| missing("histograms[].name"))?
                        .to_string(),
                    count: h
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| missing("histograms[].count"))?,
                    sum: num("sum")?,
                    min: num("min")?,
                    max: num("max")?,
                    p50: num("p50")?,
                    p90: num("p90")?,
                    p99: num("p99")?,
                });
            }
        }
        let quality = match doc.get("quality") {
            None => None,
            Some(q) => Some(Quality {
                avg_disp: q
                    .get("avg_disp")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| missing("quality.avg_disp"))?,
                max_disp: q
                    .get("max_disp")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| missing("quality.max_disp"))?,
                dhpwl_pct: q
                    .get("dhpwl_pct")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| missing("quality.dhpwl_pct"))?,
            }),
        };
        // Optional like "histograms"/"quality": absent on non-Linux runs
        // and in pre-gauge reports.
        let peak_rss_bytes = doc.get("peak_rss_bytes").and_then(Json::as_u64);
        Ok(Self {
            case,
            legalizer,
            total_seconds,
            phases,
            counters,
            hists,
            quality,
            peak_rss_bytes,
        })
    }

    /// Renders an aligned, human-readable text table.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "run report: {} ({})", self.case, self.legalizer);
        let _ = writeln!(out, "total: {:.3} s", self.total_seconds);
        if !self.phases.is_empty() {
            let width = self
                .phases
                .iter()
                .map(|p| p.path.len())
                .max()
                .unwrap_or(0)
                .max("phase".len());
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "{:<width$}  {:>10}  {:>6}  {:>7}",
                "phase", "time", "%", "calls"
            );
            for p in &self.phases {
                let pct = if self.total_seconds > 0.0 {
                    100.0 * p.seconds / self.total_seconds
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "{:<width$}  {:>8.3} s  {:>6.1}  {:>7}",
                    p.path, p.seconds, pct, p.calls
                );
            }
        }
        if !self.counters.is_empty() {
            let width = self
                .counters
                .iter()
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            let _ = writeln!(out);
            let _ = writeln!(out, "counters");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<width$} = {v}");
            }
            if let Some(rate) = self.selection_memo_hit_rate() {
                let _ = writeln!(out, "  selection memo hit rate: {:.1} %", 100.0 * rate);
            }
        }
        if !self.hists.is_empty() {
            let width = self
                .hists
                .iter()
                .map(|h| h.name.len())
                .max()
                .unwrap_or(0)
                .max("histogram".len());
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "{:<width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
                "histogram", "count", "p50", "p90", "p99", "max"
            );
            for h in &self.hists {
                let _ = writeln!(
                    out,
                    "{:<width$}  {:>8}  {:>10.2}  {:>10.2}  {:>10.2}  {:>10.2}",
                    h.name, h.count, h.p50, h.p90, h.p99, h.max
                );
            }
        }
        if let Some(q) = &self.quality {
            let _ = writeln!(out);
            let _ = writeln!(out, "quality");
            let _ = writeln!(out, "  avg displacement = {:.3}", q.avg_disp);
            let _ = writeln!(out, "  max displacement = {:.3}", q.max_disp);
            let _ = writeln!(out, "  dHPWL            = {:.3} %", q.dhpwl_pct);
        }
        if let Some(rss) = self.peak_rss_bytes {
            let _ = writeln!(out);
            let _ = writeln!(out, "peak RSS = {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            case: "iccad2022_case2".to_string(),
            legalizer: "flow3d".to_string(),
            total_seconds: 1.5,
            phases: vec![
                PhaseReport {
                    path: "legalize".to_string(),
                    seconds: 1.25,
                    calls: 1,
                },
                PhaseReport {
                    path: "legalize/flow_pass".to_string(),
                    seconds: 0.75,
                    calls: 3,
                },
            ],
            counters: vec![
                ("cells_moved".to_string(), 678),
                ("nodes_expanded".to_string(), 12345),
            ],
            hists: vec![HistReport {
                name: "cell_displacement".to_string(),
                count: 4321,
                sum: 8000.5,
                min: 0.0,
                max: 312.0,
                p50: 1.5,
                p90: 12.0,
                p99: 100.25,
            }],
            quality: Some(Quality {
                avg_disp: 1.25,
                max_disp: 10.0,
                dhpwl_pct: 0.52,
            }),
            peak_rss_bytes: Some(123 * 1024 * 1024),
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample();
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn json_round_trips_without_quality() {
        let report = RunReport {
            quality: None,
            hists: Vec::new(),
            ..sample()
        };
        let json = report.to_json();
        assert!(!json.contains("histograms"), "empty hists omitted: {json}");
        let parsed = RunReport::from_json(&json).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn selection_memo_hit_rate_from_counters() {
        let mut report = sample();
        assert_eq!(report.selection_memo_hit_rate(), None, "no memo counters");
        report
            .counters
            .push((crate::keys::SELECTION_MEMO_HITS.to_string(), 30));
        report
            .counters
            .push((crate::keys::SELECTION_MEMO_MISSES.to_string(), 10));
        assert_eq!(report.selection_memo_hit_rate(), Some(0.75));
        let pretty = report.to_pretty();
        assert!(
            pretty.contains("selection memo hit rate: 75.0 %"),
            "{pretty}"
        );
        report.counters.retain(|(k, _)| !k.contains("memo"));
        report
            .counters
            .push((crate::keys::SELECTION_MEMO_MISSES.to_string(), 10));
        assert_eq!(
            report.selection_memo_hit_rate(),
            Some(0.0),
            "all-miss runs report 0.0 so callers can warn"
        );
        report.counters.retain(|(k, _)| !k.contains("memo"));
        report
            .counters
            .push((crate::keys::SELECTION_MEMO_HITS.to_string(), 0));
        report
            .counters
            .push((crate::keys::SELECTION_MEMO_MISSES.to_string(), 0));
        assert_eq!(
            report.selection_memo_hit_rate(),
            Some(0.0),
            "enabled-but-idle (0/0 counters present) is 0.0, not None"
        );
    }

    #[test]
    fn from_profile_snapshots_phases_counters_and_hists() {
        let mut p = Profile::new();
        p.begin("a");
        p.begin("b");
        p.bump("k", 3);
        p.record("disp", 2.0);
        p.record("disp", 6.0);
        p.end("b");
        p.end("a");
        let report = RunReport::from_profile("case", "lg", &p);
        assert_eq!(report.case, "case");
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].path, "a");
        assert_eq!(report.phases[1].path, "a/b");
        assert_eq!(report.counters, vec![("k".to_string(), 3)]);
        assert_eq!(report.hists.len(), 1);
        assert_eq!(report.hists[0].name, "disp");
        assert_eq!(report.hists[0].count, 2);
        assert_eq!(report.hists[0].min, 2.0);
        assert_eq!(report.hists[0].max, 6.0);
        assert!(report.total_seconds >= report.phases[0].seconds);
    }

    #[test]
    fn empty_histograms_are_not_reported() {
        let mut p = Profile::new();
        p.hists_mut().entry("untouched_via_entry");
        let report = RunReport::from_profile("case", "lg", &p);
        assert!(report.hists.is_empty());
    }

    #[test]
    fn pretty_output_mentions_everything() {
        let text = sample().to_pretty();
        for needle in [
            "iccad2022_case2",
            "flow3d",
            "legalize/flow_pass",
            "nodes_expanded",
            "12345",
            "cell_displacement",
            "dHPWL",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn from_json_rejects_malformed_reports() {
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("not json").is_err());
        assert!(RunReport::from_json(r#"{"case": 3}"#).is_err());
    }
}
