//! Event tracing: per-thread [`TraceEvent`] streams recorded inside a
//! [`Profile`](crate::Profile) and exported as Chrome `trace_event`
//! JSON, so a run opens directly in Perfetto or `chrome://tracing`.
//!
//! # Recording model
//!
//! Tracing is off by default; [`Profile::enable_tracing`](crate::Profile::enable_tracing) arms it for
//! the coordinator and establishes the *epoch* — the instant all event
//! timestamps are measured from. Each pool worker records into its own
//! `Profile` created with [`Profile::new_worker`](crate::Profile::new_worker), which shares the
//! coordinator's epoch so worker timestamps land on the same timeline.
//! Recording an event is a `Vec::push` on thread-local data — no lock,
//! no allocation beyond the event itself — and happens only when the
//! scope *closes*, so an armed profile stays cheap inside hot loops.
//!
//! Workers record with a placeholder track id; the coordinator retags
//! the events with the worker's stable index while merging
//! ([`Profile::merge_nested_worker`](crate::Profile::merge_nested_worker)), which keeps the export layout a
//! pure function of the merge order rather than of OS thread ids.

use crate::json::Json;
use std::time::Duration;

/// The phase of a trace event, mirroring the Chrome `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A complete span with a start timestamp and a duration (`"X"`).
    Complete,
    /// A zero-duration marker (`"i"`, thread-scoped).
    Instant,
}

/// One recorded event on some track's timeline.
#[derive(Debug, Clone, PartialEq)]
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub struct TraceEvent {
    /// Leaf phase name (not the slash-joined path — Perfetto nests by
    /// timing, so the leaf keeps labels short).
    pub name: String,
    /// Track id: 0 is the coordinator, `n >= 1` the n-th pool worker of
    /// a batch.
    pub track: u32,
    /// Start time relative to the trace epoch.
    pub start: Duration,
    /// Span duration (zero for instants).
    pub duration: Duration,
    /// Complete span or instant marker.
    pub phase: TracePhase,
}

/// Human-readable name for a track id, used for Perfetto thread labels.
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub fn track_name(track: u32) -> String {
    if track == 0 {
        "coordinator".to_string()
    } else {
        format!("worker-{track}")
    }
}

/// Renders events as a Chrome `trace_event` JSON document (the
/// "JSON Object Format": `{"traceEvents": [...]}`).
///
/// Events are emitted in timestamp order (stable-sorted, so same-tick
/// events keep their recording order), preceded by `M` metadata records
/// naming the process and each track. Timestamps are microseconds, as
/// the format requires.
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub fn chrome_trace_json(process: &str, events: &[TraceEvent]) -> String {
    let us = |d: Duration| Json::num(d.as_secs_f64() * 1e6);
    let mut records: Vec<Json> = Vec::with_capacity(events.len() + 8);

    records.push(Json::Obj(vec![
        ("ph".to_string(), Json::Str("M".to_string())),
        ("pid".to_string(), Json::Num(1.0)),
        ("name".to_string(), Json::Str("process_name".to_string())),
        (
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), Json::Str(process.to_string()))]),
        ),
    ]));
    let mut tracks: Vec<u32> = events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for t in &tracks {
        records.push(Json::Obj(vec![
            ("ph".to_string(), Json::Str("M".to_string())),
            ("pid".to_string(), Json::Num(1.0)),
            ("tid".to_string(), Json::Num(*t as f64)),
            ("name".to_string(), Json::Str("thread_name".to_string())),
            (
                "args".to_string(),
                Json::Obj(vec![("name".to_string(), Json::Str(track_name(*t)))]),
            ),
        ]));
    }

    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by_key(|e| e.start);
    for e in ordered {
        let mut fields = vec![
            (
                "ph".to_string(),
                Json::Str(
                    match e.phase {
                        TracePhase::Complete => "X",
                        TracePhase::Instant => "i",
                    }
                    .to_string(),
                ),
            ),
            ("pid".to_string(), Json::Num(1.0)),
            ("tid".to_string(), Json::Num(e.track as f64)),
            ("ts".to_string(), us(e.start)),
            ("name".to_string(), Json::Str(e.name.clone())),
        ];
        match e.phase {
            TracePhase::Complete => fields.push(("dur".to_string(), us(e.duration))),
            TracePhase::Instant => fields.push(("s".to_string(), Json::Str("t".to_string()))),
        }
        records.push(Json::Obj(fields));
    }

    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(records)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, track: u32, start_us: u64, dur_us: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            track,
            start: Duration::from_micros(start_us),
            duration: Duration::from_micros(dur_us),
            phase: TracePhase::Complete,
        }
    }

    #[test]
    fn export_is_valid_json_with_metadata_and_spans() {
        let events = vec![ev("outer", 0, 0, 100), ev("inner", 1, 10, 20)];
        let text = chrome_trace_json("flow3d", &events);
        let doc = Json::parse(&text).expect("export parses");
        let records = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        // 1 process_name + 2 thread_name + 2 spans.
        assert_eq!(records.len(), 5);
        let spans: Vec<&Json> = records
            .iter()
            .filter(|r| r.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("name").and_then(Json::as_str), Some("outer"));
        assert_eq!(spans[0].get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(spans[0].get("dur").and_then(Json::as_f64), Some(100.0));
        assert_eq!(spans[1].get("tid").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn events_are_sorted_by_timestamp_stably() {
        let events = vec![
            ev("late", 0, 50, 1),
            ev("early", 1, 5, 1),
            ev("tied_first", 0, 5, 1),
        ];
        let text = chrome_trace_json("p", &events);
        let doc = Json::parse(&text).unwrap();
        let names: Vec<String> = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter(|r| r.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|r| r.get("name").and_then(Json::as_str).unwrap().to_string())
            .collect();
        // 5µs ties keep recording order: "early" before "tied_first".
        assert_eq!(names, ["early", "tied_first", "late"]);
    }

    #[test]
    fn instants_carry_scope_not_duration() {
        let events = vec![TraceEvent {
            name: "mark".to_string(),
            track: 2,
            start: Duration::from_micros(7),
            duration: Duration::ZERO,
            phase: TracePhase::Instant,
        }];
        let text = chrome_trace_json("p", &events);
        let doc = Json::parse(&text).unwrap();
        let inst = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .find(|r| r.get("ph").and_then(Json::as_str) == Some("i"))
            .cloned()
            .unwrap();
        assert_eq!(inst.get("s").and_then(Json::as_str), Some("t"));
        assert!(inst.get("dur").is_none());
    }

    #[test]
    fn track_names_distinguish_coordinator_and_workers() {
        assert_eq!(track_name(0), "coordinator");
        assert_eq!(track_name(3), "worker-3");
    }
}
