//! The counter registry: named monotonic `u64` event counters.

use std::fmt;

/// Well-known counter names used by the legalization pipeline.
///
/// Using shared constants keeps producer (core) and consumer (reports,
/// tests) spellings in sync; the registry itself accepts any name.
pub mod keys {
    /// Search-tree nodes expanded by the best-first search (Alg. 1).
    pub const NODES_EXPANDED: &str = "nodes_expanded";
    /// Search-tree nodes created (pushed to the frontier).
    pub const NODES_CREATED: &str = "nodes_created";
    /// Branches pruned by the cost bound `(1 + α)·c_min`.
    pub const BRANCHES_PRUNED: &str = "branches_pruned";
    /// Frontier entries dropped at pop time because the bound tightened
    /// after they were queued (they were never expanded).
    pub const BRANCHES_PRUNED_STALE: &str = "branches_pruned_stale";
    /// Selection-memo lookups answered from the cache during path search.
    pub const SELECTION_MEMO_HITS: &str = "selection_memo_hits";
    /// Selection-memo lookups that had to run `select_moves`.
    pub const SELECTION_MEMO_MISSES: &str = "selection_memo_misses";
    /// Augmenting paths found and realized.
    pub const AUGMENTING_PATHS: &str = "augmenting_paths";
    /// Bounded-search retries after a no-path round (limit halving, then
    /// the relaxed full search).
    pub const SEARCH_RETRIES: &str = "search_retries";
    /// Whole cells moved while realizing augmenting paths.
    pub const CELLS_MOVED: &str = "cells_moved";
    /// Abacus `PlaceRow` invocations during final row legalization.
    pub const PLACEROW_CALLS: &str = "placerow_calls";
    /// Cycle-canceling post-optimization passes that re-ran legalization.
    pub const CYCLE_RELEGALIZATIONS: &str = "cycle_relegalizations";
    /// Cells teleported by the last-resort fallback when no augmenting
    /// path exists.
    pub const FALLBACK_MOVES: &str = "fallback_moves";
    /// Flow passes executed (used to index per-pass telemetry such as
    /// heatmap snapshots).
    pub const FLOW_PASSES: &str = "flow_passes";
    /// Directed bin edges tabooed by the flow-pass ping-pong detector
    /// (A↔B oscillations caught before they burn the apply guard).
    pub const PING_PONG_TABUS: &str = "ping_pong_tabus";
    /// Resolved placement seeds refreshed by a resident engine's
    /// `commit()` delta (cells whose base placement actually changed).
    pub const COMMIT_RESEEDED: &str = "commit_reseeded";
    /// Total resolved placement seeds examined by `commit()`.
    pub const COMMIT_SEEDS: &str = "commit_seeds";
}

/// A name-sorted set of named monotonic counters.
///
/// Entries are kept sorted by name at all times, so iteration order —
/// and therefore every serialized report — is a pure function of *which*
/// counters were touched, never of the order threads happened to touch
/// them. That makes merged worker counter sets bit-identical across
/// `FLOW3D_THREADS` settings. The pipeline registers on the order of ten
/// counters, so the binary searches here are effectively free.
///
/// ```
/// use flow3d_obs::CounterSet;
///
/// let mut c = CounterSet::new();
/// c.bump("nodes_expanded", 3);
/// c.bump("nodes_expanded", 2);
/// assert_eq!(c.get("nodes_expanded"), 5);
/// assert_eq!(c.get("never_touched"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub struct CounterSet {
    entries: Vec<(String, u64)>,
}

impl CounterSet {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the counter `name`, creating it at zero first if it
    /// has never been touched.
    pub fn bump(&mut self, name: &str, by: u64) {
        match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
            Ok(i) => self.entries[i].1 += by,
            Err(i) => self.entries.insert(i, (name.to_string(), by)),
        }
    }

    /// The current value of `name`; untouched counters read as zero.
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .map_or(0, |i| self.entries[i].1)
    }

    /// Adds every counter of `other` into `self`.
    ///
    /// Merging is associative and commutative — with name-sorted
    /// entries, per-shard counter sets combined in any grouping produce
    /// the *identical* set — see the unit tests.
    pub fn merge(&mut self, other: &CounterSet) {
        for (name, value) in &other.entries {
            self.bump(name, *value);
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters touched.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for CounterSet {
    /// One `name = value` line per counter.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.iter() {
            writeln!(f, "{name} = {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(&str, u64)]) -> CounterSet {
        let mut c = CounterSet::new();
        for &(k, v) in pairs {
            c.bump(k, v);
        }
        c
    }

    /// Value-equality that ignores entry order, for merge laws.
    fn same_values(a: &CounterSet, b: &CounterSet) -> bool {
        a.len() == b.len() && a.iter().all(|(k, v)| b.get(k) == v)
    }

    #[test]
    fn bump_accumulates_and_get_defaults_to_zero() {
        let mut c = CounterSet::new();
        assert_eq!(c.get("x"), 0);
        c.bump("x", 1);
        c.bump("y", 10);
        c.bump("x", 2);
        assert_eq!(c.get("x"), 3);
        assert_eq!(c.get("y"), 10);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn iteration_is_name_sorted_regardless_of_touch_order() {
        let c = set(&[("b", 1), ("a", 2), ("b", 3)]);
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(c.get("b"), 4);
    }

    #[test]
    fn merge_order_does_not_change_entry_order() {
        // The determinism the differential harness relies on: merging
        // worker sets in any order yields the identical set, entry order
        // included.
        let mut ab = set(&[("x", 1)]);
        ab.merge(&set(&[("a", 2)]));
        let mut ba = set(&[("a", 2)]);
        ba.merge(&set(&[("x", 1)]));
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative() {
        let a = set(&[("x", 1), ("y", 2)]);
        let b = set(&[("y", 10), ("z", 5)]);
        let c = set(&[("x", 100), ("z", 50)]);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        assert!(same_values(&left, &right));
        assert_eq!(left.get("x"), 101);
        assert_eq!(left.get("y"), 12);
        assert_eq!(left.get("z"), 55);
    }

    #[test]
    fn merge_is_commutative_up_to_order() {
        let a = set(&[("x", 1), ("y", 2)]);
        let b = set(&[("y", 10), ("z", 5)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert!(same_values(&ab, &ba));
    }

    #[test]
    fn merge_identity_is_empty() {
        let a = set(&[("x", 7)]);
        let mut merged = a.clone();
        merged.merge(&CounterSet::new());
        assert_eq!(merged, a);
    }
}
