//! Fixed-bucket, mergeable histograms: [`Histogram`] accumulates a
//! value distribution into a fixed set of buckets; [`HistogramSet`] is
//! the named registry embedded in a [`Profile`](crate::Profile).
//!
//! Bucket bounds are fixed at construction, so two histograms with the
//! same bounds merge by adding counts — the merge is associative,
//! commutative, and (because every scalar field is an exact sum, min,
//! or max) bit-deterministic regardless of grouping. That is the same
//! contract `Profile::merge_nested` gives phase timings, and it is what
//! lets per-worker histograms fold into the coordinator's profile
//! without any thread-count-dependent drift.

use std::fmt;

/// Well-known histogram names recorded by the legalization pipeline.
///
/// Like [`counters::keys`](crate::counters::keys), these exist to keep
/// producer and consumer spellings in sync; the registry accepts any
/// name.
pub mod keys {
    /// Per-cell Manhattan displacement between the global anchor and the
    /// final legal position, in database units.
    pub const DISPLACEMENT: &str = "cell_displacement";
    /// Search-tree nodes expanded per source search (one sample per
    /// overflowed source bin per round).
    pub const SEARCH_NODES: &str = "search_nodes_per_source";
    /// Steps in each *applied* augmenting path.
    pub const SEARCH_DEPTH: &str = "search_path_depth";
    /// Cells per non-empty PlaceRow segment.
    pub const SEGMENT_CELLS: &str = "placerow_segment_cells";
    /// Selection-memo hits per source search (recorded only when the
    /// memo is enabled; one sample per overflowed source bin per round).
    pub const SELECTION_MEMO_HITS_PER_SOURCE: &str = "selection_memo_hits_per_source";
    /// End-to-end serve-mode request latency in microseconds (admission
    /// to response), one sample per request; recorded by `flow3d-serve`
    /// into its server-level profile and surfaced by the `stats`
    /// request.
    pub const SERVE_REQUEST_MICROS: &str = "serve_request_micros";
}

/// Default bucket upper bounds: powers of two from 1 to 2²³.
///
/// One set of bounds serves every pipeline histogram: displacements in
/// DBU, node counts, and path depths all live comfortably inside
/// `[0, 8·10⁶)`, and sharing bounds means any two pipeline histograms
/// are merge-compatible by construction.
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub const DEFAULT_POW2_BOUNDS: [f64; 24] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
    16384.0, 32768.0, 65536.0, 131072.0, 262144.0, 524288.0, 1048576.0, 2097152.0, 4194304.0,
    8388608.0,
];

/// Summary statistics extracted from a histogram (the `RunReport`
/// surface of the distribution).
#[derive(Debug, Clone, Copy, PartialEq)]
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub struct HistSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact sum of all samples (recorded values, not bucket midpoints).
    pub sum: f64,
    /// Smallest recorded sample.
    pub min: f64,
    /// Largest recorded sample.
    pub max: f64,
    /// Estimated 50th percentile (exact at the extremes, interpolated
    /// within a bucket otherwise).
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

impl HistSummary {
    /// Mean of the recorded samples (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A fixed-bucket histogram over `f64` samples.
///
/// `bounds` is a strictly increasing sequence of bucket upper bounds;
/// bucket `i` covers `[bounds[i-1], bounds[i])` with an underflow bucket
/// below `bounds[0]` and an overflow bucket at or above the last bound.
/// Exact `count`/`sum`/`min`/`max` are tracked alongside the buckets, so
/// summaries report true extremes even though quantiles interpolate.
///
/// ```
/// use flow3d_obs::Histogram;
///
/// let mut h = Histogram::pow2();
/// for v in [1.0, 3.0, 3.0, 100.0] {
///     h.record(v);
/// }
/// let s = h.summary();
/// assert_eq!(s.count, 4);
/// assert_eq!(s.max, 100.0);
/// assert!(s.p50 >= 1.0 && s.p50 <= 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets, overflow last.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::pow2()
    }
}

impl Histogram {
    /// A histogram with the shared power-of-two bounds
    /// ([`DEFAULT_POW2_BOUNDS`]).
    pub fn pow2() -> Self {
        Self::with_bounds(DEFAULT_POW2_BOUNDS.to_vec())
    }

    /// A histogram with custom bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = bounds.len() + 1;
        Self {
            bounds,
            counts: vec![0; buckets],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket sample counts (underflow first, overflow last;
    /// `bounds().len() + 1` entries).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        // partition_point gives the number of bounds <= value, which is
        // exactly the bucket index for [bounds[i-1], bounds[i]).
        let bucket = self.bounds.partition_point(|b| *b <= value);
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bounds — merging
    /// incompatible buckets would silently corrupt the distribution.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimated quantile `q in [0, 1]` via linear interpolation inside
    /// the bucket holding the target rank, clamped to the observed
    /// `[min, max]`. Returns `NaN` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut acc = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = acc + c as f64;
            if next >= target {
                let lo = if i == 0 {
                    self.min
                } else {
                    self.bounds[i - 1].max(self.min)
                };
                let hi = if i == self.bounds.len() {
                    self.max
                } else {
                    self.bounds[i].min(self.max)
                };
                let hi = hi.max(lo);
                let frac = if c == 0 {
                    0.0
                } else {
                    ((target - acc) / c as f64).clamp(0.0, 1.0)
                };
                return lo + (hi - lo) * frac;
            }
            acc = next;
        }
        self.max
    }

    /// Snapshot of count/sum/min/max and the p50/p90/p99 quantiles.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

impl fmt::Display for Histogram {
    /// `count=N sum=S min=M max=X p50=.. p90=.. p99=..` on one line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.summary();
        write!(
            f,
            "count={} sum={} min={} max={} p50={} p90={} p99={}",
            s.count, s.sum, s.min, s.max, s.p50, s.p90, s.p99
        )
    }
}

/// A name-sorted registry of histograms.
///
/// Entries are kept sorted by name at all times, so the iteration order
/// — and therefore every serialized report — is independent of the
/// order in which threads first touched each histogram. (Compare
/// [`CounterSet`](crate::CounterSet), which shares the same sorted-key
/// policy for the same determinism reason.)
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSet {
    entries: Vec<(String, Histogram)>,
}

impl HistogramSet {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `value` into the named histogram, creating it with the
    /// shared power-of-two bounds on first touch.
    pub fn record(&mut self, name: &str, value: f64) {
        self.entry(name).record(value);
    }

    /// The named histogram, created with default bounds if absent.
    pub fn entry(&mut self, name: &str) -> &mut Histogram {
        let idx = match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
            Ok(i) => i,
            Err(i) => {
                self.entries
                    .insert(i, (name.to_string(), Histogram::pow2()));
                i
            }
        };
        &mut self.entries[idx].1
    }

    /// Inserts (or replaces) a histogram under `name` — for custom
    /// bounds.
    pub fn insert(&mut self, name: &str, hist: Histogram) {
        match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
            Ok(i) => self.entries[i].1 = hist,
            Err(i) => self.entries.insert(i, (name.to_string(), hist)),
        }
    }

    /// The named histogram, if it has been touched.
    pub fn get(&self, name: &str) -> Option<&Histogram> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Merges every histogram of `other` into `self` (see
    /// [`Histogram::merge`] for the bounds requirement).
    pub fn merge(&mut self, other: &HistogramSet) {
        for (name, hist) in &other.entries {
            match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
                Ok(i) => self.entries[i].1.merge(hist),
                Err(i) => self.entries.insert(i, (name.clone(), hist.clone())),
            }
        }
    }

    /// Iterates over `(name, histogram)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.entries.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Number of distinct histograms touched.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no histogram has been touched.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_places_samples_in_half_open_buckets() {
        let mut h = Histogram::with_bounds(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 9.999, 10.0, 100.0, 1e9] {
            h.record(v);
        }
        // (-inf,1) [1,10) [10,100) [100,inf)
        assert_eq!(h.bucket_counts(), [1, 3, 1, 2]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.summary().min, 0.5);
        assert_eq!(h.summary().max, 1e9);
    }

    #[test]
    fn empty_histogram_summary_is_nan() {
        let s = Histogram::pow2().summary();
        assert_eq!(s.count, 0);
        assert!(s.p50.is_nan());
        assert!(s.mean().is_nan());
    }

    #[test]
    fn single_sample_quantiles_collapse_to_it() {
        let mut h = Histogram::pow2();
        h.record(42.0);
        let s = h.summary();
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p99, 42.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_extremes() {
        let mut h = Histogram::pow2();
        for i in 0..1000 {
            h.record(i as f64);
        }
        let s = h.summary();
        assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        // Roughly the right ballpark for a uniform distribution.
        assert!((s.p50 - 500.0).abs() < 260.0, "p50 = {}", s.p50);
        assert!(s.p99 > 900.0, "p99 = {}", s.p99);
    }

    #[test]
    fn merge_equals_recording_serially() {
        let mut a = Histogram::pow2();
        let mut b = Histogram::pow2();
        let mut serial = Histogram::pow2();
        for i in 0..100 {
            let v = (i * 37 % 91) as f64;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            serial.record(v);
        }
        a.merge(&b);
        assert_eq!(a.bucket_counts(), serial.bucket_counts());
        assert_eq!(a.count(), serial.count());
        assert_eq!(a.summary().min, serial.summary().min);
        assert_eq!(a.summary().max, serial.summary().max);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merging_different_bounds_panics() {
        let mut a = Histogram::with_bounds(vec![1.0, 2.0]);
        let b = Histogram::with_bounds(vec![1.0, 3.0]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_bounds_panic() {
        Histogram::with_bounds(vec![1.0, 1.0]);
    }

    #[test]
    fn set_iterates_in_name_order_regardless_of_touch_order() {
        let mut s = HistogramSet::new();
        s.record("zeta", 1.0);
        s.record("alpha", 2.0);
        s.record("mid", 3.0);
        s.record("zeta", 4.0);
        let names: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
        assert_eq!(s.get("zeta").unwrap().count(), 2);
        assert!(s.get("nope").is_none());
    }

    #[test]
    fn set_merge_unions_and_accumulates() {
        let mut a = HistogramSet::new();
        a.record("x", 1.0);
        let mut b = HistogramSet::new();
        b.record("x", 2.0);
        b.record("y", 3.0);
        a.merge(&b);
        assert_eq!(a.get("x").unwrap().count(), 2);
        assert_eq!(a.get("y").unwrap().count(), 1);
        let names: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["x", "y"]);
    }
}
