//! Flight recorder: a bounded in-memory ring of recent telemetry,
//! dumped to a sidecar file for postmortems.
//!
//! The resident service feeds every structured event (the same
//! [`Json`] records the JSONL log writes) and the last N per-request
//! [`RunReport`](crate::RunReport)s into a [`FlightRecorder`]. On a
//! request error or at shutdown the server serializes
//! [`FlightRecorder::dump`] to a sidecar file, so the operator gets
//! the moments *leading up to* the failure without having had verbose
//! logging enabled.
//!
//! Memory is strictly bounded: both rings evict oldest-first, and the
//! dump records how many events were dropped so a truncated view is
//! never mistaken for the whole story.

use crate::json::Json;
use std::collections::VecDeque;

/// Bounded ring of recent events and per-request reports.
#[derive(Debug)]
pub struct FlightRecorder {
    event_cap: usize,
    report_cap: usize,
    events: VecDeque<Json>,
    reports: VecDeque<(String, Json)>,
    dropped_events: u64,
    dropped_reports: u64,
}

impl FlightRecorder {
    /// A recorder retaining at most `event_cap` events and
    /// `report_cap` per-request reports (each clamped to at least 1).
    pub fn new(event_cap: usize, report_cap: usize) -> FlightRecorder {
        FlightRecorder {
            event_cap: event_cap.max(1),
            report_cap: report_cap.max(1),
            events: VecDeque::new(),
            reports: VecDeque::new(),
            dropped_events: 0,
            dropped_reports: 0,
        }
    }

    /// Retains one event record, evicting the oldest at capacity.
    pub fn note_event(&mut self, record: Json) {
        if self.events.len() == self.event_cap {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(record);
    }

    /// Retains one per-request report under `tag` (the serve layer
    /// uses the `case#r<id>` report tag), evicting the oldest at
    /// capacity.
    pub fn note_report(&mut self, tag: &str, report: Json) {
        if self.reports.len() == self.report_cap {
            self.reports.pop_front();
            self.dropped_reports += 1;
        }
        self.reports.push_back((tag.to_string(), report));
    }

    /// Events currently retained.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Reports currently retained.
    pub fn report_count(&self) -> usize {
        self.reports.len()
    }

    /// Serializes the recorder state. `reason` says why the dump was
    /// taken (`"request_error"`, `"shutdown"`) and `uptime_secs` when.
    pub fn dump(&self, reason: &str, uptime_secs: f64) -> Json {
        Json::Obj(vec![
            ("reason".to_string(), Json::Str(reason.to_string())),
            ("uptime_secs".to_string(), Json::num(uptime_secs)),
            (
                "dropped_events".to_string(),
                Json::num(self.dropped_events as f64),
            ),
            (
                "dropped_reports".to_string(),
                Json::num(self.dropped_reports as f64),
            ),
            (
                "events".to_string(),
                Json::Arr(self.events.iter().cloned().collect()),
            ),
            (
                "reports".to_string(),
                Json::Arr(
                    self.reports
                        .iter()
                        .map(|(tag, report)| {
                            Json::Obj(vec![
                                ("tag".to_string(), Json::Str(tag.clone())),
                                ("report".to_string(), report.clone()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(n: u64) -> Json {
        Json::Obj(vec![("seq".to_string(), Json::num(n as f64))])
    }

    #[test]
    fn events_evict_oldest_and_count_drops() {
        let mut rec = FlightRecorder::new(3, 2);
        for n in 0..5 {
            rec.note_event(event(n));
        }
        assert_eq!(rec.event_count(), 3);
        let dump = rec.dump("request_error", 1.5);
        assert_eq!(dump.get("dropped_events").and_then(Json::as_u64), Some(2));
        let events = dump.get("events").and_then(Json::as_array).unwrap();
        let first_seq = events[0].get("seq").and_then(Json::as_u64);
        assert_eq!(first_seq, Some(2));
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn reports_are_tagged_and_bounded() {
        let mut rec = FlightRecorder::new(8, 2);
        for n in 0..3 {
            rec.note_report(&format!("demo#r{n}"), event(n));
        }
        assert_eq!(rec.report_count(), 2);
        let dump = rec.dump("shutdown", 2.0);
        assert_eq!(dump.get("dropped_reports").and_then(Json::as_u64), Some(1));
        let reports = dump.get("reports").and_then(Json::as_array).unwrap();
        assert_eq!(
            reports[0].get("tag").and_then(Json::as_str),
            Some("demo#r1")
        );
        assert_eq!(
            reports[1].get("tag").and_then(Json::as_str),
            Some("demo#r2")
        );
    }

    #[test]
    fn dump_carries_reason_and_uptime() {
        let rec = FlightRecorder::new(4, 4);
        let dump = rec.dump("shutdown", 12.25);
        assert_eq!(dump.get("reason").and_then(Json::as_str), Some("shutdown"));
        let uptime = dump.get("uptime_secs").and_then(|v| v.as_f64());
        assert!(uptime.is_some_and(|v| (v - 12.25).abs() < 1e-9));
        assert_eq!(
            dump.get("events")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(0)
        );
    }
}
