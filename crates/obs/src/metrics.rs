//! Rolling-window serve metrics: a fixed-capacity ring of per-request
//! samples powering windowed latency quantiles, throughput, and
//! error-rate gauges.
//!
//! The resident service records one [`RequestSample`] per completed
//! request into a [`RollingWindow`]. A [`MetricsSnapshot`] is computed
//! on demand (for the `metrics` wire command) from the samples whose
//! completion time falls inside the configured window, so the gauges
//! track *recent* behavior rather than lifetime averages — a server
//! that was slow an hour ago and is fast now reports fast.
//!
//! Everything here is a gauge over wall-clock measurements. Snapshots
//! are **never** part of [`RunReport`](crate::RunReport)s and never
//! flow into `report diff`; the deterministic surfaces stay byte-stable
//! while these numbers move with the machine.
//!
//! Timestamps are plain microsecond offsets from an epoch the caller
//! chooses (the server uses its start instant), which keeps the math
//! pure and exactly testable: feed a known sequence, get known
//! quantiles.

use crate::json::Json;
use std::collections::VecDeque;

/// One completed request, as observed by the admission-to-response
/// timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSample {
    /// Completion time, microseconds since the window's epoch.
    pub end_micros: u64,
    /// Admission-to-response latency in microseconds.
    pub latency_micros: u64,
    /// Whether the response was `ok` (errors still carry a latency).
    pub ok: bool,
}

/// Fixed-capacity ring of recent [`RequestSample`]s plus lifetime
/// totals.
///
/// `record` is O(1); `snapshot` is O(n log n) in the number of retained
/// samples (a sort for exact quantiles), which is bounded by the
/// capacity — cheap at the hundreds-to-thousands scale a serve window
/// uses.
#[derive(Debug)]
pub struct RollingWindow {
    capacity: usize,
    window_micros: u64,
    samples: VecDeque<RequestSample>,
    total_requests: u64,
    total_errors: u64,
    evicted: u64,
}

impl RollingWindow {
    /// A window retaining at most `capacity` samples, with gauges
    /// computed over the trailing `window_micros` microseconds.
    ///
    /// A zero `capacity` or window is clamped to 1 so the ring always
    /// holds the latest sample and snapshots never divide by zero.
    pub fn new(capacity: usize, window_micros: u64) -> RollingWindow {
        RollingWindow {
            capacity: capacity.max(1),
            window_micros: window_micros.max(1),
            samples: VecDeque::new(),
            total_requests: 0,
            total_errors: 0,
            evicted: 0,
        }
    }

    /// The configured sample capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured window length in microseconds.
    pub fn window_micros(&self) -> u64 {
        self.window_micros
    }

    /// Records one completed request. Oldest samples are evicted once
    /// the ring is full (counted in [`MetricsSnapshot::evicted`], so a
    /// window that outlives its capacity is visible as such).
    pub fn record(&mut self, sample: RequestSample) {
        self.total_requests += 1;
        if !sample.ok {
            self.total_errors += 1;
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.evicted += 1;
        }
        self.samples.push_back(sample);
    }

    /// Computes the windowed gauges as of `now_micros` (same epoch as
    /// the recorded samples). `queue_depth` is passed through so the
    /// snapshot is a single coherent observation.
    pub fn snapshot(&self, now_micros: u64, queue_depth: usize) -> MetricsSnapshot {
        let cutoff = now_micros.saturating_sub(self.window_micros);
        let mut latencies: Vec<u64> = Vec::new();
        let mut errors: u64 = 0;
        let mut latency_sum: u64 = 0;
        for s in &self.samples {
            if s.end_micros >= cutoff && s.end_micros <= now_micros {
                latencies.push(s.latency_micros);
                latency_sum += s.latency_micros;
                if !s.ok {
                    errors += 1;
                }
            }
        }
        latencies.sort_unstable();
        let count = latencies.len() as u64;
        // Early in a server's life the trailing window extends past the
        // epoch; shrink it so throughput is not diluted by time that
        // never existed.
        let effective_micros = self.window_micros.min(now_micros).max(1);
        let effective_secs = effective_micros as f64 / 1e6;
        let rank = |q: f64| -> u64 {
            if latencies.is_empty() {
                return 0;
            }
            // Nearest-rank quantile: the smallest sample whose
            // cumulative rank reaches ceil(q * count).
            let target = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
            latencies[target - 1]
        };
        MetricsSnapshot {
            window_secs: self.window_micros as f64 / 1e6,
            effective_secs,
            count,
            errors,
            error_rate: if count == 0 {
                0.0
            } else {
                errors as f64 / count as f64
            },
            throughput_rps: count as f64 / effective_secs,
            latency_p50_micros: rank(0.50),
            latency_p90_micros: rank(0.90),
            latency_p99_micros: rank(0.99),
            latency_min_micros: latencies.first().copied().unwrap_or(0),
            latency_max_micros: latencies.last().copied().unwrap_or(0),
            latency_mean_micros: if count == 0 {
                0.0
            } else {
                latency_sum as f64 / count as f64
            },
            queue_depth: queue_depth as u64,
            total_requests: self.total_requests,
            total_errors: self.total_errors,
            capacity: self.capacity as u64,
            evicted: self.evicted,
            selection_memo_hit_rate: None,
        }
    }
}

/// A coherent point-in-time view of the rolling window, plus lifetime
/// totals. All latencies are microseconds.
#[derive(Debug, Clone, PartialEq)]
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub struct MetricsSnapshot {
    /// Configured window length in seconds.
    pub window_secs: f64,
    /// The window actually covered (shorter than `window_secs` until
    /// the server has been up that long).
    pub effective_secs: f64,
    /// Samples inside the window.
    pub count: u64,
    /// Error responses inside the window.
    pub errors: u64,
    /// `errors / count` (0 when the window is empty).
    pub error_rate: f64,
    /// Requests per second over the effective window.
    pub throughput_rps: f64,
    /// Windowed median latency.
    pub latency_p50_micros: u64,
    /// Windowed 90th-percentile latency.
    pub latency_p90_micros: u64,
    /// Windowed 99th-percentile latency.
    pub latency_p99_micros: u64,
    /// Fastest request in the window.
    pub latency_min_micros: u64,
    /// Slowest request in the window.
    pub latency_max_micros: u64,
    /// Mean latency over the window.
    pub latency_mean_micros: f64,
    /// Admission-queue depth at snapshot time.
    pub queue_depth: u64,
    /// Requests ever recorded (lifetime, not windowed).
    pub total_requests: u64,
    /// Error responses ever recorded (lifetime).
    pub total_errors: u64,
    /// Ring capacity, for judging `evicted`.
    pub capacity: u64,
    /// Samples dropped by capacity pressure before they aged out.
    pub evicted: u64,
    /// Lifetime selection-memo hit rate of the serving engines, if the
    /// memo is enabled. `None` (memo disabled or no search ran yet)
    /// renders as JSON `null` and omits the Prometheus gauge;
    /// `Some(0.0)` means the memo is on but every lookup missed so far
    /// — a cold cache, not a disabled one. The window itself never
    /// carries memo data; the server stamps this from its lifetime
    /// counter profile via
    /// [`RunReport::selection_memo_hit_rate`](crate::RunReport::selection_memo_hit_rate).
    pub selection_memo_hit_rate: Option<f64>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object (field names match the
    /// struct).
    pub fn to_json(&self) -> Json {
        let u = |v: u64| Json::num(v as f64);
        Json::Obj(vec![
            ("window_secs".to_string(), Json::num(self.window_secs)),
            ("effective_secs".to_string(), Json::num(self.effective_secs)),
            ("count".to_string(), u(self.count)),
            ("errors".to_string(), u(self.errors)),
            ("error_rate".to_string(), Json::num(self.error_rate)),
            ("throughput_rps".to_string(), Json::num(self.throughput_rps)),
            ("latency_p50_micros".to_string(), u(self.latency_p50_micros)),
            ("latency_p90_micros".to_string(), u(self.latency_p90_micros)),
            ("latency_p99_micros".to_string(), u(self.latency_p99_micros)),
            ("latency_min_micros".to_string(), u(self.latency_min_micros)),
            ("latency_max_micros".to_string(), u(self.latency_max_micros)),
            (
                "latency_mean_micros".to_string(),
                Json::num(self.latency_mean_micros),
            ),
            ("queue_depth".to_string(), u(self.queue_depth)),
            ("total_requests".to_string(), u(self.total_requests)),
            ("total_errors".to_string(), u(self.total_errors)),
            ("capacity".to_string(), u(self.capacity)),
            ("evicted".to_string(), u(self.evicted)),
            (
                "selection_memo_hit_rate".to_string(),
                self.selection_memo_hit_rate.map_or(Json::Null, Json::num),
            ),
        ])
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# TYPE` headers, one sample per line, quantile labels on the
    /// latency gauge).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut gauge = |name: &str, help: &str, value: String| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            out.push_str(&format!("{name} {value}\n"));
        };
        gauge(
            "flow3d_serve_window_seconds",
            "Effective length of the rolling metrics window.",
            fmt_f64(self.effective_secs),
        );
        gauge(
            "flow3d_serve_window_requests",
            "Requests completed inside the window.",
            self.count.to_string(),
        );
        gauge(
            "flow3d_serve_window_error_rate",
            "Fraction of windowed requests that returned an error.",
            fmt_f64(self.error_rate),
        );
        gauge(
            "flow3d_serve_window_throughput_rps",
            "Windowed request throughput in requests per second.",
            fmt_f64(self.throughput_rps),
        );
        gauge(
            "flow3d_serve_queue_depth",
            "Admission-queue depth at scrape time.",
            self.queue_depth.to_string(),
        );
        if let Some(rate) = self.selection_memo_hit_rate {
            gauge(
                "flow3d_serve_selection_memo_hit_rate",
                "Lifetime selection-memo hit rate; the gauge is absent when the memo is disabled.",
                fmt_f64(rate),
            );
        }
        out.push_str(concat!(
            "# HELP flow3d_serve_request_latency_micros ",
            "Windowed request latency quantiles in microseconds.\n",
            "# TYPE flow3d_serve_request_latency_micros gauge\n"
        ));
        for (q, v) in [
            ("0.5", self.latency_p50_micros),
            ("0.9", self.latency_p90_micros),
            ("0.99", self.latency_p99_micros),
            ("1", self.latency_max_micros),
        ] {
            out.push_str(&format!(
                "flow3d_serve_request_latency_micros{{quantile=\"{q}\"}} {v}\n"
            ));
        }
        for (name, help, value) in [
            (
                "flow3d_serve_requests_total",
                "Requests completed since server start.",
                self.total_requests,
            ),
            (
                "flow3d_serve_errors_total",
                "Error responses since server start.",
                self.total_errors,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {value}\n"));
        }
        out
    }
}

/// Formats an f64 the way the JSON serializer does (shortest `{}`
/// rendering), so the two surfaces agree on values.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "NaN".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(end: u64, latency: u64, ok: bool) -> RequestSample {
        RequestSample {
            end_micros: end,
            latency_micros: latency,
            ok,
        }
    }

    #[test]
    fn quantiles_match_nearest_rank_on_known_sequence() {
        let mut w = RollingWindow::new(1024, 60_000_000);
        for i in 1..=100u64 {
            w.record(sample(i * 1_000, i, true));
        }
        let s = w.snapshot(100_000, 0);
        assert_eq!(s.count, 100);
        assert_eq!(s.latency_p50_micros, 50);
        assert_eq!(s.latency_p90_micros, 90);
        assert_eq!(s.latency_p99_micros, 99);
        assert_eq!(s.latency_min_micros, 1);
        assert_eq!(s.latency_max_micros, 100);
        assert!((s.latency_mean_micros - 50.5).abs() < 1e-9);
    }

    #[test]
    fn old_samples_age_out_of_the_window() {
        let mut w = RollingWindow::new(1024, 1_000_000);
        w.record(sample(100, 7, true));
        w.record(sample(1_500_000, 9, true));
        let s = w.snapshot(1_600_000, 0);
        assert_eq!(s.count, 1);
        assert_eq!(s.latency_p50_micros, 9);
        // Lifetime totals still see both.
        assert_eq!(s.total_requests, 2);
    }

    #[test]
    fn capacity_evicts_oldest_and_counts_drops() {
        let mut w = RollingWindow::new(4, 60_000_000);
        for i in 0..10u64 {
            w.record(sample(i, i, true));
        }
        let s = w.snapshot(100, 0);
        assert_eq!(s.count, 4);
        assert_eq!(s.evicted, 6);
        assert_eq!(s.latency_min_micros, 6);
        assert_eq!(s.latency_max_micros, 9);
    }

    #[test]
    fn error_rate_and_throughput_over_effective_window() {
        let mut w = RollingWindow::new(64, 60_000_000);
        for i in 0..8u64 {
            w.record(sample(i * 250_000, 10, i % 4 != 0));
        }
        // now = 2s, window 60s: the effective window is the 2s of
        // uptime, so 8 requests -> 4 rps.
        let s = w.snapshot(2_000_000, 3);
        assert_eq!(s.count, 8);
        assert_eq!(s.errors, 2);
        assert!((s.error_rate - 0.25).abs() < 1e-9);
        assert!((s.throughput_rps - 4.0).abs() < 1e-9);
        assert_eq!(s.queue_depth, 3);
    }

    #[test]
    fn empty_window_reports_zeros() {
        let w = RollingWindow::new(16, 1_000_000);
        let s = w.snapshot(5_000_000, 0);
        assert_eq!(s.count, 0);
        assert_eq!(s.latency_p50_micros, 0);
        assert_eq!(s.latency_p99_micros, 0);
        assert_eq!(s.error_rate, 0.0);
        assert_eq!(s.throughput_rps, 0.0);
    }

    #[test]
    fn json_and_prometheus_agree() {
        let mut w = RollingWindow::new(64, 60_000_000);
        for i in 1..=10u64 {
            w.record(sample(i * 1_000, i * 100, true));
        }
        let s = w.snapshot(10_000, 1);
        let json = s.to_json();
        assert_eq!(
            json.get("latency_p99_micros").and_then(Json::as_u64),
            Some(s.latency_p99_micros)
        );
        assert_eq!(json.get("count").and_then(Json::as_u64), Some(10));
        let text = s.to_prometheus();
        assert!(text.contains(&format!(
            "flow3d_serve_request_latency_micros{{quantile=\"0.99\"}} {}",
            s.latency_p99_micros
        )));
        assert!(text.contains("flow3d_serve_requests_total 10"));
        assert!(text.contains("# TYPE flow3d_serve_queue_depth gauge"));
    }

    #[test]
    fn memo_hit_rate_distinguishes_disabled_from_cold() {
        let w = RollingWindow::new(16, 1_000_000);
        // Disabled (or never searched): JSON null, no Prometheus gauge.
        let off = w.snapshot(1_000, 0);
        assert_eq!(off.selection_memo_hit_rate, None);
        assert!(matches!(
            off.to_json().get("selection_memo_hit_rate"),
            Some(Json::Null)
        ));
        assert!(!off
            .to_prometheus()
            .contains("flow3d_serve_selection_memo_hit_rate"));
        // Enabled but cold: 0.0, not absent.
        let mut cold = w.snapshot(1_000, 0);
        cold.selection_memo_hit_rate = Some(0.0);
        assert_eq!(
            cold.to_json()
                .get("selection_memo_hit_rate")
                .and_then(Json::as_f64),
            Some(0.0)
        );
        assert!(cold
            .to_prometheus()
            .contains("flow3d_serve_selection_memo_hit_rate 0\n"));
    }
}
