#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Observability for the 3D-Flow legalization pipeline: hierarchical
//! phase timers, named event counters, and serializable run reports.
//!
//! This crate is intentionally dependency-free (std only). It provides
//! three layers:
//!
//! * [`Profile`] / [`Span`] — nestable wall-clock phase scopes with
//!   per-phase call counts, plus a [`CounterSet`] of named monotonic
//!   counters (see [`keys`] for the pipeline's well-known names).
//! * [`Obs`] / [`ObsExt`] — the `Option<&mut Profile>` hook type that
//!   instrumented code threads through its call graph. A `None` hook
//!   reduces every instrumentation point to a single branch, so the
//!   uninstrumented path stays effectively free.
//! * [`RunReport`] — a snapshot of a finished profile plus optional
//!   [`Quality`] metrics, serializable to JSON ([`RunReport::to_json`],
//!   inverted by [`RunReport::from_json`]) and to an aligned text table
//!   ([`RunReport::to_pretty`]). The JSON machinery ([`Json`]) is
//!   hand-rolled and public for reuse.
//! * Telemetry — [`Histogram`]/[`HistogramSet`] for mergeable
//!   fixed-bucket distributions (surfaced as [`HistReport`] p50/p90/p99
//!   summaries), the [`trace`] module for Chrome `trace_event` export
//!   with per-worker timelines, [`Heatmap`] for per-bin spatial grids,
//!   and [`diff_reports`] + [`DiffTolerances`] for the
//!   `flow3d report diff` regression gate.
//! * Live-service telemetry (v3) — [`RollingWindow`] /
//!   [`MetricsSnapshot`] for windowed latency/throughput/error-rate
//!   gauges (JSON + Prometheus text), [`EventLog`] for structured
//!   leveled JSONL event logging, and [`FlightRecorder`] for bounded
//!   postmortem rings. These are gauges over wall-clock measurements
//!   and are never part of diffed [`RunReport`]s.
//!
//! # Example
//!
//! ```
//! use flow3d_obs::{keys, Profile, RunReport};
//!
//! let mut profile = Profile::new();
//! profile.begin("legalize");
//! profile.begin("flow_pass");
//! profile.bump(keys::AUGMENTING_PATHS, 17);
//! profile.end("flow_pass");
//! profile.end("legalize");
//!
//! let report = RunReport::from_profile("toy", "flow3d", &profile);
//! let json = report.to_json();
//! let back = RunReport::from_json(&json).unwrap();
//! assert_eq!(back.counters, vec![("augmenting_paths".to_string(), 17)]);
//! assert_eq!(back.phases[1].path, "legalize/flow_pass");
//! ```

mod counters;
mod diff;
mod heatmap;
mod hist;
mod json;
mod log;
mod metrics;
mod profile;
mod recorder;
mod report;
mod rss;
pub mod trace;

pub use counters::{keys, CounterSet};
pub use diff::{
    diff_reports, diff_reports_phase, DiffItem, DiffStatus, DiffTolerances, ReportDiff,
    ADVISORY_COUNTERS,
};
pub use heatmap::{heatmaps_from_json, heatmaps_to_json, Heatmap};
pub use hist::{keys as hist_keys, HistSummary, Histogram, HistogramSet, DEFAULT_POW2_BOUNDS};
pub use json::{Json, JsonError};
pub use log::{log_record, EventLog, LogLevel};
pub use metrics::{MetricsSnapshot, RequestSample, RollingWindow};
pub use profile::{Obs, ObsExt, PhaseStats, Profile, Span};
pub use recorder::FlightRecorder;
pub use report::{HistReport, PhaseReport, Quality, RunReport};
pub use rss::peak_rss_bytes;
pub use trace::{chrome_trace_json, track_name, TraceEvent, TracePhase};
