//! A hand-rolled JSON value type with a serializer and a minimal
//! recursive-descent parser.
//!
//! This exists because the workspace builds without registry access (no
//! `serde`), and the observability layer only needs enough JSON to emit
//! and round-trip [`RunReport`](crate::RunReport)s: objects, arrays,
//! strings, finite numbers, booleans, and `null`.

use std::fmt;

/// A JSON document.
///
/// Objects preserve insertion order (they are association lists, not
/// maps), so serialized reports keep their fields in a stable, readable
/// order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`. Also used to encode non-finite floats, which JSON cannot
    /// represent.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Stored as `f64`; integers round-trip exactly up to
    /// 2^53, far beyond any counter this crate records.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an ordered list of key–value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number. [`Json::Null`] reads as
    /// NaN (the serializer writes non-finite numbers as `null`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= (1u64 << 53) as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A number, mapping non-finite values to [`Json::Null`].
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    /// Serializes compactly (no insignificant whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input at which the failure was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expected as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null").map(|_| Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from a
                    // &str, so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-3.5", "1e3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("case with \"quotes\"\n".into())),
            (
                "phases".into(),
                Json::Arr(vec![
                    Json::Obj(vec![
                        ("path".into(), Json::Str("a/b".into())),
                        ("seconds".into(), Json::Num(0.125)),
                    ]),
                    Json::Null,
                ]),
            ),
            ("ok".into(), Json::Bool(true)),
            ("count".into(), Json::Num(12345.0)),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn object_preserves_order_and_get_finds_keys() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        if let Json::Obj(pairs) = &v {
            assert_eq!(pairs[0].0, "z");
            assert_eq!(pairs[1].0, "a");
        } else {
            panic!("not an object");
        }
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::num(f64::NAN).to_string(), "null");
        assert!(Json::parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn errors_carry_offsets() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert!(e.offset > 0);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("12 34").is_err());
    }
}
