//! Hierarchical phase timing: [`Profile`] accumulates per-phase wall
//! time and call counts; [`Span`] is the RAII variant of a phase scope.
//!
//! Beyond timers and counters, a profile carries the rest of the
//! telemetry state: a [`HistogramSet`], captured [`Heatmap`]s, and —
//! when armed via [`Profile::enable_tracing`] — a per-thread
//! [`TraceEvent`] stream (see the [`trace`](crate::trace) module).

use crate::counters::CounterSet;
use crate::heatmap::Heatmap;
use crate::hist::HistogramSet;
use crate::trace::{chrome_trace_json, TraceEvent, TracePhase};
use std::time::{Duration, Instant};

/// Armed tracing state: the shared epoch plus this thread's events.
#[derive(Debug, Clone)]
struct TraceState {
    epoch: Instant,
    events: Vec<TraceEvent>,
}

/// Accumulated statistics for one phase path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub struct PhaseStats {
    /// Total wall time spent inside the phase, summed over calls.
    pub total: Duration,
    /// How many times the phase was entered.
    pub calls: u64,
}

/// A hierarchical wall-clock profile plus a [`CounterSet`].
///
/// Phases nest: entering `"flow_pass"` while `"legalize"` is open
/// records time under the path `"legalize/flow_pass"`. Each distinct
/// path accumulates a total duration and a call count, in first-entry
/// order.
///
/// Instrumented code receives a `Profile` as `Option<&mut Profile>` (see
/// [`Obs`](crate::Obs) and [`ObsExt`]); passing `None` skips all
/// bookkeeping, so the uninstrumented path costs one branch per hook.
///
/// ```
/// use flow3d_obs::Profile;
///
/// let mut p = Profile::new();
/// p.begin("legalize");
/// p.begin("flow_pass");
/// p.bump("augmenting_paths", 2);
/// p.end("flow_pass");
/// p.end("legalize");
///
/// let paths: Vec<&str> = p.phases().map(|(path, _)| path).collect();
/// assert_eq!(paths, ["legalize", "legalize/flow_pass"]);
/// assert_eq!(p.counters().get("augmenting_paths"), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Profile {
    created: Instant,
    /// Open scopes, innermost last.
    stack: Vec<(String, Instant)>,
    /// Accumulated stats per phase path, in first-entry order.
    phases: Vec<(String, PhaseStats)>,
    counters: CounterSet,
    hists: HistogramSet,
    heatmaps: Vec<Heatmap>,
    /// `Some` once tracing is armed; recording is a plain `Vec::push`
    /// on this thread-local state, so no lock is ever taken.
    trace: Option<TraceState>,
}

impl Default for Profile {
    fn default() -> Self {
        Self::new()
    }
}

impl Profile {
    /// An empty profile; total elapsed time is measured from this call.
    pub fn new() -> Self {
        Self {
            created: Instant::now(),
            stack: Vec::new(),
            phases: Vec::new(),
            counters: CounterSet::new(),
            hists: HistogramSet::new(),
            heatmaps: Vec::new(),
            trace: None,
        }
    }

    /// A worker-side profile that shares a coordinator's trace epoch,
    /// so its event timestamps land on the coordinator's timeline.
    /// `None` (the coordinator is not tracing) yields a plain profile.
    ///
    /// Workers record events on track 0; the coordinator assigns the
    /// real track id when it folds the worker in with
    /// [`merge_nested_worker`](Self::merge_nested_worker).
    pub fn new_worker(trace_epoch: Option<Instant>) -> Self {
        let mut p = Self::new();
        if let Some(epoch) = trace_epoch {
            p.trace = Some(TraceState {
                epoch,
                events: Vec::new(),
            });
        }
        p
    }

    /// Arms event tracing. The epoch — the zero point of every event
    /// timestamp — is the instant the profile was created, so phase
    /// times and trace times share one timeline. Idempotent.
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(TraceState {
                epoch: self.created,
                events: Vec::new(),
            });
        }
    }

    /// Whether tracing is armed.
    pub fn is_tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// The trace epoch, when tracing is armed — hand this to
    /// [`new_worker`](Self::new_worker) so worker events share the
    /// coordinator's timeline.
    pub fn tracing_epoch(&self) -> Option<Instant> {
        self.trace.as_ref().map(|t| t.epoch)
    }

    /// Opens a phase scope. Must be balanced by [`end`](Self::end) with
    /// the same name.
    pub fn begin(&mut self, name: &str) {
        // Register the path now so that phases list in first-entry order
        // (a parent before the children nested inside it), not in the
        // order their scopes happen to close.
        let path = self.path_for(name);
        if !self.phases.iter().any(|(p, _)| *p == path) {
            self.phases.push((path, PhaseStats::default()));
        }
        self.stack.push((name.to_string(), Instant::now()));
    }

    /// The full path `name` would have if entered now.
    fn path_for(&self, name: &str) -> String {
        let mut path = String::new();
        for (ancestor, _) in &self.stack {
            path.push_str(ancestor);
            path.push('/');
        }
        path.push_str(name);
        path
    }

    /// Closes the innermost phase scope and accumulates its elapsed
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open or if `name` does not match the
    /// innermost open scope — a begin/end mismatch is a programming
    /// error that would silently misattribute time.
    pub fn end(&mut self, name: &str) {
        let (open, started) = self
            .stack
            .pop()
            // flow3d-tidy: allow(panic-unwrap) — documented # Panics: begin/end mismatch would misattribute time
            .unwrap_or_else(|| panic!("Profile::end(\"{name}\") with no open phase"));
        assert_eq!(
            open, name,
            "Profile::end(\"{name}\") does not match open phase \"{open}\""
        );
        let elapsed = started.elapsed();
        let path = self.path_for(name);
        let (_, stats) = self
            .phases
            .iter_mut()
            .find(|(p, _)| *p == path)
            // flow3d-tidy: allow(panic-unwrap) — invariant: begin() registered this path before end() can pop it
            .expect("begin registered the path");
        stats.total += elapsed;
        stats.calls += 1;
        if let Some(t) = &mut self.trace {
            t.events.push(TraceEvent {
                name: open,
                track: 0,
                start: started.saturating_duration_since(t.epoch),
                duration: elapsed,
                phase: TracePhase::Complete,
            });
        }
    }

    /// Records a zero-duration trace marker on this profile's timeline
    /// (a no-op unless tracing is armed).
    pub fn instant(&mut self, name: &str) {
        if let Some(t) = &mut self.trace {
            t.events.push(TraceEvent {
                name: name.to_string(),
                track: 0,
                start: Instant::now().saturating_duration_since(t.epoch),
                duration: Duration::ZERO,
                phase: TracePhase::Instant,
            });
        }
    }

    /// Opens a phase as an RAII guard that closes itself on drop.
    ///
    /// The guard dereferences to the profile, so counters can be bumped
    /// and further spans nested while it is alive.
    pub fn span<'a>(&'a mut self, name: &str) -> Span<'a> {
        self.begin(name);
        Span {
            name: name.to_string(),
            profile: self,
        }
    }

    /// Adds `by` to the named counter (see [`CounterSet::bump`]).
    pub fn bump(&mut self, counter: &str, by: u64) {
        self.counters.bump(counter, by);
    }

    /// Closed-phase statistics as `(path, stats)`, in first-entry order
    /// (a parent phase lists before the children nested inside it).
    /// Scopes that have never closed are not included.
    pub fn phases(&self) -> impl Iterator<Item = (&str, PhaseStats)> {
        self.phases
            .iter()
            .filter(|(_, s)| s.calls > 0)
            .map(|(p, s)| (p.as_str(), *s))
    }

    /// Stats for one exact phase path, if it has closed at least once.
    pub fn phase(&self, path: &str) -> Option<PhaseStats> {
        self.phases
            .iter()
            .find(|(p, s)| p == path && s.calls > 0)
            .map(|(_, s)| *s)
    }

    /// Folds a worker's profile into this one, nesting every closed
    /// phase of `other` under this profile's currently open path and
    /// merging the counters.
    ///
    /// This is how concurrent phases stay coherent: each pool worker
    /// records into its own `Profile` (no shared mutable state while the
    /// pool runs), and the coordinator merges the workers in a fixed
    /// order after the join. Same-path phases accumulate time and call
    /// counts exactly as if one thread had run them back-to-back, so a
    /// merged profile's *structure* (paths, call counts, counter values)
    /// is identical for every thread count — only the durations reflect
    /// the actual concurrency.
    ///
    /// ```
    /// use flow3d_obs::Profile;
    ///
    /// let mut main = Profile::new();
    /// main.begin("flow_pass");
    /// for _ in 0..2 {
    ///     let mut worker = Profile::new();
    ///     worker.begin("source_search");
    ///     worker.bump("nodes", 3);
    ///     worker.end("source_search");
    ///     main.merge_nested(&worker);
    /// }
    /// main.end("flow_pass");
    /// assert_eq!(main.phase("flow_pass/source_search").unwrap().calls, 2);
    /// assert_eq!(main.counters().get("nodes"), 6);
    /// ```
    pub fn merge_nested(&mut self, other: &Profile) {
        self.merge_nested_retagged(other, None);
    }

    /// [`merge_nested`](Self::merge_nested), additionally retagging the
    /// worker's trace events onto track `track` (1-based; track 0 is the
    /// coordinator). Use the worker's stable index in the merge order —
    /// not an OS thread id — so the exported timeline layout is
    /// deterministic.
    pub fn merge_nested_worker(&mut self, other: &Profile, track: u32) {
        self.merge_nested_retagged(other, Some(track));
    }

    fn merge_nested_retagged(&mut self, other: &Profile, track: Option<u32>) {
        let mut prefix = String::new();
        for (ancestor, _) in &self.stack {
            prefix.push_str(ancestor);
            prefix.push('/');
        }
        for (path, stats) in other.phases() {
            let full = format!("{prefix}{path}");
            match self.phases.iter_mut().find(|(p, _)| *p == full) {
                Some((_, s)) => {
                    s.total += stats.total;
                    s.calls += stats.calls;
                }
                None => self.phases.push((full, stats)),
            }
        }
        self.counters.merge(other.counters());
        self.hists.merge(other.hists());
        self.heatmaps.extend(other.heatmaps.iter().cloned());
        if let Some(dst) = &mut self.trace {
            if let Some(src) = &other.trace {
                for e in &src.events {
                    let mut e = e.clone();
                    if let Some(t) = track {
                        e.track = t;
                    }
                    dst.events.push(e);
                }
            }
        }
    }

    /// The counter registry.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Mutable access to the counter registry (e.g. to
    /// [`merge`](CounterSet::merge) counters collected elsewhere).
    pub fn counters_mut(&mut self) -> &mut CounterSet {
        &mut self.counters
    }

    /// Records `value` into the named histogram (shared power-of-two
    /// buckets on first touch — see [`HistogramSet::record`]).
    pub fn record(&mut self, hist: &str, value: f64) {
        self.hists.record(hist, value);
    }

    /// The histogram registry.
    pub fn hists(&self) -> &HistogramSet {
        &self.hists
    }

    /// Mutable access to the histogram registry (custom bounds, merges).
    pub fn hists_mut(&mut self) -> &mut HistogramSet {
        &mut self.hists
    }

    /// Attaches a captured heatmap to the profile.
    pub fn add_heatmap(&mut self, map: Heatmap) {
        self.heatmaps.push(map);
    }

    /// Heatmaps captured so far, in capture order.
    pub fn heatmaps(&self) -> &[Heatmap] {
        &self.heatmaps
    }

    /// Trace events recorded so far (empty unless tracing is armed).
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.trace.as_ref().map_or(&[], |t| &t.events)
    }

    /// Exports the recorded events as a Chrome `trace_event` JSON
    /// document, or `None` if tracing was never armed.
    pub fn to_chrome_trace(&self, process: &str) -> Option<String> {
        self.trace
            .as_ref()
            .map(|t| chrome_trace_json(process, &t.events))
    }

    /// Wall time since the profile was created.
    pub fn total_elapsed(&self) -> Duration {
        self.created.elapsed()
    }
}

/// An open phase scope that records its elapsed time when dropped.
/// Created by [`Profile::span`].
// flow3d-tidy: allow(dead-pub) — telemetry schema (flow3d::obs) consumed by downstream report tooling
pub struct Span<'a> {
    profile: &'a mut Profile,
    name: String,
}

impl std::ops::Deref for Span<'_> {
    type Target = Profile;
    fn deref(&self) -> &Profile {
        self.profile
    }
}

impl std::ops::DerefMut for Span<'_> {
    fn deref_mut(&mut self) -> &mut Profile {
        self.profile
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.profile.end(&self.name);
    }
}

/// The hook type threaded through instrumentable code: `None` disables
/// all bookkeeping.
pub type Obs<'a> = Option<&'a mut Profile>;

/// Convenience methods on [`Obs`] hooks that no-op when the hook is
/// `None`, so instrumented code reads the same either way:
///
/// ```
/// use flow3d_obs::{Obs, ObsExt, Profile};
///
/// fn work(mut obs: Obs<'_>) {
///     obs.begin("inner");
///     obs.bump("widgets", 1);
///     obs.end("inner");
/// }
///
/// work(None); // all hooks skipped
///
/// let mut p = Profile::new();
/// work(Some(&mut p));
/// assert_eq!(p.counters().get("widgets"), 1);
/// assert_eq!(p.phase("inner").unwrap().calls, 1);
/// ```
pub trait ObsExt {
    /// [`Profile::begin`] if observing, else nothing.
    fn begin(&mut self, name: &str);
    /// [`Profile::end`] if observing, else nothing.
    fn end(&mut self, name: &str);
    /// [`Profile::bump`] if observing, else nothing.
    fn bump(&mut self, counter: &str, by: u64);
    /// [`Profile::record`] if observing, else nothing.
    fn record(&mut self, hist: &str, value: f64);
    /// [`Profile::instant`] if observing, else nothing.
    fn instant(&mut self, name: &str);
    /// Reborrows the hook for passing down to a callee while keeping it
    /// usable afterwards.
    fn reborrow(&mut self) -> Obs<'_>;
}

impl ObsExt for Obs<'_> {
    fn begin(&mut self, name: &str) {
        if let Some(p) = self {
            p.begin(name);
        }
    }

    fn end(&mut self, name: &str) {
        if let Some(p) = self {
            p.end(name);
        }
    }

    fn bump(&mut self, counter: &str, by: u64) {
        if let Some(p) = self {
            p.bump(counter, by);
        }
    }

    fn record(&mut self, hist: &str, value: f64) {
        if let Some(p) = self {
            p.record(hist, value);
        }
    }

    fn instant(&mut self, name: &str) {
        if let Some(p) = self {
            p.instant(name);
        }
    }

    fn reborrow(&mut self) -> Obs<'_> {
        self.as_deref_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(duration: Duration) {
        let start = Instant::now();
        while start.elapsed() < duration {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nested_spans_are_monotonic() {
        // A child phase can never account for more time than the parent
        // scope that contains it, and the parent can never exceed the
        // profile's total elapsed time.
        let mut p = Profile::new();
        p.begin("parent");
        p.begin("child");
        spin(Duration::from_millis(2));
        p.end("child");
        spin(Duration::from_millis(1));
        p.end("parent");

        let parent = p.phase("parent").unwrap();
        let child = p.phase("parent/child").unwrap();
        assert!(child.total <= parent.total, "{child:?} > {parent:?}");
        assert!(parent.total <= p.total_elapsed());
        assert_eq!(parent.calls, 1);
        assert_eq!(child.calls, 1);
    }

    #[test]
    fn repeated_phases_accumulate_calls_and_time() {
        let mut p = Profile::new();
        for _ in 0..3 {
            p.begin("loop");
            spin(Duration::from_millis(1));
            p.end("loop");
        }
        let stats = p.phase("loop").unwrap();
        assert_eq!(stats.calls, 3);
        assert!(stats.total >= Duration::from_millis(3));
    }

    #[test]
    fn same_name_at_different_depths_is_two_paths() {
        let mut p = Profile::new();
        p.begin("a");
        p.begin("a");
        p.end("a");
        p.end("a");
        assert_eq!(p.phase("a").unwrap().calls, 1);
        assert_eq!(p.phase("a/a").unwrap().calls, 1);
    }

    #[test]
    fn span_guard_closes_on_drop_and_allows_nesting() {
        let mut p = Profile::new();
        {
            let mut outer = p.span("outer");
            outer.bump("k", 1);
            {
                let _inner = outer.span("inner");
            }
        }
        assert!(p.phase("outer").is_some());
        assert!(p.phase("outer/inner").is_some());
        assert_eq!(p.counters().get("k"), 1);
    }

    #[test]
    fn merge_nested_aggregates_workers_under_open_path() {
        let mut main = Profile::new();
        main.begin("legalize");
        main.begin("placerow");
        for w in 0..3 {
            let mut worker = Profile::new();
            for _ in 0..=w {
                worker.begin("segment");
                spin(Duration::from_micros(200));
                worker.end("segment");
            }
            worker.bump("rows", (w + 1) as u64);
            main.merge_nested(&worker);
        }
        main.end("placerow");
        main.end("legalize");

        // 1 + 2 + 3 segment spans, nested where the coordinator was.
        let seg = main.phase("legalize/placerow/segment").unwrap();
        assert_eq!(seg.calls, 6);
        assert!(seg.total > Duration::ZERO);
        assert_eq!(main.counters().get("rows"), 6);
        // The parent phase still closed normally.
        assert_eq!(main.phase("legalize/placerow").unwrap().calls, 1);
    }

    #[test]
    fn merge_nested_at_top_level_keeps_paths_rooted() {
        let mut main = Profile::new();
        let mut worker = Profile::new();
        worker.begin("a");
        worker.begin("b");
        worker.end("b");
        worker.end("a");
        main.merge_nested(&worker);
        assert_eq!(main.phase("a").unwrap().calls, 1);
        assert_eq!(main.phase("a/b").unwrap().calls, 1);
    }

    #[test]
    fn merge_nested_ignores_workers_open_scopes() {
        let mut main = Profile::new();
        let mut worker = Profile::new();
        worker.begin("closed");
        worker.end("closed");
        worker.begin("still_open");
        main.merge_nested(&worker);
        assert!(main.phase("closed").is_some());
        assert!(main.phase("still_open").is_none());
    }

    #[test]
    #[should_panic(expected = "does not match open phase")]
    fn mismatched_end_panics() {
        let mut p = Profile::new();
        p.begin("a");
        p.end("b");
    }

    #[test]
    fn none_hook_is_inert() {
        let mut obs: Obs<'_> = None;
        obs.begin("x");
        obs.bump("c", 5);
        obs.record("h", 1.0);
        obs.instant("mark");
        obs.end("x");
        // Nothing to assert beyond "did not panic": there is no profile.
    }

    #[test]
    fn tracing_records_spans_with_epoch_relative_times() {
        let mut p = Profile::new();
        assert!(!p.is_tracing());
        assert!(p.to_chrome_trace("flow3d").is_none());
        p.enable_tracing();
        assert!(p.is_tracing());
        p.begin("outer");
        p.begin("inner");
        spin(Duration::from_millis(1));
        p.end("inner");
        p.instant("mark");
        p.end("outer");

        let events = p.trace_events();
        // Events are recorded at scope close: inner, mark, outer.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "mark");
        assert_eq!(events[1].phase, crate::trace::TracePhase::Instant);
        assert_eq!(events[2].name, "outer");
        assert!(events[2].start <= events[0].start, "outer starts first");
        assert!(events[2].duration >= events[0].duration);
        assert!(events.iter().all(|e| e.track == 0));
        let json = p.to_chrome_trace("flow3d").unwrap();
        assert!(json.contains("traceEvents"));
        assert!(json.contains("coordinator"));
    }

    #[test]
    fn untraced_profile_records_no_events() {
        let mut p = Profile::new();
        p.begin("a");
        p.end("a");
        p.instant("mark");
        assert!(p.trace_events().is_empty());
    }

    #[test]
    fn merge_nested_worker_retags_tracks_and_merges_hists() {
        let mut main = Profile::new();
        main.enable_tracing();
        main.begin("flow_pass");
        for w in 0..2u32 {
            let mut worker = Profile::new_worker(main.tracing_epoch());
            worker.begin("source_search");
            worker.record("depth", (w + 1) as f64);
            worker.end("source_search");
            main.merge_nested_worker(&worker, w + 1);
        }
        main.end("flow_pass");

        let tracks: Vec<u32> = main.trace_events().iter().map(|e| e.track).collect();
        assert_eq!(tracks, [1, 2, 0]); // two workers, then the coordinator span
        assert_eq!(main.hists().get("depth").unwrap().count(), 2);
        assert_eq!(main.phase("flow_pass/source_search").unwrap().calls, 2);
    }

    #[test]
    fn worker_without_epoch_merges_without_events() {
        let mut main = Profile::new();
        main.enable_tracing();
        let mut worker = Profile::new_worker(None);
        worker.begin("w");
        worker.end("w");
        assert!(worker.trace_events().is_empty());
        main.merge_nested_worker(&worker, 1);
        assert!(main.trace_events().is_empty());
        assert!(main.phase("w").is_some());
    }

    #[test]
    fn heatmaps_travel_through_merges() {
        use crate::heatmap::Heatmap;
        let mut main = Profile::new();
        let mut other = Profile::new();
        other.add_heatmap(Heatmap::new("pass0/die0/overflow", 2, 2));
        main.add_heatmap(Heatmap::new("pass0/die0/supply", 2, 2));
        main.merge_nested(&other);
        let names: Vec<&str> = main.heatmaps().iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, ["pass0/die0/supply", "pass0/die0/overflow"]);
    }

    #[test]
    fn reborrow_allows_sequential_callees() {
        fn callee(mut obs: Obs<'_>, name: &str) {
            obs.begin(name);
            obs.end(name);
        }
        let mut p = Profile::new();
        let mut obs: Obs<'_> = Some(&mut p);
        callee(obs.reborrow(), "first");
        callee(obs.reborrow(), "second");
        assert!(p.phase("first").is_some());
        assert!(p.phase("second").is_some());
    }
}
