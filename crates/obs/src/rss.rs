//! Peak resident-set-size gauge.
//!
//! Million-cell runs are memory-bound before they are compute-bound, so
//! the run report carries the process's peak RSS next to its timings
//! (see [`RunReport::with_peak_rss`](crate::RunReport::with_peak_rss)).
//! The value is read from the kernel's `VmHWM` ("high water mark") line
//! in `/proc/self/status` — the largest resident set the process ever
//! held, which is exactly the "how much memory did this run need"
//! number an allocator-level counter cannot provide without hooking
//! every allocation.
//!
//! The gauge is best-effort by design: `/proc` is Linux-only, so on
//! other platforms (or under a hardened procfs) it returns `None` and
//! reports simply omit the field. It never panics and allocates only
//! the one status-file read.

/// The process's peak resident set size in bytes, or `None` where the
/// kernel does not expose it (non-Linux platforms, restricted procfs).
///
/// Reads `VmHWM` from `/proc/self/status`; the kernel reports the value
/// in kiB and this function scales it to bytes. The high-water mark is
/// monotone over the process lifetime: calling this after a run
/// includes everything the process ever held, not just the run's own
/// allocations — callers comparing runs should fork per case or treat
/// the value as an upper bound.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Parses the `VmHWM: <n> kB` line out of a `/proc/self/status` body.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kib * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_kernel_format() {
        let status = "Name:\tflow3d\nVmPeak:\t  123 kB\nVmHWM:\t   2048 kB\nVmRSS:\t 1024 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(2048 * 1024));
    }

    #[test]
    fn missing_line_is_none_not_panic() {
        assert_eq!(parse_vm_hwm("Name:\tflow3d\n"), None);
        assert_eq!(parse_vm_hwm(""), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn live_gauge_is_positive_on_linux() {
        if let Some(bytes) = peak_rss_bytes() {
            // A running test process holds at least a page.
            assert!(bytes >= 4096, "implausible peak RSS {bytes}");
        }
    }
}
