//! Property tests for histogram merging: however a sample stream is
//! sharded across workers and however the shards are merged, the result
//! must equal the histogram recorded serially — the invariant the
//! coordinator relies on when folding per-worker telemetry, and the
//! reason `RunReport` histograms are identical for every
//! `FLOW3D_THREADS` setting.

use flow3d_obs::{Histogram, HistogramSet, RunReport};
use proptest::prelude::*;

/// A stream of (shard id, sample value) pairs: values span several
/// orders of magnitude so multiple buckets are exercised.
fn arb_sharded_samples() -> impl Strategy<Value = Vec<(u8, f64)>> {
    proptest::collection::vec((0u8..4, 0.0f64..100000.0), 0..200)
}

proptest! {
    #[test]
    fn sharded_merge_equals_serial_recording(samples in arb_sharded_samples()) {
        let mut serial = Histogram::pow2();
        let mut shards = [
            Histogram::pow2(),
            Histogram::pow2(),
            Histogram::pow2(),
            Histogram::pow2(),
        ];
        for &(shard, v) in &samples {
            serial.record(v);
            shards[shard as usize].record(v);
        }
        let mut merged = Histogram::pow2();
        for shard in &shards {
            merged.merge(shard);
        }
        // Bucket counts and count are exact; sum is a float but every
        // grouping sums the same shard subtotals, so equality below is
        // about bucket/extreme equality, which is bit-exact.
        prop_assert_eq!(merged.bucket_counts(), serial.bucket_counts());
        prop_assert_eq!(merged.count(), serial.count());
        if merged.count() > 0 {
            prop_assert_eq!(merged.summary().min, serial.summary().min);
            prop_assert_eq!(merged.summary().max, serial.summary().max);
            prop_assert_eq!(merged.quantile(0.5), serial.quantile(0.5));
            prop_assert_eq!(merged.quantile(0.99), serial.quantile(0.99));
        }
    }

    #[test]
    fn merge_is_associative_and_commutative(samples in arb_sharded_samples()) {
        let mut a = Histogram::pow2();
        let mut b = Histogram::pow2();
        let mut c = Histogram::pow2();
        for &(shard, v) in &samples {
            match shard % 3 {
                0 => a.record(v),
                1 => b.record(v),
                _ => c.record(v),
            }
        }
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // c ⊕ (b ⊕ a)
        let mut ba = b.clone();
        ba.merge(&a);
        let mut right = c.clone();
        right.merge(&ba);
        prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
        prop_assert_eq!(left.count(), right.count());
        if left.count() > 0 {
            prop_assert_eq!(left.summary().min, right.summary().min);
            prop_assert_eq!(left.summary().max, right.summary().max);
        }
    }

    #[test]
    fn set_merge_order_does_not_change_structure(samples in arb_sharded_samples()) {
        // Worker A touches histograms in one order, worker B in another;
        // merging A into B and B into A must give identically *ordered*
        // registries (name-sorted), with identical contents.
        let names = ["disp", "nodes", "depth", "segment"];
        let mut a = HistogramSet::new();
        let mut b = HistogramSet::new();
        for &(shard, v) in &samples {
            let name = names[shard as usize % names.len()];
            if v < 50000.0 { &mut a } else { &mut b }.record(name, v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        let ab_names: Vec<&str> = ab.iter().map(|(k, _)| k).collect();
        let ba_names: Vec<&str> = ba.iter().map(|(k, _)| k).collect();
        prop_assert_eq!(ab_names, ba_names);
        for (name, h) in ab.iter() {
            prop_assert_eq!(h.bucket_counts(), ba.get(name).unwrap().bucket_counts());
        }
    }

    #[test]
    fn report_histograms_round_trip_through_json(samples in arb_sharded_samples()) {
        let mut profile = flow3d_obs::Profile::new();
        for &(shard, v) in &samples {
            profile.record(["x", "y"][shard as usize % 2], v);
        }
        let report = RunReport::from_profile("prop", "flow3d", &profile);
        let back = RunReport::from_json(&report.to_json()).unwrap();
        prop_assert_eq!(back, report);
    }
}
