//! Ablation benches for the design choices the paper discusses:
//!
//! * §III-B: the branch-and-bound slack `α` trades search effort for path
//!   quality (`α = 0` greedy, `0.1` paper default, `∞` exhaustive).
//! * §III-F: the bin width `w_v = k·w̄_c` trades cost-model precision for
//!   grid size (the paper picks `k = 10` for the flow phase, `5` for the
//!   post-optimization).
//! * Table V: D2D movement on/off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flow3d_bench::{prepare, Suite};
use flow3d_core::{Flow3dConfig, Flow3dLegalizer, Legalizer};
use std::hint::black_box;

const SCALE: f64 = 0.1;

fn bench_alpha(c: &mut Criterion) {
    let run = prepare(Suite::Iccad2022, "case3", SCALE);
    let mut group = c.benchmark_group("ablation_alpha");
    group.sample_size(10);
    for (label, alpha) in [("0", 0.0), ("0.1", 0.1), ("2", 2.0), ("inf", f64::INFINITY)] {
        let lg = Flow3dLegalizer::new(Flow3dConfig {
            alpha,
            ..Default::default()
        });
        // Some α values cannot drain every bin on the scaled-down case
        // (e.g. α = ∞ exhausts the cycling guard); skip those rows so
        // the remaining groups still run.
        if lg.legalize(&run.design, &run.global).is_err() {
            println!("ablation_alpha/{label:<26} skipped (legalization fails on this scaled case)");
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(label), &run, |b, run| {
            b.iter(|| {
                let outcome = lg.legalize(&run.design, &run.global).expect("legalize");
                black_box(outcome.stats.nodes_expanded)
            })
        });
    }
    group.finish();
}

fn bench_binwidth(c: &mut Criterion) {
    let run = prepare(Suite::Iccad2022, "case3", SCALE);
    let mut group = c.benchmark_group("ablation_binwidth");
    group.sample_size(10);
    for factor in [2.0, 5.0, 10.0, 20.0, 40.0] {
        let lg = Flow3dLegalizer::new(Flow3dConfig {
            bin_width_factor: factor,
            ..Default::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{factor}")),
            &run,
            |b, run| {
                b.iter(|| {
                    let outcome = lg.legalize(&run.design, &run.global).expect("legalize");
                    black_box(outcome.stats.augmentations)
                })
            },
        );
    }
    group.finish();
}

fn bench_d2d(c: &mut Criterion) {
    let run = prepare(Suite::Iccad2023, "case2", SCALE);
    let mut group = c.benchmark_group("ablation_d2d");
    group.sample_size(10);
    for (label, cfg) in [
        ("with_d2d", Flow3dConfig::default()),
        ("without_d2d", Flow3dConfig::without_d2d()),
    ] {
        let lg = Flow3dLegalizer::new(cfg);
        group.bench_with_input(BenchmarkId::from_parameter(label), &run, |b, run| {
            b.iter(|| {
                let outcome = lg.legalize(&run.design, &run.global).expect("legalize");
                black_box(outcome.stats.cross_die_moves)
            })
        });
    }
    group.finish();
}

fn bench_kernel(c: &mut Criterion) {
    // Search-kernel ablation: the selection memo is pure caching
    // (placements are byte-identical either way — tests/differential.rs),
    // so this group isolates its wall-clock effect on the hot path.
    let run = prepare(Suite::Iccad2022, "case3", SCALE);
    let mut group = c.benchmark_group("ablation_kernel");
    group.sample_size(10);
    for (label, selection_memo) in [("memo_on", true), ("memo_off", false)] {
        let lg = Flow3dLegalizer::new(Flow3dConfig {
            selection_memo,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(label), &run, |b, run| {
            b.iter(|| {
                let outcome = lg.legalize(&run.design, &run.global).expect("legalize");
                black_box(outcome.stats.nodes_expanded)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_alpha,
    bench_binwidth,
    bench_d2d,
    bench_kernel
);
criterion_main!(benches);
