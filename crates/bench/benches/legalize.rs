//! Criterion benches for the paper's comparison tables: one benchmark
//! group per suite (Table III = ICCAD 2022, Table IV = ICCAD 2023),
//! timing each of the four legalizers on the same prepared input, plus
//! the supporting pipeline stages (generation, global placement — the
//! "file IO"-adjacent costs the paper folds into its RT column).
//!
//! Inputs are scaled to 10% so a full `cargo bench` stays in CI budget;
//! the `repro` binary runs the full-size tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flow3d_bench::{prepare, standard_legalizers, Suite};
use std::hint::black_box;

const SCALE: f64 = 0.1;

/// Table III: the four legalizers on an ICCAD 2022 case.
fn bench_legalize_2022(c: &mut Criterion) {
    let run = prepare(Suite::Iccad2022, "case3", SCALE);
    let mut group = c.benchmark_group("legalize_2022_case3");
    group.sample_size(10);
    for lg in standard_legalizers() {
        group.bench_with_input(BenchmarkId::from_parameter(lg.name()), &run, |b, run| {
            b.iter(|| {
                let outcome = lg.legalize(&run.design, &run.global).expect("legalize");
                black_box(outcome.placement.num_cells())
            })
        });
    }
    group.finish();
}

/// Table IV: the four legalizers on an ICCAD 2023 case (with macros).
fn bench_legalize_2023(c: &mut Criterion) {
    let run = prepare(Suite::Iccad2023, "case2", SCALE);
    let mut group = c.benchmark_group("legalize_2023_case2");
    group.sample_size(10);
    for lg in standard_legalizers() {
        group.bench_with_input(BenchmarkId::from_parameter(lg.name()), &run, |b, run| {
            b.iter(|| {
                let outcome = lg.legalize(&run.design, &run.global).expect("legalize");
                black_box(outcome.placement.num_cells())
            })
        });
    }
    group.finish();
}

/// Supporting pipeline stages (Table II generation + the GP substrate).
fn bench_pipeline_stages(c: &mut Criterion) {
    let mut cfg = flow3d_gen::GeneratorConfig::iccad2022("case2").expect("preset");
    cfg.scale = 1.0; // case2 is small at full size
    c.bench_function("generate_case2_full", |b| {
        b.iter(|| black_box(cfg.generate().expect("generate").design.num_cells()))
    });

    let generated = cfg.generate().expect("generate");
    let placer = flow3d_gp::GlobalPlacer::new(flow3d_gp::GpConfig::default());
    c.bench_function("global_place_case2_full", |b| {
        b.iter(|| black_box(placer.place_from(&generated.design, &generated.natural)))
    });

    // Fig. 7 metric cost: HPWL evaluation over all nets.
    let global = placer.place_from(&generated.design, &generated.natural);
    c.bench_function("hpwl_case2_full", |b| {
        b.iter(|| black_box(flow3d_metrics::hpwl_global(&generated.design, &global)))
    });
}

criterion_group!(
    benches,
    bench_legalize_2022,
    bench_legalize_2023,
    bench_pipeline_stages
);
criterion_main!(benches);
