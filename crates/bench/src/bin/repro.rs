//! Reproduces every table and figure of the 3D-Flow paper.
//!
//! ```text
//! repro table2            # Table II  — benchmark statistics
//! repro table3 [scale]    # Table III — ICCAD 2022 comparison
//! repro table4 [scale]    # Table IV  — ICCAD 2023 comparison
//! repro table5 [scale]    # Table V   — D2D ablation
//! repro fig7  [scale]     # Fig. 7    — dHPWL% bars (+ SVG files)
//! repro fig8  [scale]     # Fig. 8    — displacement plots (SVG files)
//! repro alpha [scale]     # §III-B    — alpha sweep ablation
//! repro binwidth [scale]  # §III-F    — bin width sweep ablation
//! repro rowalgo [scale]   # §III-D    — Abacus vs isotonic-L1 PlaceRow
//! repro eco   [scale]     # §III-E    — incremental (ECO) legalization
//! repro profile [scale]   # phase/counter profiles (+ JSON sidecars)
//! repro threads [scale]   # thread-scaling: flow_pass/placerow at 1/2/4/8 workers
//! repro bench [scale] [out]  # perf-gate baseline RunReport incl. serve-mode latency rows
//!                            # (default BENCH_legalize.json)
//! repro scale [scale]     # million-cell family: stream read / SoA build / legalize / peak RSS
//! repro all   [scale]     # everything above (except bench and scale)
//! ```
//!
//! `scale` (default 1.0) multiplies every case's cell/net/macro counts;
//! use e.g. `0.25` for a quick pass. SVG files land in `target/figures/`.
//!
//! Case preparation (generation + global placement) fans out over a
//! worker pool sized by `FLOW3D_THREADS` / the machine; prepared cases
//! and all legalization results are bit-identical to serial runs.

use flow3d_bench::{
    evaluate, evaluate_profiled, evaluate_profiled_into, format_case_rows, normalized_averages,
    prepare, prepare_all, standard_legalizers, table_header, CaseRun, Row, Suite,
};
use flow3d_core::{Flow3dConfig, Flow3dLegalizer, Legalizer};
use flow3d_db::DieId;
use flow3d_viz::{BarChart, DisplacementPlot};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let scale: f64 = args
        .get(1)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(1.0);

    match cmd {
        "table2" => table2(),
        "table3" => {
            comparison_table(Suite::Iccad2022, "Table III (ICCAD 2022)", scale);
        }
        "table4" => {
            comparison_table(Suite::Iccad2023, "Table IV (ICCAD 2023)", scale);
        }
        "table5" => table5(scale),
        "fig7" => fig7(scale),
        "fig8" => fig8(scale),
        "alpha" => alpha_sweep(scale),
        "binwidth" => binwidth_sweep(scale),
        "rowalgo" => rowalgo_sweep(scale),
        "eco" => eco_experiment(scale),
        "profile" => profile_runs(scale),
        "threads" => threads_scaling(scale),
        "bench" => bench_baseline(
            scale,
            args.get(2)
                .map(String::as_str)
                .unwrap_or("BENCH_legalize.json"),
        ),
        "scale" => scale_experiment(scale),
        "all" => {
            table2();
            comparison_table(Suite::Iccad2022, "Table III (ICCAD 2022)", scale);
            comparison_table(Suite::Iccad2023, "Table IV (ICCAD 2023)", scale);
            table5(scale);
            fig7(scale);
            fig8(scale);
            alpha_sweep(scale);
            binwidth_sweep(scale);
            rowalgo_sweep(scale);
            eco_experiment(scale);
            profile_runs(scale);
            threads_scaling(scale);
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!("usage: repro [table2|table3|table4|table5|fig7|fig8|alpha|binwidth|rowalgo|eco|profile|threads|bench|scale|all] [scale]");
            std::process::exit(2);
        }
    }
}

fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Table II: statistics of the generated suites.
fn table2() {
    println!("== Table II: benchmark statistics (generated) ==");
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>6} {:>6} {:>12}",
        "case", "#cells", "#macros", "#nets", "hr_top", "hr_bot", "die(WxH)"
    );
    for (suite, tag) in [(Suite::Iccad2022, "2022"), (Suite::Iccad2023, "2023")] {
        for case in suite.cases() {
            let cfg = suite.config(case).unwrap();
            let generated = cfg.generate().expect("generation failed");
            let d = &generated.design;
            let outline = d.die(DieId::BOTTOM).outline;
            println!(
                "{:<22} {:>8} {:>8} {:>8} {:>6} {:>6} {:>5}x{:<6}",
                format!("iccad{tag}_{case}"),
                d.num_cells(),
                d.num_macros(),
                d.num_nets(),
                d.die(DieId::TOP).row_height,
                d.die(DieId::BOTTOM).row_height,
                outline.width(),
                outline.height(),
            );
        }
    }
    println!();
}

/// Tables III/IV: the 4-legalizer comparison over one suite.
fn comparison_table(suite: Suite, title: &str, scale: f64) -> Vec<(String, Vec<Row>)> {
    println!("== {title}, scale {scale} ==");
    print!("{}", table_header());
    let legalizers = standard_legalizers();
    let mut all = Vec::new();
    let runs = prepare_all(suite, suite.cases(), scale, flow3d_par::resolve_threads(0));
    for run in &runs {
        let rows: Vec<Row> = legalizers
            .iter()
            .map(|lg| evaluate(run, lg.as_ref()))
            .collect();
        print!("{}", format_case_rows(&run.name, &rows));
        all.push((run.name.clone(), rows));
    }
    println!("{}", "-".repeat(74));
    println!("geometric means normalized to ours (avg / max / runtime):");
    for (name, avg, max, rt) in normalized_averages(&all) {
        println!("  {name:<14} {avg:>6.3} {max:>8.2} {rt:>8.2}");
    }
    println!();
    all
}

/// Table V: 3D-Flow with and without D2D movement.
fn table5(scale: f64) {
    println!("== Table V: D2D ablation (ICCAD 2023), scale {scale} ==");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "case", "avg w/o D2D", "max w/o D2D", "avg ours", "max ours", "#move"
    );
    let runs = prepare_all(
        Suite::Iccad2023,
        Suite::Iccad2023.cases(),
        scale,
        flow3d_par::resolve_threads(0),
    );
    for run in &runs {
        let without = evaluate(run, &Flow3dLegalizer::new(Flow3dConfig::without_d2d()));
        let ours = evaluate(run, &Flow3dLegalizer::default());
        println!(
            "{:<10} {:>12.3} {:>12.2} {:>12.3} {:>12.2} {:>7}",
            run.name,
            without.avg_disp,
            without.max_disp,
            ours.avg_disp,
            ours.max_disp,
            ours.cross_die_moves
        );
    }
    println!();
}

/// Fig. 7: dHPWL% bars for both suites (printed + SVG).
fn fig7(scale: f64) {
    for (suite, tag) in [(Suite::Iccad2022, "2022"), (Suite::Iccad2023, "2023")] {
        println!(
            "== Fig 7{}: dHPWL% (ICCAD {tag}), scale {scale} ==",
            if tag == "2022" { "a" } else { "b" }
        );
        let legalizers = standard_legalizers();
        let mut chart = BarChart::new("dHPWL (%)");
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10}",
            "case", "tetris", "abacus", "bonn", "ours"
        );
        let runs = prepare_all(suite, suite.cases(), scale, flow3d_par::resolve_threads(0));
        for run in &runs {
            let rows: Vec<Row> = legalizers
                .iter()
                .map(|lg| evaluate(run, lg.as_ref()))
                .collect();
            println!(
                "{:<10} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                run.name,
                rows[0].delta_hpwl_pct,
                rows[1].delta_hpwl_pct,
                rows[2].delta_hpwl_pct,
                rows[3].delta_hpwl_pct
            );
            let bars: Vec<(&str, f64)> = rows
                .iter()
                .map(|r| (r.legalizer.as_str(), r.delta_hpwl_pct))
                .collect();
            chart = chart.group(run.name.clone(), &bars);
        }
        let path = figures_dir().join(format!("fig7_{tag}.svg"));
        std::fs::write(&path, chart.to_svg()).expect("write svg");
        println!("wrote {}\n", path.display());
    }
}

/// Fig. 8: displacement plots of ICCAD 2023 case3's top die, with and
/// without D2D movement.
fn fig8(scale: f64) {
    println!("== Fig 8: displacement visualization (ICCAD 2023 case3, top die), scale {scale} ==");
    let run = prepare(Suite::Iccad2023, "case3", scale);
    for (tag, cfg) in [
        ("no_d2d", Flow3dConfig::without_d2d()),
        ("ours", Flow3dConfig::default()),
    ] {
        let outcome = Flow3dLegalizer::new(cfg)
            .legalize(&run.design, &run.global)
            .expect("legalization failed");
        let svg = DisplacementPlot::new(&run.design, &run.global, &outcome.placement, DieId::TOP)
            .to_svg();
        let path = figures_dir().join(format!("fig8_{tag}.svg"));
        std::fs::write(&path, svg).expect("write svg");
        let stats =
            flow3d_metrics::displacement_stats(&run.design, &run.global, &outcome.placement);
        let hist = flow3d_metrics::DisplacementHistogram::collect(
            &run.design,
            &run.global,
            &outcome.placement,
            12,
        );
        let hist_path = figures_dir().join(format!("fig8_{tag}_hist.svg"));
        std::fs::write(
            &hist_path,
            flow3d_viz::histogram_svg("cells per displacement bucket (rows)", hist.counts()),
        )
        .expect("write histogram svg");
        println!(
            "{tag:<8} avg {:.3} max {:.2} cross-die {:>5} p99-bucket {:>2}  -> {}",
            stats.avg,
            stats.max,
            outcome.stats.cross_die_moves,
            hist.quantile_bucket(0.99),
            path.display()
        );
    }
    println!();
}

/// §III-B ablation: the branch-and-bound slack alpha.
fn alpha_sweep(scale: f64) {
    println!("== alpha sweep (ICCAD 2022 case3), scale {scale} ==");
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>12}",
        "alpha", "avg.disp", "max.disp", "rt(s)", "nodes"
    );
    let run = prepare(Suite::Iccad2022, "case3", scale);
    for alpha in [0.0, 0.05, 0.1, 0.5, 2.0, f64::INFINITY] {
        let lg = Flow3dLegalizer::new(Flow3dConfig {
            alpha,
            ..Default::default()
        });
        let start = std::time::Instant::now();
        let outcome = lg.legalize(&run.design, &run.global).expect("failed");
        let rt = start.elapsed().as_secs_f64();
        let stats =
            flow3d_metrics::displacement_stats(&run.design, &run.global, &outcome.placement);
        println!(
            "{:<10} {:>10.3} {:>10.2} {:>8.2} {:>12}",
            if alpha.is_infinite() {
                "inf".to_string()
            } else {
                format!("{alpha}")
            },
            stats.avg,
            stats.max,
            rt,
            outcome.stats.nodes_expanded
        );
    }
    println!();
}

/// §III-F ablation: the flow-phase bin width factor.
fn binwidth_sweep(scale: f64) {
    println!("== bin width sweep (ICCAD 2022 case3), scale {scale} ==");
    println!(
        "{:<10} {:>10} {:>10} {:>8}",
        "w_v/avg_w", "avg.disp", "max.disp", "rt(s)"
    );
    let run = prepare(Suite::Iccad2022, "case3", scale);
    for factor in [2.0, 5.0, 10.0, 20.0, 40.0] {
        let lg = Flow3dLegalizer::new(Flow3dConfig {
            bin_width_factor: factor,
            ..Default::default()
        });
        let start = std::time::Instant::now();
        let outcome = lg.legalize(&run.design, &run.global).expect("failed");
        let rt = start.elapsed().as_secs_f64();
        let stats =
            flow3d_metrics::displacement_stats(&run.design, &run.global, &outcome.placement);
        println!(
            "{:<10} {:>10.3} {:>10.2} {:>8.2}",
            factor, stats.avg, stats.max, rt
        );
    }
    println!();
}

/// §III-E extension: incremental (ECO) legalization vs full re-run.
fn eco_experiment(scale: f64) {
    println!("== ECO experiment: incremental vs full re-legalization (ICCAD 2022 case3), scale {scale} ==");
    let run = prepare(Suite::Iccad2022, "case3", scale);
    let legalizer = Flow3dLegalizer::default();
    let base = legalizer
        .legalize(&run.design, &run.global)
        .expect("base legalization")
        .placement;
    let n = run.design.num_cells();

    // Deterministic "timing optimization": every 1000th cell moves toward
    // the die center.
    let center = run.design.die(DieId::BOTTOM).outline.center();
    let moves: Vec<flow3d_core::CellMove> = (0..n)
        .step_by((n / 32).max(1))
        .map(|i| {
            let cell = flow3d_db::CellId::new(i);
            let p = base.pos(cell);
            flow3d_core::CellMove {
                cell,
                target: flow3d_geom::Point::new((p.x + center.x) / 2, (p.y + center.y) / 2),
                die: None,
            }
        })
        .collect();

    let start = std::time::Instant::now();
    let inc = legalizer
        .legalize_incremental(&run.design, &base, &moves)
        .expect("incremental legalization");
    let rt_inc = start.elapsed().as_secs_f64();

    let touched = (0..n)
        .filter(|&i| {
            let c = flow3d_db::CellId::new(i);
            inc.placement.pos(c) != base.pos(c) || inc.placement.die(c) != base.die(c)
        })
        .count();

    let start = std::time::Instant::now();
    let full = legalizer
        .legalize(&run.design, &run.global)
        .expect("full re-legalization");
    let rt_full = start.elapsed().as_secs_f64();
    let _ = full;

    println!(
        "perturbed {} cells; incremental touched {touched}/{n} cells in {rt_inc:.3}s \
         (full re-legalization: {rt_full:.3}s)",
        moves.len()
    );
    println!();
}

/// §III-D extension: Abacus (quadratic) vs isotonic-L1 row legalization.
fn rowalgo_sweep(scale: f64) {
    println!("== row algorithm sweep (ICCAD 2022 case3 + case4h), scale {scale} ==");
    println!(
        "{:<10} {:<18} {:>10} {:>10} {:>8}",
        "case", "row algo", "avg.disp", "max.disp", "rt(s)"
    );
    for case in ["case3", "case4h"] {
        let run = prepare(Suite::Iccad2022, case, scale);
        for (tag, algo) in [
            (
                "abacus-quadratic",
                flow3d_core::placerow::RowAlgo::AbacusQuadratic,
            ),
            ("isotonic-l1", flow3d_core::placerow::RowAlgo::IsotonicL1),
        ] {
            let lg = Flow3dLegalizer::new(Flow3dConfig {
                row_algo: algo,
                ..Default::default()
            });
            let start = std::time::Instant::now();
            let outcome = lg.legalize(&run.design, &run.global).expect("failed");
            let rt = start.elapsed().as_secs_f64();
            let stats =
                flow3d_metrics::displacement_stats(&run.design, &run.global, &outcome.placement);
            println!(
                "{:<10} {:<18} {:>10.3} {:>10.2} {:>8.2}",
                case, tag, stats.avg, stats.max, rt
            );
        }
    }
    println!();
}

/// Instrumented runs: every legalizer on every ICCAD 2022 case, with a
/// JSON [`RunReport`](flow3d_obs::RunReport) sidecar per (case,
/// legalizer) pair in `target/profiles/` and the full phase breakdown
/// printed for case3 (the EXPERIMENTS.md example).
fn profile_runs(scale: f64) {
    println!("== instrumented profiles (ICCAD 2022), scale {scale} ==");
    let dir = PathBuf::from("target/profiles");
    std::fs::create_dir_all(&dir).expect("create target/profiles");
    let legalizers = standard_legalizers();
    let runs = prepare_all(
        Suite::Iccad2022,
        Suite::Iccad2022.cases(),
        scale,
        flow3d_par::resolve_threads(0),
    );
    for run in &runs {
        for lg in &legalizers {
            let (row, report) = evaluate_profiled(run, lg.as_ref());
            let path = dir.join(format!("iccad2022_{}_{}.json", run.name, row.legalizer));
            std::fs::write(&path, report.to_json()).expect("write profile sidecar");
            if run.name == "case3" {
                print!("{}", report.to_pretty());
                println!();
            }
            println!(
                "{:<8} {:<14} {:>8.2}s  -> {}",
                run.name,
                row.legalizer,
                row.runtime_s,
                path.display()
            );
        }
    }
    println!();
}

/// Thread-scaling experiment: the largest ICCAD 2022 case at 1/2/4/8
/// workers, reporting the profiled `flow_pass` and `placerow` phase
/// times and re-checking that every worker count produces the same
/// placement bit for bit (the engine guarantees it by construction; the
/// differential test suite proves it on small cases, this shows it at
/// experiment scale).
fn threads_scaling(scale: f64) {
    let case = *Suite::Iccad2022.cases().last().unwrap();
    println!("== thread scaling (ICCAD 2022 {case}), scale {scale} ==");
    let run = prepare(Suite::Iccad2022, case, scale);
    println!(
        "{:<8} {:>13} {:>12} {:>9} {:>10}",
        "threads", "flow_pass(s)", "placerow(s)", "total(s)", "identical"
    );
    let mut baseline: Option<flow3d_db::LegalPlacement> = None;
    for threads in [1usize, 2, 4, 8] {
        let lg = Flow3dLegalizer::new(Flow3dConfig {
            threads,
            ..Default::default()
        });
        let mut profile = flow3d_obs::Profile::new();
        let start = std::time::Instant::now();
        let outcome = lg
            .legalize_observed(&run.design, &run.global, Some(&mut profile))
            .expect("legalization failed");
        let total = start.elapsed().as_secs_f64();
        let phase = |p: &str| {
            profile
                .phase(p)
                .map(|s| s.total.as_secs_f64())
                .unwrap_or(0.0)
        };
        let identical = match &baseline {
            None => {
                baseline = Some(outcome.placement.clone());
                "-"
            }
            Some(b) if *b == outcome.placement => "yes",
            Some(_) => "NO",
        };
        println!(
            "{threads:<8} {:>13.3} {:>12.3} {:>9.3} {:>10}",
            phase("legalize/flow_pass"),
            phase("legalize/placerow"),
            total,
            identical
        );
    }
    println!();
}

/// Perf-gate baseline: one profiled 3D-Flow run on ICCAD 2022 case2,
/// written as a [`RunReport`](flow3d_obs::RunReport) JSON that
/// `flow3d report diff` compares CI runs against. The case name embeds
/// the scale (e.g. `iccad2022_case2@0.2`) so a baseline recorded at one
/// scale can never silently gate a run at another — `diff` fails on the
/// identity mismatch instead.
fn bench_baseline(scale: f64, out: &str) {
    println!("== perf-gate baseline (ICCAD 2022 case2), scale {scale} ==");
    let mut run = prepare(Suite::Iccad2022, "case2", scale);
    run.name = format!("iccad2022_case2@{scale}");
    // The baseline also times the streaming contest-format read as its
    // own top-level phase (the SoA build is timed inside `legalize` as
    // `legalize/soa_build`), so the perf gate watches the full
    // read -> build -> legalize path, not just the solver.
    let mut text = String::new();
    flow3d_io::write_case(&run.design, &mut text).expect("serialize case");
    let mut profile = flow3d_obs::Profile::new();
    profile.begin("stream_read");
    let reparsed = flow3d_io::parse_case_reader(text.as_bytes()).expect("streaming reparse");
    profile.end("stream_read");
    assert_eq!(reparsed, run.design, "streaming reader must round-trip");
    drop((reparsed, text));
    serve_phases(&run, &mut profile);
    let (row, report) = evaluate_profiled_into(&run, &Flow3dLegalizer::default(), &mut profile);
    std::fs::write(out, report.to_json()).expect("write baseline report");
    print!("{}", report.to_pretty());
    if report.selection_memo_hit_rate() == Some(0.0) {
        println!(
            "warning: selection memo hit rate is 0.0 — the memo is enabled but \
             every lookup missed; a key or invalidation regression would look \
             exactly like this (see counters selection_memo_hits/_misses)"
        );
    }
    println!("{:.2}s -> {out}", row.runtime_s);
}

/// Serve-mode latency rows for the perf-gate baseline: drive an
/// in-process [`flow3d_serve::Server`] through a cold `load` (wire
/// parse + base legalization), a burst of warm `eco` replays, and one
/// committing replay, timed into the bench profile as `serve/load`,
/// `serve/eco_request`, and `serve/commit` phases. Only these
/// wall-clock phase rows enter the diffed report; the server's own
/// rolling-window metrics are live gauges and stay out of it. The first
/// eco pays the cold per-case caches, the remaining replays of the same
/// move set measure the resident hot path the service exists for, and
/// the commit row holds the seed-cache delta honest (it asserts
/// `commit_reseeded < 10%` of the design on top of being diffed).
fn serve_phases(run: &flow3d_bench::CaseRun, profile: &mut flow3d_obs::Profile) {
    use flow3d_serve::{Json, MoveSpec, Request, Server, ServerConfig};
    const ECO_REQUESTS: u64 = 16;

    let mut case_text = String::new();
    flow3d_io::write_case(&run.design, &mut case_text).expect("serialize case");
    let mut global_text = String::new();
    flow3d_io::write_placement3d(&run.design, &run.global, &mut global_text)
        .expect("serialize global placement");

    let ok = |reply: &Json| reply.get("ok") == Some(&Json::Bool(true));
    let server = Server::new(ServerConfig::default()).expect("start in-process server");
    profile.begin("serve");
    profile.begin("load");
    let reply = server.process(
        1,
        Request::Load {
            name: "bench".to_string(),
            case: case_text,
            legal: None,
            global: Some(global_text),
            threads: 1,
        },
    );
    profile.end("load");
    assert!(ok(&reply), "serve load failed: {reply}");

    // The same deterministic move set as `eco_experiment`: every
    // n/32-th cell requests the die center.
    let center = run.design.die(DieId::BOTTOM).outline.center();
    let n = run.design.num_cells();
    let moves: Vec<MoveSpec> = (0..n)
        .step_by((n / 32).max(1))
        .map(|i| MoveSpec {
            cell: run.design.cells()[i].name.clone(),
            x: center.x,
            y: center.y,
            die: None,
        })
        .collect();
    for id in 0..ECO_REQUESTS {
        profile.begin("eco_request");
        let reply = server.process(
            2 + id,
            Request::Eco {
                name: "bench".to_string(),
                moves: moves.clone(),
                commit: false,
                trace: false,
            },
        );
        profile.end("eco_request");
        assert!(ok(&reply), "serve eco request {id} failed: {reply}");
    }
    // One committing replay, timed as `serve/commit`: a small warm eco
    // plus the seed-cache delta that rebases the resident engine. The
    // ECO-sized move list (8 cells, vs the burst's 32) models the
    // commit-worthy traffic commits exist for, and the delta discipline
    // is part of the row's contract — a commit that re-resolved the
    // full design would both inflate the row and trip the reseed
    // assertion below.
    let commit_moves: Vec<MoveSpec> = moves.iter().step_by(4).cloned().collect();
    profile.begin("commit");
    let reply = server.process(
        2 + ECO_REQUESTS,
        Request::Eco {
            name: "bench".to_string(),
            moves: commit_moves,
            commit: true,
            trace: false,
        },
    );
    profile.end("commit");
    assert!(ok(&reply), "serve committing eco failed: {reply}");
    let result = reply.get("result").expect("committing eco result");
    let reseeded = result
        .get("commit_reseeded")
        .and_then(Json::as_u64)
        .expect("commit_reseeded");
    let total = result
        .get("commit_total")
        .and_then(Json::as_u64)
        .expect("commit_total");
    assert!(
        reseeded * 10 < total,
        "commit must re-resolve < 10% of seeds, got {reseeded}/{total}"
    );
    profile.end("serve");
    let reply = server.process(3 + ECO_REQUESTS, Request::Shutdown);
    assert!(ok(&reply), "serve shutdown failed: {reply}");
    server.join();
}

/// Million-cell scaling: for every case of the million family, time the
/// streaming contest-format read, the SoA view build, and the full
/// legalization, and report the process peak RSS after each case. At
/// the default scale this is minutes of work — use e.g. `0.05` for a
/// quick pass.
fn scale_experiment(scale: f64) {
    println!("== million-cell scaling (streaming read + SoA view), scale {scale} ==");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10}",
        "case", "#cells", "read(s)", "soa(s)", "legal(s)", "avg.disp", "rss(MiB)"
    );
    for case in flow3d_gen::MILLION_CASES {
        let run = prepare(Suite::Million, case, scale);
        // Serialize once and stream-parse the bytes back: the same code
        // path `flow3d legalize` takes when reading a case file.
        let mut text = String::new();
        flow3d_io::write_case(&run.design, &mut text).expect("serialize case");
        let start = std::time::Instant::now();
        let reparsed = flow3d_io::parse_case_reader(text.as_bytes()).expect("streaming reparse");
        let rt_read = start.elapsed().as_secs_f64();
        assert_eq!(reparsed, run.design, "streaming reader must round-trip");
        drop((reparsed, text));

        let mut profile = flow3d_obs::Profile::new();
        let start = std::time::Instant::now();
        let outcome = Flow3dLegalizer::default()
            .legalize_observed(&run.design, &run.global, Some(&mut profile))
            .expect("legalization failed");
        let rt_legal = start.elapsed().as_secs_f64();
        let rt_soa = profile
            .phase("legalize/soa_build")
            .map(|s| s.total.as_secs_f64())
            .unwrap_or(0.0);
        let stats =
            flow3d_metrics::displacement_stats(&run.design, &run.global, &outcome.placement);
        let rss_mib = flow3d_obs::peak_rss_bytes()
            .map(|b| b as f64 / (1024.0 * 1024.0))
            .unwrap_or(0.0);
        println!(
            "{:<14} {:>9} {:>9.3} {:>9.3} {:>10.2} {:>10.3} {:>10.1}",
            format!("million_{case}"),
            run.design.num_cells(),
            rt_read,
            rt_soa,
            rt_legal,
            stats.avg,
            rss_mib
        );
    }
    println!();
}

/// Keep `CaseRun` referenced so the harness API stays exercised from the
/// binary (rustc dead-code check across crate boundary is not an issue,
/// this is for readers).
#[allow(dead_code)]
fn _types(_: &CaseRun) {}
