#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Shared experiment harness: generates the benchmark suites, runs the
//! global placer, executes every legalizer, and formats the paper's
//! tables. Used by both the `repro` binary (full-size runs) and the
//! Criterion benches (reduced scale).

use flow3d_baselines::{AbacusLegalizer, BonnLegalizer, TetrisLegalizer};
use flow3d_core::{Flow3dLegalizer, Legalizer};
use flow3d_db::{Design, Placement3d};
use flow3d_gen::GeneratorConfig;
use flow3d_gp::{GlobalPlacer, GpConfig};
use flow3d_metrics::{delta_hpwl_pct, displacement_stats};
use flow3d_obs::{Profile, Quality, RunReport};
use std::time::Instant;

/// A prepared benchmark instance: design plus global placement.
#[derive(Debug, Clone)]
pub struct CaseRun {
    /// Case name (e.g. `"case3h"`).
    pub name: String,
    /// The design.
    pub design: Design,
    /// The global placement fed to every legalizer.
    pub global: Placement3d,
}

/// Which contest suite a case belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// ICCAD 2022 (standard cells only).
    Iccad2022,
    /// ICCAD 2023 (with macros).
    Iccad2023,
    /// Million-cell scaling family (beyond the contest suites).
    Million,
}

impl Suite {
    /// Case names of the suite (Table II rows).
    pub fn cases(self) -> &'static [&'static str] {
        match self {
            Suite::Iccad2022 => &flow3d_gen::ICCAD2022_CASES,
            Suite::Iccad2023 => &flow3d_gen::ICCAD2023_CASES,
            Suite::Million => &flow3d_gen::MILLION_CASES,
        }
    }

    /// Generator preset for one case of the suite.
    pub fn config(self, case: &str) -> Option<GeneratorConfig> {
        match self {
            Suite::Iccad2022 => GeneratorConfig::iccad2022(case),
            Suite::Iccad2023 => GeneratorConfig::iccad2023(case),
            Suite::Million => GeneratorConfig::million(case),
        }
    }
}

/// Generates one case at `scale` and globally places it.
///
/// # Panics
///
/// Panics on unknown case names or generator failure (the presets are
/// known-feasible).
pub fn prepare(suite: Suite, case: &str, scale: f64) -> CaseRun {
    let mut cfg = suite
        .config(case)
        .unwrap_or_else(|| panic!("unknown case `{case}`"));
    cfg.scale = scale;
    let generated = cfg.generate().expect("preset generation failed");
    let global =
        GlobalPlacer::new(GpConfig::default()).place_from(&generated.design, &generated.natural);
    CaseRun {
        name: case.to_string(),
        design: generated.design,
        global,
    }
}

/// [`prepare`]s several cases of a suite concurrently on `threads`
/// workers. Case generation and global placement are deterministic per
/// case, so the result is identical to mapping [`prepare`] serially —
/// only wall-clock changes.
///
/// # Panics
///
/// Same as [`prepare`].
pub fn prepare_all(suite: Suite, cases: &[&str], scale: f64, threads: usize) -> Vec<CaseRun> {
    flow3d_par::par_map(threads, cases.len(), |i| prepare(suite, cases[i], scale))
}

/// One legalizer's result on one case.
#[derive(Debug, Clone)]
pub struct Row {
    /// Legalizer name.
    pub legalizer: String,
    /// Mean displacement normalized by row height ("Avg. Disp.").
    pub avg_disp: f64,
    /// Maximum normalized displacement ("Max. Disp.").
    pub max_disp: f64,
    /// Wall-clock legalization time in seconds ("RT (s)").
    pub runtime_s: f64,
    /// HPWL increase over the global placement in percent (Fig. 7).
    pub delta_hpwl_pct: f64,
    /// Cells moved across dies relative to the nearest-die snap
    /// (Table V "#Move").
    pub cross_die_moves: usize,
}

/// The four legalizers of Tables III/IV in paper order.
pub fn standard_legalizers() -> Vec<Box<dyn Legalizer>> {
    vec![
        Box::new(TetrisLegalizer::default()),
        Box::new(AbacusLegalizer::default()),
        Box::new(BonnLegalizer::default()),
        Box::new(Flow3dLegalizer::default()),
    ]
}

/// Runs one legalizer on one case and measures everything.
///
/// # Panics
///
/// Panics if legalization fails — generated cases are feasible, so a
/// failure is a bug worth crashing on in the harness.
pub fn evaluate(run: &CaseRun, legalizer: &dyn Legalizer) -> Row {
    let start = Instant::now();
    let outcome = legalizer
        .legalize(&run.design, &run.global)
        .unwrap_or_else(|e| panic!("{} failed on {}: {e}", legalizer.name(), run.name));
    let runtime_s = start.elapsed().as_secs_f64();
    let report = flow3d_metrics::check_legal(&run.design, &outcome.placement);
    assert!(
        report.is_legal(),
        "{} produced an illegal placement on {}: {report}",
        legalizer.name(),
        run.name
    );
    let stats = displacement_stats(&run.design, &run.global, &outcome.placement);
    Row {
        legalizer: legalizer.name().to_string(),
        avg_disp: stats.avg,
        max_disp: stats.max,
        runtime_s,
        delta_hpwl_pct: delta_hpwl_pct(&run.design, &run.global, &outcome.placement),
        cross_die_moves: outcome.stats.cross_die_moves,
    }
}

/// Like [`evaluate`], but instruments the run with a [`Profile`] and
/// returns the table [`Row`] together with the full [`RunReport`]
/// (phase timings, search counters, quality metrics).
///
/// # Panics
///
/// Same as [`evaluate`].
pub fn evaluate_profiled(run: &CaseRun, legalizer: &dyn Legalizer) -> (Row, RunReport) {
    let mut profile = Profile::new();
    evaluate_profiled_into(run, legalizer, &mut profile)
}

/// Like [`evaluate_profiled`], but records into a caller-supplied
/// [`Profile`], so phases timed before the legalization call (e.g. a
/// streaming case read) land in the same [`RunReport`].
pub fn evaluate_profiled_into(
    run: &CaseRun,
    legalizer: &dyn Legalizer,
    profile: &mut Profile,
) -> (Row, RunReport) {
    let start = Instant::now();
    let outcome = legalizer
        .legalize_observed(&run.design, &run.global, Some(profile))
        .unwrap_or_else(|e| panic!("{} failed on {}: {e}", legalizer.name(), run.name));
    let runtime_s = start.elapsed().as_secs_f64();
    let report = flow3d_metrics::check_legal(&run.design, &outcome.placement);
    assert!(
        report.is_legal(),
        "{} produced an illegal placement on {}: {report}",
        legalizer.name(),
        run.name
    );
    let stats = displacement_stats(&run.design, &run.global, &outcome.placement);
    let dhpwl = delta_hpwl_pct(&run.design, &run.global, &outcome.placement);
    let row = Row {
        legalizer: legalizer.name().to_string(),
        avg_disp: stats.avg,
        max_disp: stats.max,
        runtime_s,
        delta_hpwl_pct: dhpwl,
        cross_die_moves: outcome.stats.cross_die_moves,
    };
    let report =
        RunReport::from_profile(&run.name, legalizer.name(), profile).with_quality(Quality {
            avg_disp: stats.avg_dbu,
            max_disp: stats.max_dbu,
            dhpwl_pct: dhpwl,
        });
    (row, report)
}

/// Formats a Table III/IV-style block for one case.
pub fn format_case_rows(case: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        let name = if i == 0 { case } else { "" };
        out.push_str(&format!(
            "{:<10} {:<14} {:>10.3} {:>10.2} {:>8.2} {:>9.2} {:>7}\n",
            name,
            r.legalizer,
            r.avg_disp,
            r.max_disp,
            r.runtime_s,
            r.delta_hpwl_pct,
            r.cross_die_moves
        ));
    }
    out
}

/// Table header matching [`format_case_rows`].
pub fn table_header() -> String {
    format!(
        "{:<10} {:<14} {:>10} {:>10} {:>8} {:>9} {:>7}\n{}\n",
        "case",
        "legalizer",
        "avg.disp",
        "max.disp",
        "rt(s)",
        "dHPWL%",
        "#move",
        "-".repeat(74)
    )
}

/// Geometric-mean ratios versus the last row's legalizer (the paper
/// normalizes Tables III/IV to "Ours" = 1.00). Returns
/// `(avg_ratio, max_ratio, rt_ratio)` per legalizer name.
pub fn normalized_averages(all: &[(String, Vec<Row>)]) -> Vec<(String, f64, f64, f64)> {
    let mut names: Vec<String> = Vec::new();
    if let Some((_, rows)) = all.first() {
        names = rows.iter().map(|r| r.legalizer.clone()).collect();
    }
    let Some(ours) = names.last().cloned() else {
        return Vec::new();
    };
    names
        .iter()
        .map(|name| {
            let mut log_avg = 0.0;
            let mut log_max = 0.0;
            let mut log_rt = 0.0;
            let mut k = 0usize;
            for (_, rows) in all {
                let r = rows.iter().find(|r| &r.legalizer == name).unwrap();
                let o = rows.iter().find(|r| r.legalizer == ours).unwrap();
                if o.avg_disp > 0.0 && r.avg_disp > 0.0 {
                    log_avg += (r.avg_disp / o.avg_disp).ln();
                    log_max += (r.max_disp / o.max_disp).max(1e-12).ln();
                    log_rt += (r.runtime_s / o.runtime_s).max(1e-12).ln();
                    k += 1;
                }
            }
            let k = k.max(1) as f64;
            (
                name.clone(),
                (log_avg / k).exp(),
                (log_max / k).exp(),
                (log_rt / k).exp(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_and_evaluate_smallest_case() {
        // Tiny scale so the full pipeline runs in test time.
        let run = prepare(Suite::Iccad2022, "case2", 0.2);
        assert_eq!(run.design.num_cells(), (2735.0f64 * 0.2) as usize);
        let lg = TetrisLegalizer::default();
        let row = evaluate(&run, &lg);
        assert_eq!(row.legalizer, "tetris");
        assert!(row.avg_disp >= 0.0);
        assert!(row.runtime_s > 0.0);
    }

    #[test]
    fn prepare_all_matches_serial_prepare() {
        let cases = ["case2", "case3"];
        let serial: Vec<CaseRun> = cases
            .iter()
            .map(|c| prepare(Suite::Iccad2022, c, 0.05))
            .collect();
        let parallel = prepare_all(Suite::Iccad2022, &cases, 0.05, 4);
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.name, s.name);
            assert_eq!(p.design, s.design);
            assert_eq!(p.global, s.global);
        }
    }

    #[test]
    fn suites_expose_paper_cases() {
        assert_eq!(Suite::Iccad2022.cases().len(), 6);
        assert_eq!(Suite::Iccad2023.cases().len(), 7);
        assert_eq!(Suite::Million.cases().len(), 3);
        assert!(Suite::Iccad2023.config("case3h").is_some());
        assert!(Suite::Million.config("m1h").is_some());
        assert!(Suite::Iccad2022.config("nope").is_none());
        assert!(Suite::Million.config("nope").is_none());
    }

    #[test]
    fn normalized_averages_are_one_for_ours() {
        let rows = vec![
            Row {
                legalizer: "tetris".into(),
                avg_disp: 2.0,
                max_disp: 4.0,
                runtime_s: 0.5,
                delta_hpwl_pct: 1.0,
                cross_die_moves: 0,
            },
            Row {
                legalizer: "3d-flow".into(),
                avg_disp: 1.0,
                max_disp: 2.0,
                runtime_s: 1.0,
                delta_hpwl_pct: 0.5,
                cross_die_moves: 5,
            },
        ];
        let norm = normalized_averages(&[("case2".into(), rows)]);
        assert_eq!(norm.len(), 2);
        assert!((norm[0].1 - 2.0).abs() < 1e-9);
        assert!((norm[1].1 - 1.0).abs() < 1e-9);
        assert!((norm[1].2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_formatting_is_stable() {
        let header = table_header();
        assert!(header.contains("avg.disp"));
        let rows = vec![Row {
            legalizer: "tetris".into(),
            avg_disp: 1.5,
            max_disp: 7.25,
            runtime_s: 0.125,
            delta_hpwl_pct: 3.5,
            cross_die_moves: 42,
        }];
        let s = format_case_rows("case2", &rows);
        assert!(s.contains("case2"));
        assert!(s.contains("tetris"));
        assert!(s.contains("1.500"));
        assert!(s.contains("42"));
    }
}
