//! Displacement distributions and per-die breakdowns.
//!
//! The aggregate averages of Tables III–V hide *where* displacement goes;
//! these helpers expose the distribution (used when analyzing the Fig. 8
//! plots and the cycle-canceling threshold `max(5·h_r, D_max/2)`).

use crate::displacement::displacement_of;
use flow3d_db::{CellId, Design, DieId, LegalPlacement, Placement3d};

/// A histogram of per-cell displacements, bucketed in row heights.
#[derive(Debug, Clone, PartialEq)]
pub struct DisplacementHistogram {
    /// `counts[k]` = cells with normalized displacement in `[k, k+1)` row
    /// heights; the final bucket absorbs everything beyond.
    counts: Vec<usize>,
    /// Number of cells measured.
    total: usize,
}

impl DisplacementHistogram {
    /// Buckets every cell's row-height-normalized displacement into
    /// `num_buckets` unit-wide bins (the last bucket is open-ended).
    ///
    /// # Panics
    ///
    /// Panics if `num_buckets == 0`.
    pub fn collect(
        design: &Design,
        global: &Placement3d,
        legal: &LegalPlacement,
        num_buckets: usize,
    ) -> Self {
        assert!(num_buckets > 0, "need at least one bucket");
        let mut counts = vec![0usize; num_buckets];
        let n = design.num_cells();
        for i in 0..n {
            let c = CellId::new(i);
            let origin_die = global.nearest_die(c, design.num_dies());
            let hr = design.die(origin_die).row_height as f64;
            let d = displacement_of(global, legal, c) / hr;
            let bucket = (d as usize).min(num_buckets - 1);
            counts[bucket] += 1;
        }
        Self { counts, total: n }
    }

    /// Bucket counts (`[k, k+1)` row heights; last bucket open-ended).
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Number of cells measured.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Fraction of cells displaced less than `k` row heights.
    pub fn fraction_below(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let below: usize = self.counts.iter().take(k).sum();
        below as f64 / self.total as f64
    }

    /// The smallest bucket index `k` such that at least `q` (in `[0, 1]`)
    /// of the cells are displaced less than `k + 1` row heights.
    pub fn quantile_bucket(&self, q: f64) -> usize {
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as usize;
        let mut acc = 0;
        for (k, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return k;
            }
        }
        self.counts.len().saturating_sub(1)
    }
}

/// Per-die placement statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
// flow3d-tidy: allow(dead-pub) — metrics API (flow3d::metrics) for external QoR tooling
pub struct DieStats {
    /// The die.
    pub die: DieId,
    /// Cells placed on this die.
    pub num_cells: usize,
    /// Standard-cell area on this die in DBU².
    pub used_area: i64,
    /// Utilization: used area over macro-free placeable area.
    pub utilization: f64,
}

/// Computes [`DieStats`] for every die of the stack.
// flow3d-tidy: allow(dead-pub) — metrics API (flow3d::metrics) for external QoR tooling
pub fn die_stats(design: &Design, legal: &LegalPlacement) -> Vec<DieStats> {
    let mut out: Vec<DieStats> = (0..design.num_dies())
        .map(|d| DieStats {
            die: DieId::new(d),
            num_cells: 0,
            used_area: 0,
            utilization: 0.0,
        })
        .collect();
    for i in 0..design.num_cells() {
        let c = CellId::new(i);
        let die = legal.die(c);
        let s = &mut out[die.index()];
        s.num_cells += 1;
        s.used_area += design.cell_width(c, die) * design.cell_height(die);
    }
    for s in &mut out {
        let free = design.free_area(s.die);
        s.utilization = if free > 0 {
            s.used_area as f64 / free as f64
        } else {
            0.0
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_db::{DesignBuilder, DieSpec, LibCellSpec, TechnologySpec};
    use flow3d_geom::{FPoint, Point};

    fn design(n: usize) -> Design {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 10, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 400, 40), 10, 1, 1.0));
        for i in 0..n {
            b = b.cell(format!("u{i}"), "C");
        }
        b.build().unwrap()
    }

    #[test]
    fn histogram_buckets_by_row_height() {
        let d = design(4);
        let gp = Placement3d::new(4); // all anchored at origin
        let mut lp = LegalPlacement::new(4);
        lp.place(CellId::new(0), Point::new(0, 0), DieId::BOTTOM); // 0 rows
        lp.place(CellId::new(1), Point::new(5, 0), DieId::BOTTOM); // 0.5
        lp.place(CellId::new(2), Point::new(0, 10), DieId::BOTTOM); // 1.0
        lp.place(CellId::new(3), Point::new(100, 30), DieId::BOTTOM); // 13
        let h = DisplacementHistogram::collect(&d, &gp, &lp, 4);
        assert_eq!(h.counts(), &[2, 1, 0, 1]); // last bucket open-ended
        assert_eq!(h.total(), 4);
        assert!((h.fraction_below(2) - 0.75).abs() < 1e-12);
        assert_eq!(h.quantile_bucket(0.5), 0);
        assert_eq!(h.quantile_bucket(1.0), 3);
    }

    #[test]
    fn histogram_empty_design() {
        let d = design(0);
        let h =
            DisplacementHistogram::collect(&d, &Placement3d::new(0), &LegalPlacement::new(0), 3);
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction_below(1), 1.0);
    }

    #[test]
    fn die_stats_split_cells_and_area() {
        let d = design(6);
        let gp = Placement3d::new(6);
        let mut lp = LegalPlacement::new(6);
        for i in 0..6 {
            let die = if i < 4 { DieId::BOTTOM } else { DieId::TOP };
            lp.place(CellId::new(i), Point::new(i as i64 * 20, 0), die);
        }
        drop(gp);
        let stats = die_stats(&d, &lp);
        assert_eq!(stats[0].num_cells, 4);
        assert_eq!(stats[1].num_cells, 2);
        assert_eq!(stats[0].used_area, 4 * 100);
        let free = d.free_area(DieId::BOTTOM) as f64;
        assert!((stats[0].utilization - 400.0 / free).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bucket")]
    fn zero_buckets_panics() {
        let d = design(1);
        let _ =
            DisplacementHistogram::collect(&d, &Placement3d::new(1), &LegalPlacement::new(1), 0);
    }

    #[test]
    fn fractional_anchor_rounds_into_bucket() {
        let d = design(1);
        let mut gp = Placement3d::new(1);
        gp.set_pos(CellId::new(0), FPoint::new(0.4, 0.0));
        let mut lp = LegalPlacement::new(1);
        lp.place(CellId::new(0), Point::new(0, 0), DieId::BOTTOM);
        let h = DisplacementHistogram::collect(&d, &gp, &lp, 2);
        assert_eq!(h.counts(), &[1, 0]);
    }
}
